#!/usr/bin/env python
"""Compare grouping strategies on a communication-non-stop workload (NPB CG).

The paper's Section 5 compares four grouping methods — GP (trace-assisted),
GP1 (one process per group), GP4 (ad-hoc blocks) and NORM (one global group).
This example runs all four on an NPB-CG-like workload, prints the checkpoint
and restart costs, and shows how the trace-assisted grouping keeps most
traffic inside groups (so little has to be logged or replayed).

Run:  python examples/grouping_strategies.py
"""

from repro.analysis.reporting import Table, format_table
from repro.ckpt import one_shot
from repro.ckpt.presets import gp1_family, gp4_family, gp_family, norm_family
from repro.cluster import GIDEON_300, Cluster
from repro.core import CheckpointCoordinator, form_groups, simulate_restart
from repro.core.formation import grouping_quality
from repro.mpi import MpiRuntime, Tracer
from repro.sim import RandomStreams, Simulator
from repro.workloads import CgWorkload
from repro.workloads.npb_cg import CgParameters

N_RANKS = 32
CG = CgParameters(na=60000, max_steps=10)
CHECKPOINT_AT = 4.0


def trace_workload(workload):
    """Run once with the tracer to learn the communication pattern."""
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(N_RANKS))
    tracer = Tracer()
    runtime = MpiRuntime(sim, cluster, N_RANKS, rng=RandomStreams(42), tracer=tracer)
    runtime.set_memory(workload.memory_map())
    runtime.launch(workload.program_factory())
    runtime.run_to_completion()
    return tracer.log


def run_with(family, workload, seed=2):
    spec = GIDEON_300.with_nodes(N_RANKS)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    runtime = MpiRuntime(sim, cluster, N_RANKS, protocol_family=family,
                         rng=RandomStreams(seed))
    runtime.set_memory(workload.memory_map())
    CheckpointCoordinator(runtime, family, one_shot(CHECKPOINT_AT)).start()
    runtime.launch(workload.program_factory())
    result = runtime.run_to_completion()
    restart = simulate_restart(result, spec) if result.snapshots() else None
    return result, restart


def main() -> None:
    workload = CgWorkload(N_RANKS, CG)
    print(f"Workload: {workload.describe()}\n")

    trace = trace_workload(workload)
    formation = form_groups(trace, n_ranks=N_RANKS)
    print(f"Trace-assisted formation: {formation.describe()}")

    families = {
        "GP": gp_family(formation.groupset),
        "GP1": gp1_family(N_RANKS),
        "GP4": gp4_family(N_RANKS),
        "NORM": norm_family(N_RANKS),
    }

    table = Table(
        title=f"Grouping strategies on NPB CG ({N_RANKS} processes, one checkpoint)",
        columns=["method", "groups", "intra-group traffic", "exec time (s)",
                 "agg ckpt (s)", "agg restart (s)", "resent KB"],
    )
    for name, family in families.items():
        groupset = family.groups
        quality = grouping_quality(groupset, trace)
        result, restart = run_with(family, workload)
        table.add_row(
            name,
            len(groupset.all_groups()),
            f"{quality['intra_fraction']:.0%}",
            result.makespan,
            result.aggregate_checkpoint_time(),
            restart.aggregate_restart_time if restart else 0.0,
            (restart.total_replay_bytes / 1024) if restart else 0.0,
        )
    print()
    print(format_table(table))
    print("\nReading the table: GP keeps checkpoints nearly as cheap as GP1 while")
    print("keeping restarts (and the data that must be replayed) close to NORM —")
    print("the combination the paper argues makes group-based checkpointing scale.")


if __name__ == "__main__":
    main()
