#!/usr/bin/env python
"""Campaign engine walkthrough: grid → parallel run → resume → export.

Defines an ablation-style sweep (workload × method × scale × seed), runs it
with a pool of worker processes against a persistent sqlite store, simulates
an interruption and resumes, then exports the results as a report table, as
figure series, and as CSV.

Run:  PYTHONPATH=src python examples/campaign_sweep.py [--db sweep.sqlite]
                                                       [--workers N] [--fresh]
"""

import argparse
import os
import sys

from repro.analysis.reporting import format_table
from repro.campaign import (
    Campaign,
    CampaignStore,
    ParameterGrid,
    results_to_csv,
    results_to_series,
    results_to_table,
    summary_table,
)
from repro.ckpt.scheduler import one_shot


def build_grid() -> ParameterGrid:
    """A mixed-workload grid with per-workload option overrides."""
    return ParameterGrid(
        axes={
            "workload": ("ring", "halo2d"),
            "method": ("GP1", "GP4", "NORM"),
            "n_ranks": (8, 16),
            "seed": (1, 2),
        },
        base={"schedule": one_shot(0.2)},
        overrides={
            "workload": {
                "ring": {"workload_options": {"iterations": 8, "compute_seconds": 0.05}},
                "halo2d": {"workload_options": {"iterations": 6, "compute_seconds": 0.04}},
            },
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--db", default="campaign_sweep.sqlite",
                        help="persistent result store (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 1,
                        help="worker processes (default: all cores)")
    parser.add_argument("--fresh", action="store_true",
                        help="delete the store first (force a cold run)")
    args = parser.parse_args(argv)

    if args.fresh and os.path.exists(args.db):
        os.remove(args.db)

    grid = build_grid()
    configs = grid.expand()
    print(f"grid: {len(configs)} scenarios "
          f"({' × '.join(f'{k}[{len(v)}]' for k, v in grid.axes.items())})")

    campaign = Campaign(CampaignStore(args.db), n_workers=args.workers)

    # -- 1. simulate an interrupted run: register everything, execute nothing ----
    # A dead worker's heartbeat dies with it, so its claim's lease lapses;
    # lease_s=0 models an already-stale claim (a live claim would be waited
    # for instead — see the lease tests in tests/test_campaign.py).
    campaign.store.add_many(configs)
    interrupted = campaign.store.claim("crashed-worker", lease_s=0.0)
    print(f"simulated crash: scenario {interrupted.key[:12]}… left 'running'")

    # -- 2. resume: re-opens orphaned rows, executes all open work in parallel ---
    executed = campaign.resume()
    print(f"resume() executed {executed} scenarios with {args.workers} worker(s)")
    print(format_table(summary_table(campaign.store)))

    # -- 3. a second run() is pure cache: nothing executes ----------------------
    results = campaign.run(configs)
    print(f"warm run executed {campaign.last_executed} scenarios "
          f"(all {len(results)} served from the store)\n")

    # -- 4. exports -------------------------------------------------------------
    table = results_to_table(results, title="campaign sweep results")
    print(format_table(table))
    print()
    for series in results_to_series(
        [r for r in results if r.config.workload == "ring" and r.config.seed == 1],
        x="n_ranks", y="aggregate_checkpoint_time", group_by="method",
    ):
        pairs = ", ".join(f"{x}→{y:.2f}" for x, y in zip(series.x, series.y))
        print(f"ring agg ckpt time [{series.name}]: {pairs}")
    csv_path = os.path.splitext(args.db)[0] + ".csv"
    n = results_to_csv(results, csv_path)
    print(f"\nwrote {n} rows to {csv_path}; store kept at {args.db} "
          f"(re-running this script is free)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
