#!/usr/bin/env python
"""End-to-end telemetry demo: trace a failure + recovery run, export a timeline.

Runs one checkpointed halo2d scenario with a deterministic mid-run node kill,
with span tracing enabled, then:

* prints the per-phase time table sourced from the metrics registry
  (the same ``phase_times`` mapping stored in campaign payload v6),
* prints a per-span summary of the recorded trace,
* writes a Chrome ``trace_event`` JSON — open it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` to see checkpoint waves,
  per-rank dumps, L2 partner copies, and the failure's recovery span tree
  (detection → per-rank restart stages → barrier) on simulated time,
* optionally renders the self-contained HTML timeline next to it
  (``tools/timeline.py`` does the same from the JSON after the fact).

Tracing is passive — the tracer only reads the simulated clock — so this run
produces bit-identical metrics to the same scenario without telemetry.

Run:  PYTHONPATH=src python examples/trace_timeline.py [--out trace.json]
          [--html timeline.html]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.analysis.reporting import format_table, phase_time_table
from repro.ckpt.scheduler import periodic
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.obs import Telemetry, write_chrome_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace.json",
                        help="Chrome trace output path (default: %(default)s)")
    parser.add_argument("--html", default=None,
                        help="also render a self-contained HTML timeline here")
    args = parser.parse_args(argv)

    # A deterministic kill at t=1.9s: the victim's 4-rank group rolls back to
    # its last coordinated checkpoint while the other groups keep computing.
    config = ScenarioConfig(
        "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
        failure=FailureSpec(at_s=1.9, victim_rank=0),
    )
    telemetry = Telemetry()  # trace=True: spans + metrics
    result = run_scenario(config, telemetry=telemetry)

    print(f"makespan: {result.app.makespan:.3f}s simulated, "
          f"{result.failures_injected} failure(s) injected, "
          f"{result.rollback_ranks_total} rank rollback(s)\n")
    print(format_table(phase_time_table(result.phase_times)))
    print()

    spans = telemetry.tracer.spans
    by_cat = {}
    for span in spans:
        by_cat[span.category] = by_cat.get(span.category, 0) + 1
    print(f"recorded {len(spans)} spans: "
          + ", ".join(f"{cat or '(none)'}={n}" for cat, n in sorted(by_cat.items())))

    write_chrome_trace(args.out, telemetry.tracer, metrics=telemetry.metrics)
    print(f"wrote Chrome trace to {args.out} "
          f"(open in https://ui.perfetto.dev or chrome://tracing)")

    if args.html:
        from tools.timeline import load_spans, render_html

        events, tracks = load_spans(args.out)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(events, tracks, title="failure + recovery timeline"))
        print(f"wrote HTML timeline to {args.html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
