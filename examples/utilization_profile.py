#!/usr/bin/env python
"""End-to-end continuous-telemetry demo: sample a run, render the dashboard.

Runs one checkpointed halo2d scenario with a deterministic mid-run node kill
and the passive state sampler enabled, then:

* prints the per-rank utilization breakdown (compute / blocked / checkpoint /
  recovery seconds, attributed from the sampled series + exact phase
  intervals) and its reconciliation against the metrics-registry
  ``mpi.time.checkpoint`` histogram,
* writes the series as JSONL and CSV (``repro.obs.write_series_jsonl`` /
  ``write_series_csv``),
* renders the self-contained HTML dashboard — rank-state heatmap,
  utilization stacked-area, NIC utilization and sender-log line charts —
  via ``tools/dashboard.py`` (which can also do this after the fact from
  the JSONL).

Sampling is passive — the sampler reads rank state at event boundaries the
simulation was already processing, scheduling nothing — so this run produces
bit-identical metrics to the same scenario without telemetry.

Run:  PYTHONPATH=src python examples/utilization_profile.py
          [--out series.jsonl] [--csv series.csv] [--html dashboard.html]
          [--bin 0.1]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.analysis.reporting import format_table
from repro.ckpt.scheduler import periodic
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.obs import (
    Telemetry,
    reconcile_with_registry,
    utilization_breakdown,
    utilization_table,
    write_series_csv,
    write_series_jsonl,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="series.jsonl",
                        help="series JSONL output path (default: %(default)s)")
    parser.add_argument("--csv", default=None,
                        help="also write the per-bin series as CSV here")
    parser.add_argument("--html", default=None,
                        help="render the self-contained HTML dashboard here")
    parser.add_argument("--bin", type=float, default=0.1,
                        help="sampling bin width in simulated seconds")
    args = parser.parse_args(argv)

    # Same deterministic scenario as examples/trace_timeline.py: a kill at
    # t=1.9s rolls the victim's 4-rank group back while the rest compute on.
    config = ScenarioConfig(
        "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
        failure=FailureSpec(at_s=1.9, victim_rank=0),
    )
    telemetry = Telemetry(trace=False, sample_bin_s=args.bin)
    result = run_scenario(config, telemetry=telemetry)
    sampler = telemetry.sampler

    print(f"makespan: {result.app.makespan:.3f}s simulated, "
          f"{result.failures_injected} failure(s) injected; sampled "
          f"{sampler.n_bins} bins x {sampler.bin_s:.4g}s\n")

    breakdown = utilization_breakdown(sampler)
    print(format_table(utilization_table(breakdown)))

    rec = reconcile_with_registry(sampler, telemetry)
    print(f"\ncheckpoint seconds: attributed {rec['checkpoint_attributed_s']:.4f}"
          f" vs registry {rec['checkpoint_registry_s']:.4f}"
          f" (|diff| {rec['checkpoint_abs_diff']:.2e});"
          f" recovery attributed {rec['recovery_attributed_s']:.4f}s")

    write_series_jsonl(args.out, sampler)
    print(f"\nwrote series JSONL to {args.out}")
    if args.csv:
        write_series_csv(args.csv, sampler)
        print(f"wrote series CSV to {args.csv}")

    if args.html:
        from tools.dashboard import load_series, render_dashboard_html

        data = load_series(args.out)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_dashboard_html(
                data, title="failure + recovery utilization profile"))
        print(f"wrote HTML dashboard to {args.html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
