#!/usr/bin/env python
"""Quickstart: checkpoint a small HPL-like run with the group-based protocol.

This walks the full workflow of the paper's Figure 4 on a 32-process job:

1. run the application once with the light-weight MPI tracer attached,
2. analyse the trace with Algorithm 2 to obtain a group definition,
3. run the application again with group-based checkpointing (one checkpoint),
4. compare against the global coordinated checkpoint (NORM), and
5. simulate a restart from the checkpoint.

Run:  python examples/quickstart.py
"""

from repro.sim import Simulator, RandomStreams
from repro.cluster import Cluster, GIDEON_300
from repro.mpi import MpiRuntime, Tracer
from repro.ckpt import one_shot
from repro.ckpt.presets import gp_family, norm_family
from repro.core import CheckpointCoordinator, form_groups, simulate_restart
from repro.workloads import HplWorkload
from repro.workloads.hpl import HplParameters

N_RANKS = 32
HPL = HplParameters(problem_size=8000, block_size=200, grid_rows=8, max_steps=16)
CHECKPOINT_AT = 5.0  # seconds into the run


def run_once(family, workload, schedule=None, seed=1):
    """Run the workload under one protocol family and return the result."""
    spec = GIDEON_300.with_nodes(N_RANKS)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    runtime = MpiRuntime(sim, cluster, N_RANKS, protocol_family=family,
                         rng=RandomStreams(seed))
    runtime.set_memory(workload.memory_map())
    if schedule is not None:
        CheckpointCoordinator(runtime, family, schedule).start()
    runtime.launch(workload.program_factory())
    return runtime.run_to_completion(), spec


def main() -> None:
    workload = HplWorkload(N_RANKS, HPL)
    print(f"Workload: {workload.describe()}")

    # 1. trace run ----------------------------------------------------------
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(N_RANKS))
    tracer = Tracer()
    runtime = MpiRuntime(sim, cluster, N_RANKS, rng=RandomStreams(99), tracer=tracer)
    runtime.set_memory(workload.memory_map())
    runtime.launch(workload.program_factory())
    runtime.run_to_completion()
    print(f"Trace run finished: {len(tracer.log)} send records")

    # 2. group formation (Algorithm 2) ---------------------------------------
    formation = form_groups(tracer.log, max_group_size=8, n_ranks=N_RANKS)
    print(f"Group formation: {formation.describe()}")
    for i, group in enumerate(formation.groupset.groups, start=1):
        print(f"  group {i}: {list(group)}")

    # 3. checkpointed run with the group-based protocol ------------------------
    gp = gp_family(formation.groupset)
    gp_result, spec = run_once(gp, workload, one_shot(CHECKPOINT_AT))
    print(f"\nGP   execution time: {gp_result.makespan:8.2f} s, "
          f"aggregate checkpoint time: {gp_result.aggregate_checkpoint_time():8.2f} s")

    # 4. baseline: global coordinated checkpoint (the original LAM/MPI way) ----
    norm_result, _ = run_once(norm_family(N_RANKS), workload, one_shot(CHECKPOINT_AT))
    print(f"NORM execution time: {norm_result.makespan:8.2f} s, "
          f"aggregate checkpoint time: {norm_result.aggregate_checkpoint_time():8.2f} s")
    saving = 1 - gp_result.aggregate_checkpoint_time() / norm_result.aggregate_checkpoint_time()
    print(f"Group-based checkpointing reduced checkpoint overhead by {saving:.0%}")

    # 5. restart from the checkpoint -------------------------------------------
    restart = simulate_restart(gp_result, spec)
    print(f"\nRestart: aggregate time {restart.aggregate_restart_time:.2f} s, "
          f"replayed {restart.total_replay_bytes / 1024:.1f} KB over "
          f"{restart.total_resend_operations} resend operations")


if __name__ == "__main__":
    main()
