#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one go.

By default this uses the QUICK profile (reduced scales, minutes of runtime);
pass ``--full`` to run the paper-scale sweeps (the same data the benchmark
harness produces, tens of minutes).

The sweeps run through the campaign engine: pass ``--db`` to keep the results
in a persistent store (interrupt + rerun = resume; a repeated invocation
re-runs nothing) and ``--workers`` to use several simulation processes.

With a file-backed store, ``--watch`` turns the invocation into a live text
observatory over that store instead of running experiments: it redraws the
campaign progress tables (per-status counts, throughput, ETA, lease health,
failures) every few seconds while another invocation does the work.

Run:  python examples/reproduce_paper.py [--full] [--only figure6 figure14 ...]
                                         [--db results.sqlite] [--workers N]
      python examples/reproduce_paper.py --db results.sqlite --watch
"""

import argparse
import sys
import time

from repro.analysis.reporting import format_table
from repro.campaign import (
    Campaign,
    CampaignStore,
    campaign_progress,
    render_progress_text,
    set_default_campaign,
)
from repro.experiments import figures
from repro.experiments.config import FULL, QUICK


def watch_store(db: str, interval_s: float = 5.0, once: bool = False) -> int:
    """Redraw campaign progress tables until the campaign drains (or ^C)."""
    store = CampaignStore(db)
    try:
        while True:
            progress = campaign_progress(store)
            print(f"\n--- campaign status @ {time.strftime('%H:%M:%S')} "
                  f"({progress.done_fraction:.0%} complete) ---")
            print(render_progress_text(progress))
            remaining = (progress.counts.get("pending", 0)
                         + progress.counts.get("running", 0))
            if once or remaining == 0:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
    finally:
        store.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the paper-scale FULL profile (slow)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiments to run (e.g. figure6 table1)")
    parser.add_argument("--db", default=None,
                        help="persistent campaign store (default: in-memory)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel simulation workers (needs --db)")
    parser.add_argument("--watch", action="store_true",
                        help="watch an existing store's progress instead of "
                             "running experiments (needs --db)")
    parser.add_argument("--watch-interval", type=float, default=5.0,
                        help="seconds between --watch redraws")
    args = parser.parse_args(argv)

    if args.watch:
        if args.db is None:
            parser.error("--watch needs a file-backed store; pass --db as well")
        return watch_store(args.db, interval_s=args.watch_interval)
    if args.workers > 1 and args.db is None:
        parser.error("--workers > 1 needs a file-backed store; pass --db as well")
    if args.db is not None:
        set_default_campaign(Campaign(CampaignStore(args.db), n_workers=args.workers))

    profile = FULL if args.full else QUICK
    targets = args.only if args.only else list(figures.ALL_EXPERIMENTS)
    unknown = [t for t in targets if t not in figures.ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; "
                     f"available: {sorted(figures.ALL_EXPERIMENTS)}")

    print(f"Profile: {profile.name} "
          f"(HPL scales {profile.hpl_scales}, CG scales {profile.cg_scales})\n")
    for name in targets:
        start = time.time()
        result = figures.ALL_EXPERIMENTS[name](profile)
        elapsed = time.time() - start
        print(f"=== {name}  [{elapsed:.1f}s] " + "=" * max(0, 60 - len(name)))
        for key in ("table", "diff_table", "restart_table"):
            if key in result:
                print(format_table(result[key]))
                print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
