#!/usr/bin/env python
"""Long-horizon availability sweep: sustained failures, concurrent recovery.

The paper's scalability argument is that group-based rollback confines each
failure to one checkpoint group, so the machine stays *available* as the
failure rate rises.  This example measures that end to end with the
recovery-orchestration subsystem:

1. a (method × node-MTBF × spare-count) grid runs under a seeded Poisson
   failure process — several kills per run, recoveries scheduled by the
   RecoveryManager (concurrent for disjoint groups, abort-and-restart when a
   failure lands mid-recovery, spare-node placement with in-place fallback),
2. each cell reports seed-averaged makespan, availability fraction and
   per-failure recovery cost (mean ± spread via ``average_over_seeds``),
3. the measured recovery costs calibrate the checkpoint-interval advisor
   (analytic vs measured-calibrated suggestions),
4. a concurrency ablation runs the same failure stream with recovery
   overlap disabled (the pre-manager serialised schedule).

Everything goes through the campaign engine: re-running this script serves
finished cells from the store and only simulates what is missing.

Run:  python examples/availability_sweep.py [--db PATH] [--workers N]
          [--seeds N] [--spares N] [--csv PATH] [--quick]
"""

import argparse
import sys

from repro.analysis.reporting import format_table
from repro.campaign import Campaign, CampaignStore, results_to_csv, set_default_campaign
from repro.experiments.availability import (
    availability_experiment,
    calibrated_interval_table,
    concurrency_ablation,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--db", default=None,
                        help="campaign store path (default: in-memory)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel campaign workers (needs --db)")
    parser.add_argument("--seeds", type=int, default=2,
                        help="seeds averaged per cell (default 2)")
    parser.add_argument("--spares", type=int, default=2,
                        help="spare-node count of the spares-on cells (default 2)")
    parser.add_argument("--csv", default=None,
                        help="write the seed-averaged cells to this CSV file")
    parser.add_argument("--quick", action="store_true",
                        help="tiny grid (2 rates, 1 seed) for smoke runs")
    args = parser.parse_args(argv)

    if args.db is not None:
        set_default_campaign(Campaign(CampaignStore(args.db), n_workers=args.workers))
    elif args.workers > 1:
        parser.error("--workers > 1 needs a file-backed store (--db)")

    seeds = tuple(range(1 if args.quick else args.seeds))
    rates = (100.0, 50.0) if args.quick else (240.0, 100.0, 50.0)

    out = availability_experiment(
        mtbf_per_node_s=rates,
        spare_counts=(0, args.spares),
        seeds=seeds,
    )
    print(format_table(out["table"]))
    print()

    cal = calibrated_interval_table(out["results"], mtbf_s=5000.0)
    print(format_table(cal["table"]))
    print()

    ablation = concurrency_ablation(seeds=seeds)
    print(format_table(ablation["table"]))

    if args.csv:
        fields = ("makespan", "makespan_std", "availability", "failures_injected",
                  "measured_lost_work_s", "recovery_rank_seconds",
                  "spare_migrations", "inplace_reboots", "aborted_recoveries",
                  "max_concurrent_recoveries")
        n = results_to_csv(out["results"], args.csv, metric_fields=fields)
        print(f"\nwrote {n} seed-averaged cells to {args.csv}")

    print("\nReading the table: as the per-node MTBF shrinks (left to right in")
    print("the series), NORM's makespan balloons — every failure rolls the")
    print("whole machine back — while GP only reruns the victim group and GP1")
    print("only the victim.  Spare-node placement removes the reboot wait from")
    print("every recovery, so the spares-on rows never trail the spares-off ones.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
