#!/usr/bin/env python
"""Pick checkpoint groups and intervals for a failure-prone cluster.

The paper's closing argument is operational: because group-based checkpoints
are cheap, they can be taken more often, so less work is lost per failure —
and only the affected group has to roll back.  This example puts numbers on
that argument for a large HPL-like job:

1. measure the per-checkpoint cost of GP vs NORM on a 64-process run,
2. combine it with an exponential node-failure model to compute each method's
   optimal checkpoint interval (Young's approximation) and expected overhead,
3. show the rollback scope (how many processes restart) after one node fails,
4. inject failures from the model and report the expected lost work,
5. calibrate the advisor with *measured* recovery costs: a short live
   failure-injection run per method (real group rollback + replay through
   the recovery subsystem) replaces the analytic guesses, and the analytic
   and measured-calibrated interval suggestions are shown side by side.

Run:  python examples/failure_aware_intervals.py
"""

from repro.analysis.advisor import (
    expected_overhead_fraction,
    measured_costs,
    suggest_checkpoint_interval,
)
from repro.analysis.metrics import mean_checkpoint_duration
from repro.analysis.reporting import Table, format_table
from repro.ckpt import one_shot
from repro.ckpt.presets import gp_family, norm_family
from repro.cluster import GIDEON_300, Cluster
from repro.cluster.failure import ExponentialFailureModel, expected_lost_work
from repro.core import CheckpointCoordinator, form_groups
from repro.mpi import MpiRuntime, Tracer
from repro.sim import RandomStreams, Simulator
from repro.workloads import HplWorkload
from repro.workloads.hpl import HplParameters

N_RANKS = 64
HPL = HplParameters(problem_size=12000, block_size=300, grid_rows=8, max_steps=20)
MTBF_PER_NODE_HOURS = 800.0  # a realistic commodity-node figure


def measure_checkpoint_cost(family, workload, seed=4):
    spec = GIDEON_300.with_nodes(N_RANKS)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    runtime = MpiRuntime(sim, cluster, N_RANKS, protocol_family=family,
                         rng=RandomStreams(seed))
    runtime.set_memory(workload.memory_map())
    CheckpointCoordinator(runtime, family, one_shot(6.0)).start()
    runtime.launch(workload.program_factory())
    result = runtime.run_to_completion()
    return mean_checkpoint_duration(result.checkpoint_records), result


def main() -> None:
    workload = HplWorkload(N_RANKS, HPL)
    print(f"Workload: {workload.describe()}")

    # learn groups from a trace
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(N_RANKS))
    tracer = Tracer()
    runtime = MpiRuntime(sim, cluster, N_RANKS, rng=RandomStreams(0), tracer=tracer)
    runtime.set_memory(workload.memory_map())
    runtime.launch(workload.program_factory())
    runtime.run_to_completion()
    groups = form_groups(tracer.log, max_group_size=8, n_ranks=N_RANKS).groupset
    print(f"Groups: {groups.describe()}\n")

    # 1. measured per-checkpoint cost per method
    costs = {}
    for name, family in (("GP", gp_family(groups)), ("NORM", norm_family(N_RANKS))):
        cost, _ = measure_checkpoint_cost(family, workload)
        costs[name] = cost

    # 2. failure model and optimal intervals
    model = ExponentialFailureModel(MTBF_PER_NODE_HOURS * 3600.0, rng=RandomStreams(1))
    system_mtbf = model.system_mtbf(N_RANKS)
    print(f"System MTBF with {N_RANKS} nodes: {system_mtbf / 3600.0:.1f} hours\n")

    table = Table(
        title="Fault-tolerance planning",
        columns=["method", "ckpt cost (s)", "optimal interval (s)",
                 "overhead fraction", "rollback scope (procs)"],
    )
    for name, cost in costs.items():
        suggestion = suggest_checkpoint_interval(cost, system_mtbf)
        overhead = expected_overhead_fraction(suggestion.interval_s, cost, system_mtbf)
        scope = len(groups.members(0)) if name == "GP" else N_RANKS
        table.add_row(name, cost, suggestion.interval_s, overhead, scope)
    print(format_table(table))

    # 3. expected lost work for a concrete failure drawn from the model
    failures = model.failures(horizon=system_mtbf * 3, n_nodes=N_RANKS)
    if failures:
        first = failures[0]
        print(f"\nFirst injected failure: node {first.node} at t={first.time / 3600.0:.1f} h")
        for name, cost in costs.items():
            interval = suggest_checkpoint_interval(cost, system_mtbf).interval_s
            ckpts = [i * interval for i in range(1, int(first.time / interval) + 1)]
            loss = expected_lost_work(interval, first.time, ckpts)
            print(f"  {name:4s}: checkpoints every {interval:6.0f} s -> "
                  f"expected lost work {loss:6.0f} s")
    print("\nThe cheaper group-based checkpoint affords a shorter interval, which both")
    print("lowers the steady-state overhead and shrinks the work lost per failure.")

    # 5. measured calibration: live failure injection replaces the guesses
    from repro.campaign.executor import get_default_campaign
    from repro.experiments.availability import availability_configs

    print("\nCalibrating the advisor from measured recoveries "
          "(live kills, group rollback + replay)...")
    configs = availability_configs(
        workload="halo2d", n_ranks=16, methods=("GP", "NORM"),
        mtbf_per_node_s=(50.0,), spare_counts=(0,), seeds=(0,),
        max_failures=3)
    measured_runs = {r.config.method: r
                     for r in get_default_campaign().run(configs)}
    table = Table(
        title="Analytic vs measured-calibrated interval suggestions",
        columns=["method", "ckpt cost (s)", "recovery/failure (s)",
                 "analytic interval (s)", "calibrated interval (s)"],
    )
    for name, run in measured_runs.items():
        costs = measured_costs(run)
        analytic = suggest_checkpoint_interval(costs.checkpoint_cost_s, system_mtbf)
        calibrated = suggest_checkpoint_interval(
            costs.checkpoint_cost_s, system_mtbf, measured=costs)
        table.add_row(name, round(costs.checkpoint_cost_s, 2),
                      round(costs.recovery_cost_s, 2),
                      round(analytic.interval_s, 1), round(calibrated.interval_s, 1))
    print(format_table(table))
    print("\nMeasured recovery time is time the machine does no work, so the")
    print("effective MTBF shrinks and the calibrated optimum checkpoints slightly")
    print("more often — most visibly for methods with expensive recoveries.")


if __name__ == "__main__":
    main()
