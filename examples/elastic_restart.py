#!/usr/bin/env python
"""Elastic restart sweep: shrink onto survivors when the spare pool is empty.

A job's work units are decoupled from its rank count by an explicit
partition, so when a node dies and no spare can replace it the recovery
manager *shrinks* instead of waiting out a reboot: the dead rank's units are
redistributed onto the survivors, the newest surviving checkpoint images are
shipped to the adopters, and the job relaunches one rank smaller.  This
example measures both halves of that story:

1. the *work conservation* table — one fixed domain block-partitioned onto
   4–12 ranks (shrink and expand) carries bit-identical total compute
   seconds, message bytes and memory, measured from the derived per-rank
   scripts themselves,
2. the *shrink restart* grid (method × workload, zero spares, remote
   checkpoint storage) — every cell kills rank 1's node mid-run and must
   complete on the surviving ranks, reporting ranks before → after, units
   migrated and checkpoint bytes shipped.

Everything goes through the campaign engine: re-running this script serves
finished cells from the store and only simulates what is missing.

Run:  python examples/elastic_restart.py [--db PATH] [--workers N]
          [--quick] [--csv PATH]
"""

import argparse
import sys

from repro.analysis.reporting import format_table
from repro.campaign import Campaign, CampaignStore, results_to_csv, set_default_campaign
from repro.experiments.elastic import elastic_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--db", default=None,
                        help="campaign store path (default: in-memory)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel campaign workers (needs --db)")
    parser.add_argument("--csv", default=None,
                        help="write every cell's metrics to this CSV file")
    parser.add_argument("--quick", action="store_true",
                        help="tiny grid (GP4 only, halo2d only) for smoke runs")
    args = parser.parse_args(argv)

    if args.db is not None:
        set_default_campaign(Campaign(CampaignStore(args.db), n_workers=args.workers))
    elif args.workers > 1:
        parser.error("--workers > 1 needs a file-backed store (--db)")

    workloads = ("halo2d",) if args.quick else ("halo2d", "hpl")
    methods = ("GP4",) if args.quick else ("NORM", "GP4")

    out = elastic_experiment(workloads=workloads, methods=methods)
    print(format_table(out["conservation_table"]))
    print()
    print(format_table(out["repartition_table"]))

    failed = [r for r in out["results"] if not r.survived or not r.shrink_restarts]
    if failed:
        for r in failed:
            print(f"FAILED: {r.config.workload}/{r.config.method} "
                  f"survived={r.survived} shrinks={r.shrink_restarts}")
        return 1

    if args.csv:
        fields = ("makespan", "survived", "shrink_restarts",
                  "ranks_after_restart", "units_migrated",
                  "repartition_bytes_shipped", "measured_recovery_time_s")
        n = results_to_csv(out["results"], args.csv, metric_fields=fields)
        print(f"\nwrote {n} cells to {args.csv}")

    print("\nReading the tables: the conservation rows prove a partition is")
    print("pure bookkeeping — no work appears or vanishes when the same domain")
    print("runs on fewer or more ranks.  The shrink grid then exercises that")
    print("live: every cell loses a node with no spare left, repartitions the")
    print("victim's units onto the survivors, ships its newest image to the")
    print("adopter over the network, and still completes.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
