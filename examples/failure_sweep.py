#!/usr/bin/env python
"""Failure-rate campaign sweep: the ``failure_rate`` axis end to end.

Expresses the failure-injection experiments as a declarative campaign grid
(method × checkpoint schedule), runs the simulated scenarios through a
persistent campaign store (parallel, cached, resumable), and then evaluates
the analytic ``failure_rate`` axis on top: for every per-node failure rate,
which grouping method and checkpoint interval minimise the expected total
fault-tolerance cost (measured checkpoint overhead + expected rework after
failures).

With ``--measured`` the sweep additionally *injects live failures*: for each
(method, interval) cell a rank is killed at 60% of the cell's failure-free
makespan, the victim's group actually rolls back to its last coordinated
checkpoint, out-of-group peers replay their sender logs over the simulated
network, and the measured lost work / recovery time / replay volume are
compared against the analytic model on the same grid
(``measured_work_loss_grid`` exemplar).

A second invocation against the same ``--db`` re-runs nothing — every
simulated scenario is served from the store and only the (cheap) analytic
rate sweep is recomputed.

Run:  PYTHONPATH=src python examples/failure_sweep.py [--db failures.sqlite]
          [--workers N] [--profile quick|full] [--rates 1e-7,1e-6,1e-5]
          [--measured]
"""

import argparse
import os
import sys

from repro.analysis.reporting import format_table
from repro.campaign import Campaign, CampaignStore
from repro.campaign.executor import set_default_campaign
from repro.experiments.config import profile_by_name
from repro.experiments.failures import (
    expected_work_loss_experiment,
    failure_rate_sweep,
    measured_work_loss_experiment,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--db", default="failure_sweep.sqlite",
                        help="persistent result store (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 1,
                        help="worker processes (default: all cores)")
    parser.add_argument("--profile", default="quick", choices=("quick", "full"),
                        help="experiment scale (default: %(default)s)")
    parser.add_argument("--rates", default="1e-7,1e-6,1e-5,1e-4",
                        help="comma-separated per-node failure rates (/s)")
    parser.add_argument("--fresh", action="store_true",
                        help="delete the store first (force a cold run)")
    parser.add_argument("--measured", action="store_true",
                        help="also inject live failures and measure the real "
                             "group rollback + replay (vs the analytic model)")
    args = parser.parse_args(argv)

    if args.fresh and os.path.exists(args.db):
        os.remove(args.db)
    rates = tuple(float(r) for r in args.rates.split(","))
    profile = profile_by_name(args.profile)
    # QUICK executions are short, so the candidate intervals must be too.
    intervals = (8.0, 14.0, 24.0) if profile.name == "quick" else (60.0, 120.0, 180.0)
    n_ranks = profile.hpl_scales[-1]

    campaign = Campaign(CampaignStore(args.db), n_workers=args.workers)
    set_default_campaign(campaign)
    try:
        print(f"store: {args.db}  workers: {args.workers}  profile: {profile.name}\n")

        loss = expected_work_loss_experiment(profile, n_ranks=n_ranks, intervals=intervals)
        print(format_table(loss["table"]))
        print()

        sweep = failure_rate_sweep(
            profile, n_ranks=n_ranks, failure_rates=rates, intervals=intervals
        )
        print(format_table(sweep["table"]))

        if args.measured:
            print()
            measured = measured_work_loss_experiment(
                profile, n_ranks=n_ranks, intervals=intervals,
                methods=("NORM", "GP", "GP1"),
            )
            print(format_table(measured["table"]))
        executed = campaign.last_executed
        counts = campaign.counts()
        print(f"\n[campaign] executed {executed} scenario(s) this run; store counts: {counts}")
        print("re-run the same command: everything is served from the store.")
    finally:
        set_default_campaign(None)
        campaign.store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
