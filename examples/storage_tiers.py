#!/usr/bin/env python
"""Storage-tier sweep: overhead vs restart cost vs correlated-failure survival.

The checkpoint-storage hierarchy gives every image up to three homes —
L1 (node-local disk), L2 (async partner replica on a cross-switch buddy
node), L3 (remote checkpoint servers) — and this example measures the whole
trade-off surface on one campaign grid:

1. failure-free cells give the steady-state overhead of each extra level
   (makespan at equal checkpoint counts: L1 ≤ L1+L2 ≤ L1+L2+L3, while the
   paper's NORM ≥ GP ≥ GP1 method ordering is preserved inside every level),
2. node-crash and whole-switch-outage cells give the measured restart cost
   per surviving tier (local reboot vs partner fetch vs remote fetch), and
   the *survivability matrix* — a switch outage destroys every local disk
   behind one top-of-rack switch, so L1-only and same-switch-partner
   configurations are reported UNSURVIVABLE while cross-switch L2 and L3
   recover end to end,
3. the measured per-tier checkpoint costs calibrate the advisor's
   multi-level suggestion: per-tier intervals and the FTI-style
   "promote every k-th checkpoint" counters a StoragePolicy consumes.

Everything goes through the campaign engine: re-running this script serves
finished cells from the store and only simulates what is missing.

Run:  python examples/storage_tiers.py [--db PATH] [--workers N]
          [--quick] [--csv PATH]
"""

import argparse
import sys

from repro.analysis.reporting import format_table
from repro.campaign import Campaign, CampaignStore, results_to_csv, set_default_campaign
from repro.experiments.storage_tiers import (
    storage_tier_experiment,
    tier_cost_calibration,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--db", default=None,
                        help="campaign store path (default: in-memory)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel campaign workers (needs --db)")
    parser.add_argument("--csv", default=None,
                        help="write every cell's metrics to this CSV file")
    parser.add_argument("--quick", action="store_true",
                        help="tiny grid (GP1 only) for smoke runs")
    args = parser.parse_args(argv)

    if args.db is not None:
        set_default_campaign(Campaign(CampaignStore(args.db), n_workers=args.workers))
    elif args.workers > 1:
        parser.error("--workers > 1 needs a file-backed store (--db)")

    methods = ("GP1",) if args.quick else ("NORM", "GP", "GP1")
    policies = (("L1", "L1+L2") if args.quick
                else ("L1", "L1+L2", "L1+L2same", "L1+L2+L3"))

    out = storage_tier_experiment(methods=methods, policies=policies)
    print(format_table(out["overhead_table"]))
    print()
    print(format_table(out["survivability"]))
    print()

    if not args.quick:
        cal = tier_cost_calibration(
            out["results"],
            # rough per-failure-class MTBFs of a mid-size cluster: software
            # crashes hourly-ish, node loss daily, a rack event monthly
            crash_mtbf_s=3600.0, node_loss_mtbf_s=86400.0,
            outage_mtbf_s=30 * 86400.0)
        print(format_table(cal["table"]))
        print()
        print("suggested policy knobs:", cal["suggestion"].as_policy_args())

    if args.csv:
        fields = ("makespan", "survived", "checkpoints_completed",
                  "measured_recovery_time_s", "partner_copies",
                  "replication_stalls", "outages_survived")
        n = results_to_csv(out["results"], args.csv, metric_fields=fields)
        print(f"\nwrote {n} cells to {args.csv}")

    print("\nReading the tables: each extra level buys survivability with")
    print("steady-state time — the partner replica back-pressures checkpoints")
    print("through its bounded copy buffer, the remote file system pays a")
    print("synchronous server write — and the survivability matrix shows what")
    print("that buys: only cross-switch partners or the remote tier bring a")
    print("job back from a whole-rack outage.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
