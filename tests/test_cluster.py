"""Tests for the cluster substrate: nodes, network, storage, topology, failures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.failure import (
    ExponentialFailureModel,
    FailureEvent,
    TraceFailureModel,
    expected_lost_work,
)
from repro.cluster.network import FAST_ETHERNET, GIGABIT_ETHERNET, Network, NetworkSpec
from repro.cluster.node import MB, Node, NodeSpec
from repro.cluster.storage import (
    LOCAL_IDE_DISK,
    LocalDiskArray,
    RemoteStorageServers,
    StorageSpec,
)
from repro.cluster.topology import GIDEON_300, Cluster, ClusterSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


# ----------------------------------------------------------------------------- nodes
def test_node_spec_defaults_match_gideon():
    spec = NodeSpec()
    assert spec.cpu_ghz == 2.0
    assert spec.memory_bytes == 512 * MB
    assert spec.speed_factor == 1.0


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(cpu_ghz=0)
    with pytest.raises(ValueError):
        NodeSpec(memory_bytes=0)
    with pytest.raises(ValueError):
        NodeSpec(cores=0)


def test_node_compute_time_scales_with_clock():
    fast = Node(0, NodeSpec(cpu_ghz=4.0))
    assert fast.compute_time(2.0) == pytest.approx(1.0)


def test_node_rank_placement_respects_cores():
    node = Node(0, NodeSpec(cores=1))
    node.place_rank(3)
    with pytest.raises(ValueError):
        node.place_rank(4)
    with pytest.raises(ValueError):
        node.place_rank(3)


def test_node_remove_rank():
    node = Node(0, NodeSpec(cores=2))
    node.place_rank(1)
    node.remove_rank(1)
    with pytest.raises(ValueError):
        node.remove_rank(1)


def test_node_memory_reservation():
    node = Node(0, NodeSpec(memory_bytes=100))
    node.reserve_memory(60)
    assert node.free_memory == 40
    with pytest.raises(MemoryError):
        node.reserve_memory(50)
    node.release_memory(60)
    with pytest.raises(ValueError):
        node.release_memory(1)


# ----------------------------------------------------------------------------- network
def test_network_spec_validation():
    with pytest.raises(ValueError):
        NetworkSpec(bandwidth_bytes_per_s=0)
    with pytest.raises(ValueError):
        NetworkSpec(latency_s=-1)


def test_fast_ethernet_slower_than_gigabit():
    nbytes = 1_000_000
    assert FAST_ETHERNET.serialization_time(nbytes) > GIGABIT_ETHERNET.serialization_time(nbytes)


def test_transfer_time_monotone_in_size():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 2)
    assert net.transfer_time(10_000) < net.transfer_time(1_000_000)


def test_transfer_simulated_matches_closed_form_when_uncontended():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 2)

    def proc():
        yield from net.transfer(0, 1, 500_000)
        return sim.now

    elapsed = sim.run_until_complete(sim.process(proc()))
    expected = (
        FAST_ETHERNET.per_message_overhead_s
        + FAST_ETHERNET.latency_s
        + 2 * FAST_ETHERNET.serialization_time(500_000)
    )
    assert elapsed == pytest.approx(expected, rel=1e-9)


def test_local_transfer_only_costs_overhead():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 2)

    def proc():
        yield from net.transfer(0, 0, 10_000_000)
        return sim.now

    assert sim.run_until_complete(sim.process(proc())) == pytest.approx(
        FAST_ETHERNET.per_message_overhead_s
    )


def test_network_node_range_checked():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 2)
    with pytest.raises(ValueError):
        list(net.transfer(0, 5, 10))


def test_tx_contention_serialises_senders():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 3)
    done = []

    def sender(dst):
        yield from net.tx(0, 1_000_000)
        done.append(sim.now)

    sim.process(sender(1))
    sim.process(sender(2))
    sim.run()
    # the second message must wait for the first one's serialisation
    assert done[1] >= done[0] + FAST_ETHERNET.serialization_time(1_000_000) * 0.99


def test_network_accounting():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 2)

    def proc():
        yield from net.transfer(0, 1, 1000)
        yield from net.transfer(1, 0, 2000)

    sim.process(proc())
    sim.run()
    assert net.total_messages == 2
    assert net.total_bytes == 3000


# ----------------------------------------------------------------------------- storage
def test_storage_spec_validation():
    with pytest.raises(ValueError):
        StorageSpec(write_bandwidth_bytes_per_s=0)
    with pytest.raises(ValueError):
        StorageSpec(concurrency=0)


def test_storage_write_read_times():
    spec = StorageSpec(write_bandwidth_bytes_per_s=10e6, read_bandwidth_bytes_per_s=20e6,
                       op_overhead_s=0.01)
    assert spec.write_time(10_000_000) == pytest.approx(1.01)
    assert spec.read_time(10_000_000) == pytest.approx(0.51)


def test_local_disk_array_parallel_across_nodes():
    sim = Simulator()
    disks = LocalDiskArray(sim, 2, LOCAL_IDE_DISK)
    times = {}

    def writer(node):
        elapsed = yield from disks.write(node, 35_000_000)
        times[node] = elapsed

    sim.process(writer(0))
    sim.process(writer(1))
    sim.run()
    # independent disks: both take ~1 second, not 2
    assert times[0] == pytest.approx(times[1], rel=1e-6)
    assert sim.now < 1.5


def test_local_disk_serialises_same_node():
    sim = Simulator()
    disks = LocalDiskArray(sim, 1, LOCAL_IDE_DISK)

    def writer():
        yield from disks.write(0, 35_000_000)

    sim.process(writer())
    sim.process(writer())
    sim.run()
    assert sim.now > 2.0
    assert disks.write_ops == 2


def test_remote_storage_round_robin_assignment():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 8)
    servers = RemoteStorageServers(sim, net, n_servers=4)
    assert servers.server_for(0) == 0
    assert servers.server_for(5) == 1
    with pytest.raises(ValueError):
        servers.server_for(-1)


def test_remote_storage_contention_slower_than_local():
    nbytes = 40_000_000
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 8)
    remote = RemoteStorageServers(sim, net, n_servers=1)

    def writer(node):
        yield from remote.write(node, nbytes)

    for node in range(4):
        sim.process(writer(node))
    sim.run()
    remote_time = sim.now

    sim2 = Simulator()
    local = LocalDiskArray(sim2, 4)

    def lwriter(node):
        yield from local.write(node, nbytes)

    for node in range(4):
        sim2.process(lwriter(node))
    sim2.run()
    assert remote_time > sim2.now


def test_remote_storage_accounting_per_server():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 4)
    servers = RemoteStorageServers(sim, net, n_servers=2)

    def writer(node):
        yield from servers.write(node, 1000)

    for node in range(4):
        sim.process(writer(node))
    sim.run()
    assert servers.per_server_bytes == [2000, 2000]
    assert servers.written_bytes == 4000


# ----------------------------------------------------------------------------- topology
def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(n_nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(checkpoint_storage="tape")


def test_gideon_spec_matches_paper():
    assert GIDEON_300.n_nodes == 128
    assert GIDEON_300.node.cpu_ghz == 2.0
    assert GIDEON_300.network.name == "fast-ethernet"
    assert GIDEON_300.checkpoint_storage == "local"


def test_cluster_spec_with_helpers():
    spec = GIDEON_300.with_nodes(32).with_remote_checkpointing(2)
    assert spec.n_nodes == 32
    assert spec.checkpoint_storage == "remote"
    assert spec.n_checkpoint_servers == 2


def test_cluster_places_one_rank_per_node():
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(8))
    mapping = cluster.place_ranks(8)
    assert sorted(mapping) == list(range(8))
    assert len(set(mapping.values())) == 8
    assert cluster.node_of(3) == mapping[3]


def test_cluster_placement_overflow_rejected():
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(4))
    with pytest.raises(ValueError):
        cluster.place_ranks(5)


def test_cluster_node_of_unplaced_rank_raises():
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(4))
    with pytest.raises(KeyError):
        cluster.node_of(0)


def test_cluster_checkpoint_storage_selection():
    sim = Simulator()
    local = Cluster(sim, GIDEON_300.with_nodes(4))
    assert local.checkpoint_storage is local.local_disks
    sim2 = Simulator()
    remote = Cluster(sim2, GIDEON_300.with_nodes(4).with_remote_checkpointing())
    assert remote.checkpoint_storage is remote.remote_storage


# ----------------------------------------------------------------------------- failures
def test_failure_event_validation():
    with pytest.raises(ValueError):
        FailureEvent(time=-1.0, node=0)
    with pytest.raises(ValueError):
        FailureEvent(time=0.0, node=-1)


def test_exponential_failures_within_horizon_and_sorted():
    model = ExponentialFailureModel(mtbf_per_node_s=1000.0, rng=RandomStreams(1))
    failures = model.failures(horizon=5000.0, n_nodes=4)
    assert all(0 <= f.time < 5000.0 for f in failures)
    assert failures == sorted(failures)


def test_exponential_failures_deterministic_for_seed():
    a = ExponentialFailureModel(1000.0, rng=RandomStreams(3)).failures(2000.0, 3)
    b = ExponentialFailureModel(1000.0, rng=RandomStreams(3)).failures(2000.0, 3)
    assert a == b


def test_system_mtbf_scales_inversely_with_nodes():
    model = ExponentialFailureModel(128_000.0)
    assert model.system_mtbf(128) == pytest.approx(1000.0)


def test_trace_failure_model_filters_horizon_and_nodes():
    events = [FailureEvent(10.0, 1), FailureEvent(50.0, 5), FailureEvent(99.0, 0)]
    model = TraceFailureModel(events)
    out = model.failures(horizon=60.0, n_nodes=4)
    assert out == [FailureEvent(10.0, 1)]


def test_expected_lost_work_uses_latest_checkpoint():
    assert expected_lost_work(60.0, 150.0, [60.0, 120.0]) == pytest.approx(30.0)
    assert expected_lost_work(60.0, 50.0, []) == pytest.approx(50.0)
    with pytest.raises(ValueError):
        expected_lost_work(60.0, 50.0, [-1.0])


@given(n_nodes=st.integers(min_value=1, max_value=64))
@settings(max_examples=20, deadline=None)
def test_failure_counts_grow_with_system_size(n_nodes):
    model = ExponentialFailureModel(mtbf_per_node_s=500.0, rng=RandomStreams(11))
    failures = model.failures(horizon=1000.0, n_nodes=n_nodes)
    assert all(f.node < n_nodes for f in failures)
