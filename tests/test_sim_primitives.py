"""Tests for resources, stores and RNG streams (repro.sim.primitives / rng)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.primitives import PriorityStore, Resource, Store
from repro.sim.rng import RandomStreams


# ----------------------------------------------------------------------- Resource
def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    reqs = [res.request() for _ in range(3)]
    sim.run()
    granted = [r for r in reqs if r.processed]
    assert len(granted) == 2
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_release_grants_next():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    sim.run()
    assert first.processed and not second.processed
    res.release(first)
    sim.run()
    assert second.processed
    assert res.count == 1


def test_resource_release_unqueued_request_is_noop():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    sim.run()
    res.release(first)
    res.release(first)  # double release must not corrupt state
    assert res.count == 0


def test_resource_priority_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    hold = res.request()
    low = res.request(priority=10)
    high = res.request(priority=1)
    sim.run()
    res.release(hold)
    sim.run()
    assert high.processed and not low.processed


def test_resource_serialises_processes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    finish_times = []

    def worker():
        req = res.request()
        yield req
        try:
            yield sim.timeout(1.0)
        finally:
            res.release(req)
        finish_times.append(sim.now)

    for _ in range(3):
        sim.process(worker())
    sim.run()
    assert finish_times == [1.0, 2.0, 3.0]


def test_resource_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        req = res.request()
        yield req
        with req:
            yield sim.timeout(1.0)

    sim.process(worker())
    sim.run()
    assert res.count == 0


# ----------------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    ev = store.get()
    sim.run()
    assert ev.value == "a"
    assert len(store) == 0


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    ev = store.get()

    def producer():
        yield sim.timeout(2.0)
        store.put("late")

    sim.process(producer())
    sim.run()
    assert ev.processed and ev.value == "late"


def test_store_filter_matching():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    store.put(3)
    ev = store.get(filter=lambda x: x % 2 == 0)
    sim.run()
    assert ev.value == 2
    assert store.items == [1, 3]


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    first = store.get()
    second = store.get()
    store.put("x")
    store.put("y")
    sim.run()
    assert first.value == "x" and second.value == "y"


def test_store_peek_does_not_remove():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    assert store.peek() == "a"
    assert len(store) == 1
    assert store.peek(lambda v: v == "b") is None


def test_priority_store_orders_items():
    sim = Simulator()
    store = PriorityStore(sim)
    store.put(3)
    store.put(1)
    store.put(2)
    ev = store.get()
    sim.run()
    assert ev.value == 1


# ----------------------------------------------------------------------- RandomStreams
def test_rng_same_seed_same_sequence():
    a = RandomStreams(7)
    b = RandomStreams(7)
    assert [a.uniform("x") for _ in range(5)] == [b.uniform("x") for _ in range(5)]


def test_rng_different_streams_independent_of_consumption_order():
    a = RandomStreams(7)
    b = RandomStreams(7)
    # consume stream "y" first on one of them; stream "x" must be unaffected
    _ = [b.uniform("y") for _ in range(10)]
    assert a.uniform("x") == b.uniform("x")


def test_rng_different_seeds_differ():
    assert RandomStreams(1).uniform("x") != RandomStreams(2).uniform("x")


def test_rng_negative_seed_rejected():
    with pytest.raises(ValueError):
        RandomStreams(-1)


def test_rng_exponential_mean_positive_required():
    with pytest.raises(ValueError):
        RandomStreams(0).exponential("x", 0.0)


def test_rng_bernoulli_bounds():
    rng = RandomStreams(0)
    with pytest.raises(ValueError):
        rng.bernoulli("x", 1.5)
    assert rng.bernoulli("x", 1.0) is True
    assert rng.bernoulli("x", 0.0) is False


def test_rng_lognormal_jitter_zero_sigma_is_identity():
    rng = RandomStreams(0)
    assert rng.lognormal_jitter("x", 2.5, 0.0) == 2.5


def test_rng_lognormal_jitter_negative_base_rejected():
    with pytest.raises(ValueError):
        RandomStreams(0).lognormal_jitter("x", -1.0, 0.1)


def test_rng_child_streams_differ_from_parent():
    parent = RandomStreams(5)
    child = parent.child("replica")
    assert parent.uniform("x") != child.uniform("x")


def test_rng_spawn_count():
    replicas = RandomStreams(5).spawn(3)
    assert len(replicas) == 3
    values = {r.uniform("x") for r in replicas}
    assert len(values) == 3  # all distinct


def test_rng_reset_replays_stream():
    rng = RandomStreams(9)
    first = rng.uniform("x")
    rng.reset("x")
    assert rng.uniform("x") == first


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_rng_jitter_is_positive(seed):
    rng = RandomStreams(seed)
    assert rng.lognormal_jitter("jitter", 1.0, 0.3) > 0


@given(p=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=25, deadline=None)
def test_rng_bernoulli_returns_bool(p):
    assert isinstance(RandomStreams(3).bernoulli("b", p), bool)
