"""Tests for group definitions (GroupSet) and Algorithm 2 (trace-assisted formation)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.formation import form_groups, grouping_quality, phased_group_formation
from repro.core.groups import (
    GroupSet,
    default_max_group_size,
    intra_group_traffic_fraction,
)
from repro.mpi.trace import TraceLog, TraceRecord


# ------------------------------------------------------------------------------ GroupSet
def test_groupset_single_and_singletons():
    single = GroupSet.single(4)
    assert single.n_groups == 1 and single.members(2) == (0, 1, 2, 3)
    singles = GroupSet.singletons(4)
    assert singles.n_groups == 4 and singles.members(2) == (2,)


def test_groupset_contiguous_blocks():
    gs = GroupSet.contiguous(10, 4)
    assert [len(g) for g in gs.groups] == [3, 3, 2, 2]
    assert gs.members(0) == (0, 1, 2)
    with pytest.raises(ValueError):
        GroupSet.contiguous(3, 5)


def test_groupset_round_robin_matches_table1_layout():
    gs = GroupSet.round_robin(32, 4)
    assert gs.members(0) == (0, 4, 8, 12, 16, 20, 24, 28)
    assert gs.members(3) == (3, 7, 11, 15, 19, 23, 27, 31)


def test_groupset_validation_rejects_overlap_and_out_of_range():
    with pytest.raises(ValueError):
        GroupSet(groups=((0, 1), (1, 2)), n_ranks=4)
    with pytest.raises(ValueError):
        GroupSet(groups=((0, 9),), n_ranks=4)
    with pytest.raises(ValueError):
        GroupSet(groups=((1, 0),), n_ranks=4)  # unsorted
    with pytest.raises(ValueError):
        GroupSet(groups=((),), n_ranks=4)


def test_groupset_uncovered_ranks_are_singletons():
    gs = GroupSet.from_lists([[0, 1]], n_ranks=4)
    assert gs.members(3) == (3,)
    assert gs.group_index_of(3) != gs.group_index_of(2)
    assert len(gs.all_groups()) == 3
    assert gs.covered_ranks() == {0, 1}


def test_groupset_same_group_and_sizes():
    gs = GroupSet.from_lists([[0, 1, 2], [3, 4]], n_ranks=6)
    assert gs.same_group(0, 2)
    assert not gs.same_group(2, 3)
    assert gs.max_group_size == 3
    assert gs.mean_group_size == pytest.approx((3 + 2 + 1) / 3)


def test_groupset_rank_range_checked():
    gs = GroupSet.single(4)
    with pytest.raises(ValueError):
        gs.members(7)


def test_default_max_group_size_is_ceil_sqrt():
    assert default_max_group_size(128) == 12
    assert default_max_group_size(64) == 8
    assert default_max_group_size(1) == 1
    with pytest.raises(ValueError):
        default_max_group_size(0)


def test_intra_group_traffic_fraction():
    gs = GroupSet.from_lists([[0, 1], [2, 3]], n_ranks=4)
    pair_bytes = {(0, 1): 100, (2, 3): 100, (1, 2): 50}
    assert intra_group_traffic_fraction(gs, pair_bytes) == pytest.approx(200 / 250)
    assert intra_group_traffic_fraction(gs, {}) == 1.0
    with pytest.raises(ValueError):
        intra_group_traffic_fraction(gs, {(0, 1): -5})


# ---------------------------------------------------------------------------- Algorithm 2
def _community_trace(n_groups=4, size=4, heavy=1_000_000, light=10):
    """A trace with heavy traffic inside blocks of `size` ranks, light across."""
    records = []
    n = n_groups * size
    for g in range(n_groups):
        base = g * size
        for i in range(size):
            for j in range(i + 1, size):
                records.append(TraceRecord(base + i, base + j, heavy))
    for g in range(n_groups - 1):
        records.append(TraceRecord(g * size, (g + 1) * size, light))
    return TraceLog(records, n_ranks=n)


def test_formation_recovers_planted_communities():
    trace = _community_trace()
    result = form_groups(trace, max_group_size=4)
    expected = {tuple(range(g * 4, g * 4 + 4)) for g in range(4)}
    assert set(result.groupset.groups) == expected
    assert result.intra_fraction > 0.99


def test_formation_respects_max_group_size():
    trace = _community_trace(n_groups=2, size=6)
    result = form_groups(trace, max_group_size=3)
    assert result.groupset.max_group_size <= 3
    assert result.skipped_pairs > 0


def test_formation_default_bound_is_sqrt_n():
    trace = _community_trace(n_groups=4, size=4)
    result = form_groups(trace)
    assert result.max_group_size == default_max_group_size(16) == 4


def test_formation_sorts_by_size_then_count():
    # pair (0,1) has many small messages; pair (2,3) fewer but bigger bytes;
    # with G=2 both become their own groups, and (1,2) cross traffic is skipped.
    records = [TraceRecord(0, 1, 10) for _ in range(100)] + [TraceRecord(2, 3, 10_000)]
    records.append(TraceRecord(1, 2, 1))
    trace = TraceLog(records, n_ranks=4)
    result = form_groups(trace, max_group_size=2)
    assert (0, 1) in result.groupset.groups
    assert (2, 3) in result.groupset.groups


def test_formation_unrelated_processes_not_merged():
    """Processes that never communicate must not end up in one group."""
    records = [TraceRecord(0, 1, 100), TraceRecord(2, 3, 100)]
    trace = TraceLog(records, n_ranks=6)
    result = form_groups(trace, max_group_size=6)
    assert result.groupset.same_group(0, 1)
    assert result.groupset.same_group(2, 3)
    assert not result.groupset.same_group(0, 2)
    # ranks 4 and 5 never communicate: implicit singletons
    assert result.groupset.members(4) == (4,)


def test_formation_ignores_self_messages():
    trace = TraceLog([TraceRecord(0, 0, 1000), TraceRecord(0, 1, 10)], n_ranks=2)
    result = form_groups(trace)
    assert result.groupset.same_group(0, 1)


def test_formation_empty_trace_requires_n_ranks():
    with pytest.raises(ValueError):
        form_groups(TraceLog())
    result = form_groups(TraceLog(), n_ranks=4)
    assert len(result.groupset.all_groups()) == 4  # all singletons


def test_formation_group_merging_combines_two_groups():
    # (0,1) and (2,3) form first; then the heavy (1,2) pair merges them when G allows
    records = [
        TraceRecord(0, 1, 1000),
        TraceRecord(2, 3, 900),
        TraceRecord(1, 2, 800),
    ]
    result = form_groups(TraceLog(records, n_ranks=4), max_group_size=4)
    assert result.groupset.members(0) == (0, 1, 2, 3)


def test_formation_is_deterministic():
    trace = _community_trace()
    a = form_groups(trace, max_group_size=4)
    b = form_groups(trace, max_group_size=4)
    assert a.groupset.groups == b.groupset.groups


def test_grouping_quality_metrics():
    trace = _community_trace()
    gs = GroupSet.contiguous(16, 4)
    quality = grouping_quality(gs, trace)
    assert quality["intra_fraction"] > 0.9
    assert quality["max_group_size"] == 4
    worse = grouping_quality(GroupSet.singletons(16), trace)
    assert worse["intra_fraction"] == 0.0
    assert worse["logged_bytes"] > 0


def test_phased_formation_tracks_pattern_change():
    """Phase 1 communicates in pairs (0,1)/(2,3); phase 2 switches to (0,2)/(1,3)."""
    phase1 = [TraceRecord(0, 1, 1000, timestamp=t) for t in (0.0, 1.0)] + [
        TraceRecord(2, 3, 1000, timestamp=t) for t in (0.0, 1.0)
    ]
    phase2 = [TraceRecord(0, 2, 1000, timestamp=t) for t in (10.0, 11.0)] + [
        TraceRecord(1, 3, 1000, timestamp=t) for t in (10.0, 11.0)
    ]
    trace = TraceLog(phase1 + phase2, n_ranks=4)
    results = phased_group_formation(trace, n_phases=2, max_group_size=2)
    assert results[0].groupset.same_group(0, 1)
    assert results[1].groupset.same_group(0, 2)
    with pytest.raises(ValueError):
        phased_group_formation(trace, n_phases=0)
    with pytest.raises(ValueError):
        phased_group_formation(TraceLog(), n_phases=2)


@given(
    n_ranks=st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=1000),
    g=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_formation_invariants_on_random_traces(n_ranks, seed, g):
    """Algorithm 2 always yields disjoint groups within the size bound."""
    import numpy as np

    rng = np.random.default_rng(seed)
    records = []
    for _ in range(60):
        a, b = rng.integers(0, n_ranks, size=2)
        records.append(TraceRecord(int(a), int(b), int(rng.integers(1, 10_000))))
    trace = TraceLog(records, n_ranks=n_ranks)
    result = form_groups(trace, max_group_size=g, n_ranks=n_ranks)
    groupset = result.groupset
    # disjoint cover of all ranks
    all_ranks = [r for grp in groupset.all_groups() for r in grp]
    assert sorted(all_ranks) == list(range(n_ranks))
    # size bound respected
    assert groupset.max_group_size <= max(g, 1)
    # quality metric consistent: intra fraction in [0, 1]
    assert 0.0 <= result.intra_fraction <= 1.0
