"""Indexed inbox matching and the lazy-piggyback message path.

The PR 7 kernel tier replaced the seed's predicate-scan ``Store`` inbox with
per-``(kind, src, tag)`` buckets (:class:`repro.mpi.runtime.Inbox`).  These
tests pin the semantics the buckets must preserve bit-for-bit:

* FIFO order within one ``(src, tag)`` channel,
* wildcard (``ANY_SOURCE``/``ANY_TAG``) receives returning the
  *earliest-delivered* match across buckets, interleaved with
  specific-source receives,
* ``capture_resume``'s inbox capture enumerating buffered messages in
  delivery order (what the seed's insertion-ordered list scan produced),
  including the mid-receive limbo message, and surviving a rollback restore,
* no piggyback dict allocated on the no-metadata send path.
"""

import pytest

from repro.cluster.topology import GIDEON_300, Cluster
from repro.mpi.messages import Message, MessageKind, fast_message
from repro.mpi.ops import Recv, Send
from repro.mpi.runtime import Inbox, MpiRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_runtime(n_ranks=2):
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(n_ranks))
    runtime = MpiRuntime(sim, cluster, n_ranks, rng=RandomStreams(0))
    return sim, runtime


def app_msg(src, dst, nbytes=64, tag=0):
    return fast_message(src, dst, nbytes, tag, MessageKind.APP, None, None, 0.0)


def drain(ev):
    """Value of an already-matched get event (fired through the immediate queue)."""
    assert ev._triggered, "get event should have matched a buffered message"
    return ev._value


# -- FIFO per channel ---------------------------------------------------------

def test_inbox_fifo_order_per_channel():
    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    first = app_msg(1, 0, nbytes=10, tag=7)
    second = app_msg(1, 0, nbytes=20, tag=7)
    third = app_msg(1, 0, nbytes=30, tag=7)
    for m in (first, second, third):
        inbox.put(m)
    assert len(inbox) == 3
    got = [drain(inbox.get(MessageKind.APP, 1, 7)) for _ in range(3)]
    assert got == [first, second, third]
    assert len(inbox) == 0


def test_inbox_channels_are_independent():
    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    a = app_msg(1, 0, tag=1)
    b = app_msg(2, 0, tag=1)
    c = app_msg(1, 0, tag=2)
    for m in (a, b, c):
        inbox.put(m)
    # specific receives hit their own bucket regardless of delivery order
    assert drain(inbox.get(MessageKind.APP, 1, 2)) is c
    assert drain(inbox.get(MessageKind.APP, 2, 1)) is b
    assert drain(inbox.get(MessageKind.APP, 1, 1)) is a


def test_inbox_kind_separation():
    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    ctrl = fast_message(1, 0, 64, 5, MessageKind.CONTROL, None, None, 0.0)
    app = app_msg(1, 0, tag=5)
    inbox.put(ctrl)
    inbox.put(app)
    assert drain(inbox.get(MessageKind.APP, 1, 5)) is app
    assert drain(inbox.get(MessageKind.CONTROL, 1, 5)) is ctrl


# -- wildcard interleaving ----------------------------------------------------

def test_wildcard_takes_earliest_delivered_across_buckets():
    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    a1 = app_msg(1, 0, tag=1)
    b1 = app_msg(2, 0, tag=2)
    a2 = app_msg(1, 0, tag=1)
    for m in (a1, b1, a2):
        inbox.put(m)
    # ANY_SOURCE/ANY_TAG: earliest delivery wins, exactly like the list scan
    assert drain(inbox.get(MessageKind.APP, None, None)) is a1
    # a specific receive still sees its channel FIFO (a2, not b1)
    assert drain(inbox.get(MessageKind.APP, 1, 1)) is a2
    assert drain(inbox.get(MessageKind.APP, None, None)) is b1


def test_wildcard_partial_patterns():
    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    m_src1_tag9 = app_msg(1, 0, tag=9)
    m_src2_tag9 = app_msg(2, 0, tag=9)
    m_src1_tag3 = app_msg(1, 0, tag=3)
    for m in (m_src1_tag9, m_src2_tag9, m_src1_tag3):
        inbox.put(m)
    # ANY_SOURCE with a fixed tag
    assert drain(inbox.get(MessageKind.APP, None, 9)) is m_src1_tag9
    # fixed source with ANY_TAG: src-1 FIFO is tag9 first, then tag3
    assert drain(inbox.get(MessageKind.APP, 1, None)) is m_src1_tag3
    assert drain(inbox.get(MessageKind.APP, None, None)) is m_src2_tag9


def test_blocked_getters_wake_in_registration_order():
    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    specific = inbox.get(MessageKind.APP, 2, 4)     # registered first
    wildcard = inbox.get(MessageKind.APP, None, None)
    other = app_msg(1, 0, tag=4)
    inbox.put(other)   # does not match the specific getter
    assert not specific._triggered
    assert wildcard._triggered and wildcard._value is other
    match = app_msg(2, 0, tag=4)
    inbox.put(match)
    assert specific._triggered and specific._value is match
    assert len(inbox) == 0


def test_runtime_any_source_receive_end_to_end():
    sim, rt = make_runtime(3)

    def prog(rank):
        if rank == 0:
            return [Recv(src=None, tag=1), Recv(src=None, tag=1)]
        return [Send(dst=0, nbytes=100 * rank, tag=1)]

    rt.launch(prog)
    rt.run_to_completion()
    assert rt.ctx(0).account.received_from(1) == 100
    assert rt.ctx(0).account.received_from(2) == 200


# -- capture/restore under rollback ------------------------------------------

def test_capture_resume_inbox_in_delivery_order_with_limbo_message():
    sim, rt = make_runtime(2)
    rt.attach_failure_source()
    ctx = rt.ctx(1)
    # delivery order across three buckets, plus a control message that the
    # capture must exclude
    m1 = app_msg(0, 1, nbytes=10, tag=1)
    m2 = app_msg(0, 1, nbytes=20, tag=2)
    ctrl = fast_message(0, 1, 64, 3, MessageKind.CONTROL, None, None, 0.0)
    m3 = app_msg(0, 1, nbytes=30, tag=1)
    for m in (m1, m2, ctrl, m3):
        ctx.inbox.put(m)
    # mid-receive: a blocked get has already matched m1 (the limbo message)
    # when the checkpoint captures the rank
    pending = ctx.inbox.get(MessageKind.APP, 0, 1)
    assert pending._triggered and pending._value is m1
    ctx.pending_get = pending
    resume = rt.capture_resume(ctx)
    # the seed list scan produced: limbo first, then buffered app messages in
    # insertion (delivery) order
    assert resume.inbox == [m1, m2, m3]
    # rollback: a fresh inbox restored from the capture replays the same order
    ctx.reset_for_rollback()
    ctx.inbox.restore(resume.inbox)
    assert ctx.inbox.items_in_order() == [m1, m2, m3]
    assert drain(ctx.inbox.get(MessageKind.APP, None, None)) is m1


def test_restore_then_new_deliveries_keep_global_order():
    sim, rt = make_runtime(2)
    rt.attach_failure_source()
    ctx = rt.ctx(1)
    old = app_msg(0, 1, tag=1)
    ctx.inbox.restore([old])
    fresh = app_msg(0, 1, tag=2)
    ctx.inbox.put(fresh)
    assert ctx.inbox.items_in_order() == [old, fresh]
    assert drain(ctx.inbox.get(MessageKind.APP, None, None)) is old


# -- lazy piggyback -----------------------------------------------------------

def test_no_piggyback_path_allocates_no_dict():
    """Without protocol metadata a message must carry ``piggyback=None``."""
    msg = fast_message(0, 1, 128, 0, MessageKind.APP, None, None, 0.0)
    assert msg.piggyback is None
    assert Message(src=0, dst=1, nbytes=128).piggyback is None


class _SpyInbox(Inbox):
    __slots__ = ("captured",)

    def __init__(self, sim, rank):
        super().__init__(sim, rank)
        self.captured = []

    def put(self, msg):
        self.captured.append(msg)
        Inbox.put(self, msg)


def test_runtime_send_without_protocol_delivers_none_piggyback():
    sim, rt = make_runtime(2)

    def prog(rank):
        if rank == 0:
            return [Send(dst=1, nbytes=256, tag=1)]
        return [Recv(src=0, tag=1)]

    spy = _SpyInbox(sim, 1)
    rt.ctx(1).inbox = spy
    rt.launch(prog)
    rt.run_to_completion()
    assert len(spy.captured) == 1
    assert spy.captured[0].piggyback is None


def test_message_seq_numbers_shared_counter():
    a = fast_message(0, 1, 1, 0, MessageKind.APP, None, None, 0.0)
    b = Message(src=0, dst=1, nbytes=1)
    assert b.seq > a.seq


def test_message_slots_reject_stray_attributes():
    msg = app_msg(0, 1)
    with pytest.raises(AttributeError):
        msg.not_a_field = 1
