"""Live failure injection: kill ranks mid-run, measure real rollback + replay.

The assertions pin down the properties the measured failure experiments rely
on:

* **Scoped rollback** — only the victim's checkpoint group loses progress
  past its last coordinated checkpoint; out-of-group ranks execute exactly
  the operations of the failure-free run.
* **Exactly-once channels** — after recovery, every channel's cumulative
  sent/received byte and message totals equal the failure-free run's (skip
  accounting, connection-reset drops and log replay deliver every byte
  exactly once).
* **Replay structure** — replayed channels exist iff the protocol logs
  inter-group traffic (none under NORM, sender logs under GP-k/GP1), and
  every replayed channel crosses a group boundary and touches the rollback
  set.
* **Determinism** — a seeded :class:`PoissonFailureModel` produces identical
  recovery metrics with ``REPRO_SIM_FASTPATH=0`` and ``=1``.
* **Measured vs analytic** — measured lost work preserves the paper's
  NORM >= GP-k >= GP1 ordering and tracks the analytic model on the same grid.
"""

from __future__ import annotations

import pytest

from repro.ckpt.scheduler import periodic
from repro.cluster.failure import (
    FailureEvent,
    FailureInjector,
    PoissonFailureModel,
    TraceFailureModel,
)
from repro.cluster.topology import Cluster, GIDEON_300
from repro.core.coordinator import CheckpointCoordinator
from repro.experiments.config import QUICK, FailureSpec, ScenarioConfig
from repro.experiments.runner import build_family, build_workload, run_scenario
from repro.mpi.runtime import MpiRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _launch(method="GP4", n=16, workload="halo2d", interval=0.3, seed=7,
            failure_model=None, detection_delay_s=0.25):
    """Build a runtime (+ optional injector) for a QUICK-ish scenario."""
    wl = build_workload(workload, n, {})
    spec = GIDEON_300.with_nodes(max(GIDEON_300.n_nodes, n))
    family = build_family(method, n, workload, spec, {}, None, None)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    runtime = MpiRuntime(sim, cluster, n, protocol_family=family,
                         rng=RandomStreams(seed))
    runtime.set_memory(wl.memory_map())
    CheckpointCoordinator(runtime, family, periodic(interval)).start()
    injector = None
    if failure_model is not None:
        injector = FailureInjector(runtime, failure_model,
                                   detection_delay_s=detection_delay_s)
        injector.start()
    runtime.launch(wl.program_factory())
    return runtime, injector


def _channel_totals(app):
    out = {}
    for ctx in app.contexts:
        for peer in ctx.account.peers():
            out[(ctx.rank, peer, "S")] = ctx.account.sent_to(peer)
            out[(ctx.rank, peer, "Sm")] = ctx.account.messages_sent_to(peer)
            out[(ctx.rank, peer, "R")] = ctx.account.received_from(peer)
            out[(ctx.rank, peer, "Rm")] = ctx.account.messages_received_from(peer)
    return out


@pytest.fixture(scope="module")
def gp4_pair():
    """One failure-free and one killed run of the same GP4 scenario."""
    runtime, _ = _launch()
    base = runtime.run_to_completion(limit_s=1e5)
    kill_at = base.makespan * 0.6
    node = runtime.ctx(0).node_id  # placement is deterministic across runs
    runtime2, injector = _launch(
        failure_model=TraceFailureModel([FailureEvent(kill_at, node)]))
    failed = runtime2.run_to_completion(limit_s=1e6)
    return base, failed, runtime2, injector


class TestScopedRollback:
    def test_run_completes_and_only_victim_group_rolls_back(self, gp4_pair):
        base, failed, runtime, injector = gp4_pair
        assert all(ctx.finished for ctx in failed.contexts)
        assert len(injector.injected_events) == 1
        assert len(failed.recovery) == 1
        report = failed.recovery[0]
        # GP4 on 16 ranks: rank 0's group is (0, 1, 2, 3)
        assert report.rollback_ranks == (0, 1, 2, 3)
        rolled = set(report.rollback_ranks)
        for ctx in failed.contexts:
            if ctx.rank in rolled:
                assert ctx.stats.rollbacks == 1
            else:
                assert ctx.stats.rollbacks == 0

    def test_out_of_group_ranks_do_no_extra_work(self, gp4_pair):
        base, failed, _, _ = gp4_pair
        rolled = set(failed.recovery[0].rollback_ranks)
        for b, f in zip(base.contexts, failed.contexts):
            if b.rank in rolled:
                # lost work really was re-executed
                assert f.stats.ops_executed > b.stats.ops_executed
            else:
                assert f.stats.ops_executed == b.stats.ops_executed

    def test_rollback_target_is_a_coordinated_checkpoint(self, gp4_pair):
        _, failed, runtime, _ = gp4_pair
        report = failed.recovery[0]
        assert report.target_ckpt_id is not None
        for rank in report.rollback_ranks:
            ids = [s.ckpt_id for s in runtime.ctx(rank).protocol.snapshot_history()]
            assert report.target_ckpt_id in ids
        # lost work per rank = failure time minus that checkpoint's completion
        for rec in report.ranks:
            assert rec.lost_work_s > 0
            assert rec.recovery_time_s > 0

    def test_channel_totals_match_failure_free_run(self, gp4_pair):
        base, failed, _, _ = gp4_pair
        assert _channel_totals(failed) == _channel_totals(base)

    def test_makespan_grows_by_the_disruption(self, gp4_pair):
        base, failed, _, _ = gp4_pair
        assert failed.makespan > base.makespan


class TestReplayStructure:
    def test_gp4_replays_only_inter_group_channels(self, gp4_pair):
        _, failed, runtime, _ = gp4_pair
        report = failed.recovery[0]
        assert report.channels, "inter-group traffic must be replayed under GP4"
        rolled = set(report.rollback_ranks)
        family = runtime.protocol_family
        for ch in report.channels:
            assert ch.src in rolled or ch.dst in rolled
            assert family.group_id_of(ch.src) != family.group_id_of(ch.dst)
            assert ch.nbytes > 0 and ch.n_messages > 0
        assert report.replayed_bytes == sum(c.nbytes for c in report.channels)

    def test_replayed_bytes_match_sender_log_plans(self, gp4_pair):
        """Replay must equal the gap between restored R and the sender's S.

        For every channel into the rollback set, the bytes the receiver was
        missing at rollback (sender's cumulative S at the kill minus the
        receiver's restored RR) must be covered exactly once — by replay for
        data the (non-rolled-back) sender will not re-send.  Since final
        totals equal the failure-free run (exactly-once), here we check the
        replay channels are consistent with the snapshots they restored.
        """
        _, failed, runtime, _ = gp4_pair
        report = failed.recovery[0]
        target = report.target_ckpt_id
        by_channel = {(c.src, c.dst): c for c in report.channels}
        for (src, dst), ch in by_channel.items():
            if dst not in set(report.rollback_ranks):
                continue
            snap = next(s for s in runtime.ctx(dst).protocol.snapshot_history()
                        if s.ckpt_id == target)
            restored_rr = snap.resume.rr.get(src, 0)
            # replayed data strictly extends what the restored rank had
            assert ch.nbytes > 0
            assert restored_rr + ch.nbytes <= runtime.ctx(src).account.sent_to(dst)

    def test_norm_needs_no_replay(self):
        runtime, _ = _launch(method="NORM")
        base = runtime.run_to_completion(limit_s=1e5)
        node = None
        runtime, injector = _launch(
            method="NORM",
            failure_model=TraceFailureModel(
                [FailureEvent(base.makespan * 0.6, 0)]))
        failed = runtime.run_to_completion(limit_s=1e6)
        report = failed.recovery[0]
        # one global group: everyone rolls back, nothing is inter-group
        assert len(report.rollback_ranks) == failed.n_ranks
        assert report.channels == []
        assert report.replayed_bytes == 0
        assert _channel_totals(failed) == _channel_totals(base)

    def test_failure_before_first_checkpoint_restarts_from_scratch(self):
        runtime, injector = _launch(
            failure_model=TraceFailureModel([FailureEvent(0.05, 0)]),
            interval=0.4)
        failed = runtime.run_to_completion(limit_s=1e6)
        report = failed.recovery[0]
        assert report.target_ckpt_id is None
        assert all(ctx.finished for ctx in failed.contexts)
        for rec in report.ranks:
            assert rec.image_bytes == 0  # nothing to restore, re-created fresh


class TestDeterminism:
    METRICS = staticmethod(lambda app: (
        app.makespan,
        app.checkpoints_completed,
        [(r.failure_time, r.node, r.rollback_ranks, r.target_ckpt_id,
          r.total_lost_work_s, r.max_recovery_time_s, r.replayed_bytes,
          r.replayed_messages, r.completed_at) for r in app.recovery],
        sum(c.stats.skipped_bytes for c in app.contexts),
        sum(c.stats.skipped_sends for c in app.contexts),
    ))

    def _poisson_run(self):
        model = PoissonFailureModel(rate_per_node_s=1 / 120.0,
                                    rng=RandomStreams(42), max_failures=2)
        runtime, _ = _launch(failure_model=model)
        return runtime.run_to_completion(limit_s=1e6)

    def test_fastpath_settings_agree_bit_for_bit(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "1")
        fast = self.METRICS(self._poisson_run())
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        slow = self.METRICS(self._poisson_run())
        assert fast == slow
        assert fast[2], "the seeded model must inject at least one failure"

    def test_same_seed_reproduces_exactly(self):
        a = self.METRICS(self._poisson_run())
        b = self.METRICS(self._poisson_run())
        assert a == b


class TestScenarioIntegration:
    def test_failure_spec_round_trips_through_the_campaign_store(self):
        from repro.campaign.store import config_from_dict, config_to_dict, scenario_key

        cfg = ScenarioConfig(
            "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
            failure=FailureSpec(at_s=1.5, victim_rank=2, detection_delay_s=0.1))
        again = config_from_dict(config_to_dict(cfg))
        assert again == cfg
        assert scenario_key(again) == scenario_key(cfg)
        # failure-free configs keep their pre-failure-feature key shape
        free = ScenarioConfig("halo2d", 16, "GP4", periodic(0.3),
                              do_restart=False, seed=3)
        assert "failure" not in config_to_dict(free)

    def test_run_scenario_measures_recovery(self):
        cfg = ScenarioConfig(
            "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
            failure=FailureSpec(at_s=1.9, victim_rank=0))
        result = run_scenario(cfg)
        assert result.failures_injected == 1
        assert result.rollback_ranks_total == 4
        assert result.measured_lost_work_s > 0
        assert result.measured_recovery_time_s > 0
        payload_metrics = result.recovery_reports[0]
        assert payload_metrics.rollback_ranks == (0, 1, 2, 3)

    def test_metrics_payload_carries_recovery_fields(self):
        from repro.campaign.results import metrics_payload

        cfg = ScenarioConfig(
            "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
            failure=FailureSpec(at_s=1.9, victim_rank=0))
        payload = metrics_payload(run_scenario(cfg))
        assert payload["failures_injected"] == 1
        assert payload["rollback_ranks_total"] == 4
        assert payload["measured_lost_work_s"] > 0
        assert payload["replayed_bytes"] > 0


class TestMeasuredVsAnalytic:
    @pytest.fixture(scope="class")
    def experiment(self):
        from repro.campaign.executor import reset_default_campaign
        from repro.experiments.failures import measured_work_loss_experiment

        reset_default_campaign()
        out = measured_work_loss_experiment(
            QUICK, n_ranks=16, intervals=(8.0,), methods=("NORM", "GP", "GP1"),
            failure_fraction=0.6)
        reset_default_campaign()
        return {p.method: p for p in out["points"]}

    def test_group_size_ordering_matches_the_paper(self, experiment):
        assert (experiment["NORM"].measured_lost_work_s
                >= experiment["GP"].measured_lost_work_s
                >= experiment["GP1"].measured_lost_work_s)
        assert (experiment["NORM"].rollback_ranks
                > experiment["GP"].rollback_ranks
                > experiment["GP1"].rollback_ranks == 1)

    def test_measured_loss_tracks_the_analytic_model(self, experiment):
        for point in experiment.values():
            assert point.analytic_total_loss_s > 0
            ratio = point.measured_lost_work_s / point.analytic_total_loss_s
            # same grid, same failure instant: the analytic model should be
            # within a modest factor of the measurement (it ignores recovery
            # dynamics, staggered checkpoint ends and partial-op effects)
            assert 0.5 <= ratio <= 2.0, (point.method, ratio)

    def test_only_logging_methods_replay(self, experiment):
        assert experiment["NORM"].replayed_bytes == 0
        assert experiment["GP"].replayed_bytes > 0
        assert experiment["GP1"].replayed_bytes > 0
