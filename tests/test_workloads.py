"""Tests for the workload generators (HPL, NPB CG, NPB SP, synthetic)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.ops import Compute, Op, Recv, Send, SendRecv
from repro.workloads.base import Workload, coarsen_steps
from repro.workloads.hpl import HplParameters, HplWorkload
from repro.workloads.npb_cg import CgParameters, CgWorkload, cg_grid
from repro.workloads.npb_sp import SpParameters, SpWorkload
from repro.workloads.synthetic import (
    AllToAllWorkload,
    Halo2DWorkload,
    MasterWorkerWorkload,
    RingWorkload,
    SyntheticParameters,
)


# ------------------------------------------------------------------------------ helpers
def total_sent_bytes(workload: Workload) -> dict:
    """Total bytes each rank sends according to its script (without running the sim)."""
    out = {}
    for rank in range(workload.n_ranks):
        sent = 0
        for op in workload.program(rank):
            if isinstance(op, Send):
                sent += op.nbytes
            elif isinstance(op, SendRecv):
                sent += op.send_nbytes
        out[rank] = sent
    return out


# -------------------------------------------------------------------------------- base
def test_coarsen_steps_preserves_total():
    chunks = coarsen_steps(167, 48)
    assert sum(chunks) == 167
    assert len(chunks) == 48
    assert max(chunks) - min(chunks) <= 1
    assert coarsen_steps(5, 100) == [1, 1, 1, 1, 1]
    with pytest.raises(ValueError):
        coarsen_steps(0, 10)


def test_workload_base_validation():
    with pytest.raises(ValueError):
        RingWorkload(0)
    wl = RingWorkload(4)
    with pytest.raises(ValueError):
        wl.memory_bytes(9)


# --------------------------------------------------------------------------------- HPL
def test_hpl_requires_multiple_of_grid_rows():
    with pytest.raises(ValueError):
        HplWorkload(30, HplParameters(grid_rows=8))


def test_hpl_grid_geometry_row_major():
    wl = HplWorkload(32, HplParameters(grid_rows=8))
    assert wl.P == 8 and wl.Q == 4
    assert wl.coords(0) == (0, 0)
    assert wl.coords(5) == (1, 1)
    assert wl.rank_of(1, 1) == 5
    with pytest.raises(ValueError):
        wl.rank_of(9, 0)


def test_hpl_column_members_match_table1():
    wl = HplWorkload(32, HplParameters(grid_rows=8))
    assert wl.column_members(0) == (0, 4, 8, 12, 16, 20, 24, 28)
    assert wl.row_members(0) == (0, 1, 2, 3)


def test_hpl_memory_fits_gideon_nodes():
    for n in (16, 32, 64, 128):
        wl = HplWorkload(n)
        assert wl.memory_bytes(0) < 512 * 1024 * 1024
    # memory per rank shrinks as the problem is divided
    assert HplWorkload(128).memory_bytes(0) < HplWorkload(16).memory_bytes(0)


def test_hpl_total_flops_and_compute_estimate():
    wl = HplWorkload(16)
    assert wl.total_flops() == pytest.approx((2 / 3) * 20000 ** 3)
    assert wl.estimated_compute_seconds() > 100


def test_hpl_program_has_expected_structure():
    wl = HplWorkload(16, HplParameters(problem_size=4000, block_size=200, grid_rows=4,
                                       max_steps=6))
    ops = list(wl.program(0))
    assert any(isinstance(op, Compute) for op in ops)
    assert any(isinstance(op, (Send, SendRecv)) for op in ops)
    # message sizes shrink as the factorisation proceeds (trailing matrix shrinks)
    sizes = [op.send_nbytes for op in ops if isinstance(op, SendRecv)]
    assert sizes[0] > sizes[-1]


def test_hpl_column_traffic_dominates_row_traffic():
    """The property that makes Algorithm 2 recover process-column groups (Table 1)."""
    wl = HplWorkload(32, HplParameters(problem_size=8000, block_size=200, max_steps=8))
    col_bytes = 0
    row_bytes = 0
    for rank in range(wl.n_ranks):
        _, col = wl.coords(rank)
        col_set = set(wl.column_members(col))
        for op in wl.program(rank):
            if isinstance(op, SendRecv):
                target_set = col_set
                if op.dst in target_set:
                    col_bytes += op.send_nbytes
                else:
                    row_bytes += op.send_nbytes
            elif isinstance(op, Send):
                if op.dst in col_set:
                    col_bytes += op.nbytes
                else:
                    row_bytes += op.nbytes
    assert col_bytes > row_bytes


def test_hpl_parameter_validation():
    with pytest.raises(ValueError):
        HplParameters(problem_size=0)
    with pytest.raises(ValueError):
        HplParameters(gflops_per_rank=0)
    with pytest.raises(ValueError):
        HplParameters(max_steps=0)


# ---------------------------------------------------------------------------------- CG
def test_cg_grid_layouts():
    assert cg_grid(16) == (4, 4)
    assert cg_grid(32) == (4, 8)
    assert cg_grid(64) == (8, 8)
    assert cg_grid(128) == (8, 16)
    with pytest.raises(ValueError):
        cg_grid(24)


def test_cg_transpose_partner_is_involution():
    for n in (16, 32, 64, 128):
        wl = CgWorkload(n)
        for rank in range(n):
            partner = wl.transpose_partner(rank)
            assert 0 <= partner < n
            assert wl.transpose_partner(partner) == rank


def test_cg_reduce_partners_symmetric():
    wl = CgWorkload(32)
    for rank in range(32):
        for partner in wl._reduce_partners(rank):
            assert rank in wl._reduce_partners(partner)


def test_cg_program_is_communication_heavy():
    wl = CgWorkload(16, CgParameters(na=30000, max_steps=4))
    ops = list(wl.program(0))
    comm_ops = [op for op in ops if not isinstance(op, Compute)]
    assert len(comm_ops) > len(ops) / 2


def test_cg_memory_and_segments_scale_down_with_ranks():
    assert CgWorkload(128).memory_bytes(0) < CgWorkload(16).memory_bytes(0)
    assert CgWorkload(128).segment_bytes() < CgWorkload(16).segment_bytes()


def test_cg_parameter_validation():
    with pytest.raises(ValueError):
        CgParameters(na=0)
    with pytest.raises(ValueError):
        CgParameters(gflops_per_rank=0)
    with pytest.raises(ValueError):
        CgWorkload(24)


# ---------------------------------------------------------------------------------- SP
def test_sp_requires_square_process_count():
    with pytest.raises(ValueError):
        SpWorkload(60)
    assert SpWorkload(81).side == 9


def test_sp_neighbours_wrap_around():
    wl = SpWorkload(16)
    east, west, north, south = wl.neighbours(3)  # (0, 3) on a 4x4 grid
    assert east == wl.rank_of(0, 0)
    assert west == wl.rank_of(0, 2)
    assert north == wl.rank_of(3, 3)
    assert south == wl.rank_of(1, 3)


def test_sp_face_bytes_and_memory_scale():
    assert SpWorkload(121).face_bytes() < SpWorkload(64).face_bytes()
    assert SpWorkload(121).memory_bytes(0) < SpWorkload(64).memory_bytes(0)


def test_sp_program_balanced_across_ranks():
    wl = SpWorkload(16, SpParameters(grid_points=64, time_steps=20, max_steps=4))
    sent = total_sent_bytes(wl)
    values = set(sent.values())
    assert len(values) == 1  # perfectly symmetric pattern


def test_sp_parameter_validation():
    with pytest.raises(ValueError):
        SpParameters(grid_points=0)
    with pytest.raises(ValueError):
        SpParameters(max_steps=0)


# ----------------------------------------------------------------------------- synthetic
def test_synthetic_parameter_validation():
    with pytest.raises(ValueError):
        SyntheticParameters(iterations=0)
    with pytest.raises(ValueError):
        SyntheticParameters(message_bytes=-1)


def test_ring_workload_sends_to_right_neighbour_only():
    wl = RingWorkload(4, SyntheticParameters(iterations=3))
    for rank in range(4):
        for op in wl.program(rank):
            if isinstance(op, SendRecv):
                assert op.dst == (rank + 1) % 4
                assert op.src == (rank - 1) % 4


def test_halo2d_grid_dimensions_cover_all_ranks():
    wl = Halo2DWorkload(12)
    assert wl.rows * wl.cols == 12
    coords = {wl.coords(r) for r in range(12)}
    assert len(coords) == 12


def test_master_worker_rank0_is_the_hub():
    wl = MasterWorkerWorkload(5, SyntheticParameters(iterations=2))
    sent = total_sent_bytes(wl)
    assert sent[0] > max(sent[r] for r in range(1, 5))
    # workers only talk to rank 0
    for rank in range(1, 5):
        for op in wl.program(rank):
            if isinstance(op, Send):
                assert op.dst == 0


def test_all_to_all_workload_sends_to_everyone():
    wl = AllToAllWorkload(4, SyntheticParameters(iterations=1))
    for rank in range(4):
        dsts = {op.dst for op in wl.program(rank) if isinstance(op, Send)}
        assert dsts == set(range(4)) - {rank}


def test_single_rank_workloads_have_no_communication():
    for cls in (RingWorkload, Halo2DWorkload, AllToAllWorkload):
        wl = cls(1, SyntheticParameters(iterations=2))
        assert all(not isinstance(op, (Send, SendRecv, Recv)) for op in wl.program(0))


# ------------------------------------------------------------- global send/recv matching
def _communication_is_closed(workload: Workload) -> bool:
    """Every (src, dst, tag) send has a matching receive and vice versa."""
    sends = {}
    recvs = {}
    for rank in range(workload.n_ranks):
        for op in workload.program(rank):
            if isinstance(op, Send):
                sends[(rank, op.dst, op.tag)] = sends.get((rank, op.dst, op.tag), 0) + 1
            elif isinstance(op, SendRecv):
                sends[(rank, op.dst, op.tag)] = sends.get((rank, op.dst, op.tag), 0) + 1
                if op.src is not None:
                    recvs[(op.src, rank, op.tag)] = recvs.get((op.src, rank, op.tag), 0) + 1
            elif isinstance(op, Recv):
                if op.src is not None:
                    recvs[(op.src, rank, op.tag)] = recvs.get((op.src, rank, op.tag), 0) + 1
    return sends == recvs


@pytest.mark.parametrize(
    "workload",
    [
        HplWorkload(16, HplParameters(problem_size=4000, block_size=200, grid_rows=4, max_steps=6)),
        HplWorkload(32, HplParameters(problem_size=4000, block_size=400, max_steps=4)),
        CgWorkload(16, CgParameters(na=30000, max_steps=3)),
        CgWorkload(32, CgParameters(na=30000, max_steps=3)),
        SpWorkload(16, SpParameters(grid_points=64, time_steps=12, max_steps=3)),
        RingWorkload(5, SyntheticParameters(iterations=3)),
        Halo2DWorkload(6, SyntheticParameters(iterations=2)),
        MasterWorkerWorkload(4, SyntheticParameters(iterations=2)),
        AllToAllWorkload(4, SyntheticParameters(iterations=2)),
    ],
    ids=lambda wl: f"{wl.name}-{wl.n_ranks}",
)
def test_point_to_point_communication_is_closed(workload):
    """Every explicit point-to-point send is received exactly once (no orphan messages)."""
    assert _communication_is_closed(workload)


@given(n_ranks=st.sampled_from([4, 8, 16]), iterations=st.integers(min_value=1, max_value=5))
@settings(max_examples=15, deadline=None)
def test_ring_workload_communication_closed_property(n_ranks, iterations):
    wl = RingWorkload(n_ranks, SyntheticParameters(iterations=iterations))
    assert _communication_is_closed(wl)


def test_program_factory_and_memory_map_helpers():
    wl = RingWorkload(3)
    factory = wl.program_factory()
    assert isinstance(next(iter(factory(0))), Op)
    assert len(wl.memory_map()) == 3
    assert wl.total_operations(0) > 0


def test_hpl_bidirectional_row_exchange_uses_channels_both_ways():
    # the increasing ring drives each row channel in one direction only
    # (for Q > 2), which is why RR piggyback GC is structurally dead on the
    # paper's own workload; the bidirectional variant fixes that.
    def row_channel_directions(params):
        wl = HplWorkload(24, params)  # 8x3 grid: Q = 3
        directions = set()
        for rank in range(24):
            row = wl.coords(rank)[0]
            row_set = set(wl.row_members(row))
            for op in wl.program(rank):
                if isinstance(op, Send) and op.dst in row_set:
                    directions.add((rank, op.dst))
        return directions

    ring = row_channel_directions(HplParameters(max_steps=6))
    bidir = row_channel_directions(
        HplParameters(max_steps=6, row_bcast="bidirectional"))
    # ring: no channel is ever used in both directions
    assert not any((b, a) in ring for (a, b) in ring)
    # bidirectional: every used row channel eventually carries both directions
    assert any((b, a) in bidir for (a, b) in bidir)
    reversed_pairs = {(b, a) for (a, b) in bidir}
    assert bidir == reversed_pairs


def test_hpl_bidirectional_broadcast_conserves_row_volume():
    # the variant changes channel *directions*, not the modeled volume: both
    # broadcasts move (Q-1) x panel bytes per row per step, so makespans and
    # method comparisons stay comparable across variants
    def row_bcast_bytes(params, n):
        wl = HplWorkload(n, params)
        total = 0
        for rank in range(n):
            row_set = set(wl.row_members(wl.coords(rank)[0]))
            for op in wl.program(rank):
                if isinstance(op, Send) and op.dst in row_set and op.tag in (2, 4):
                    total += op.nbytes
        return total

    for n in (16, 24, 32):  # Q = 2, 3, 4
        ring = row_bcast_bytes(HplParameters(max_steps=6), n)
        bidir = row_bcast_bytes(
            HplParameters(max_steps=6, row_bcast="bidirectional"), n)
        assert ring == bidir > 0


def test_hpl_row_bcast_parameter_validation():
    with pytest.raises(ValueError, match="row_bcast"):
        HplParameters(row_bcast="zigzag")
