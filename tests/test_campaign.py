"""Tests for the campaign engine (grids, store, executor, exports)."""

import csv
import os
import pickle

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignStore,
    ParameterGrid,
    StoredResult,
    campaign_worker,
    config_from_dict,
    config_to_dict,
    execute_scenario,
    metrics_payload,
    results_to_csv,
    results_to_series,
    results_to_table,
    scenario_key,
    set_default_campaign,
    summary_table,
)
from repro.ckpt.scheduler import one_shot, periodic
from repro.cluster.topology import GIDEON_300
from repro.experiments.config import QUICK, ScenarioConfig
from repro.experiments.runner import run_scenario

RING_OPTS = {"iterations": 6, "compute_seconds": 0.05}


def ring_config(method="NORM", seed=1, **kwargs):
    base = dict(workload="ring", n_ranks=4, method=method, schedule=one_shot(0.2),
                workload_options=dict(RING_OPTS), seed=seed)
    base.update(kwargs)
    return ScenarioConfig(**base)


def ring_grid():
    return ParameterGrid(
        axes={"method": ("NORM", "GP1"), "seed": (1, 2)},
        base=dict(workload="ring", n_ranks=4, schedule=one_shot(0.2),
                  workload_options=dict(RING_OPTS)),
    )


# ------------------------------------------------------------------- keys & round-trips
def test_scenario_key_is_stable_and_sensitive():
    a = ring_config()
    b = ring_config()
    assert scenario_key(a) == scenario_key(b)
    # every varying field must change the key
    assert scenario_key(a) != scenario_key(ring_config(seed=2))
    assert scenario_key(a) != scenario_key(ring_config(method="GP1"))
    assert scenario_key(a) != scenario_key(ring_config(schedule=one_shot(0.3)))
    assert scenario_key(a) != scenario_key(
        ring_config(cluster=GIDEON_300.with_remote_checkpointing(2)))
    # option-dict insertion order must not matter
    c = ring_config(workload_options={"compute_seconds": 0.05, "iterations": 6})
    assert scenario_key(a) == scenario_key(c)


def test_config_round_trip_through_json():
    for config in (
        ring_config(),
        ring_config(schedule=None),
        ring_config(schedule=periodic(3.0, first_at=1.0, max_checkpoints=4)),
        ring_config(cluster=GIDEON_300.with_remote_checkpointing(3),
                    max_group_size=2, do_restart=False),
    ):
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert scenario_key(rebuilt) == scenario_key(config)


def test_worker_entry_points_are_picklable():
    # the executor path must survive any multiprocessing start method
    assert pickle.loads(pickle.dumps(execute_scenario)) is execute_scenario
    assert pickle.loads(pickle.dumps(campaign_worker)) is campaign_worker
    pickle.dumps(ring_config())


# ----------------------------------------------------------------------------- the grid
def test_grid_expands_cartesian_product_in_order():
    grid = ring_grid()
    configs = grid.expand()
    assert len(grid) == 4 and len(configs) == 4
    # first axis varies slowest
    assert [(c.method, c.seed) for c in configs] == [
        ("NORM", 1), ("NORM", 2), ("GP1", 1), ("GP1", 2)]


def test_grid_per_axis_overrides_and_dedup():
    grid = ParameterGrid(
        axes={"workload": ("ring", "halo2d"), "n_ranks": (4, 9)},
        base=dict(method="GP1", workload_options={"iterations": 3}),
        overrides={"workload": {"halo2d": {"workload_options": {"iterations": 2}}}},
    )
    configs = grid.expand()
    assert len(configs) == 4
    by_workload = {c.workload: c for c in configs}
    assert by_workload["ring"].workload_options == {"iterations": 3}
    assert by_workload["halo2d"].workload_options == {"iterations": 2}
    # a redundant axis value collapses via content-hash dedup
    dup = ParameterGrid(axes={"seed": (1, 1)}, base=dict(workload="ring", n_ranks=4))
    assert len(dup.expand()) == 1


def test_grid_rejects_unknown_fields():
    with pytest.raises(ValueError):
        ParameterGrid(axes={"bogus": (1,)}, base=dict(workload="ring", n_ranks=4))
    with pytest.raises(ValueError):
        ParameterGrid(axes={"seed": (1,)}, base=dict(nope=2))
    with pytest.raises(ValueError):
        ParameterGrid(axes={"seed": (1,)}, base=dict(workload="ring", n_ranks=4),
                      overrides={"seed": {1: {"bad_field": 0}}})
    # an override for a value that is not on the axis would be silently inert
    with pytest.raises(ValueError):
        ParameterGrid(axes={"workload": ("ring",)}, base=dict(n_ranks=4),
                      overrides={"workload": {"Ring": {"max_group_size": 2}}})


# ---------------------------------------------------------------------------- the store
def test_store_round_trip_and_status_flow():
    store = CampaignStore(":memory:")
    config = ring_config()
    key = store.add(config)
    assert store.add(config) == key  # idempotent
    assert len(store) == 1
    assert store.counts()["pending"] == 1

    row = store.claim("w1")
    assert row is not None and row.key == key
    assert row.status == "running" and row.worker == "w1" and row.attempts == 1
    assert row.config == config
    assert store.claim("w2") is None  # nothing else pending

    store.mark_done(key, {"makespan": 1.5}, duration_s=0.1)
    row = store.get(config)
    assert row.status == "done"
    assert row.metrics == {"makespan": 1.5}
    assert row.duration_s == 0.1
    assert [r.key for r in store.rows(status="done")] == [key]


def test_store_failure_and_reset():
    store = CampaignStore(":memory:")
    k1 = store.add(ring_config(seed=1))
    k2 = store.add(ring_config(seed=2))
    store.claim("w1")
    store.claim("w1")
    store.mark_failed(k1, "Traceback: boom")
    # k2 stays 'running' — its worker "crashed"
    assert store.counts() == {"pending": 0, "running": 1, "done": 0, "failed": 1}
    assert store.get(k1).error == "Traceback: boom"
    assert store.reset(("running", "failed")) == 2
    assert store.counts()["pending"] == 2
    assert store.get(k1).error is None


# ------------------------------------------------------------------------- the campaign
def test_campaign_runs_and_serves_cache_hits():
    campaign = Campaign()
    configs = ring_grid().expand()
    results = campaign.run(configs)
    assert campaign.last_executed == len(configs)
    assert all(isinstance(r, StoredResult) for r in results)
    # results arrive in input order and are the real simulation metrics
    direct = run_scenario(configs[0])
    assert results[0].makespan == direct.makespan
    assert results[0].aggregate_checkpoint_time == direct.aggregate_checkpoint_time
    assert results[0].breakdown().n_records == direct.breakdown().n_records

    again = campaign.run(configs)
    assert campaign.last_executed == 0  # all served from 'done' rows
    assert [r.makespan for r in again] == [r.makespan for r in results]
    assert all(row.attempts == 1 for row in campaign.store.rows())


def test_campaign_records_failure_and_retries_on_rerun():
    campaign = Campaign()
    good = ring_config(seed=3)
    bad = ring_config(seed=4, workload_options={"bogus_option": 1})
    with pytest.raises(CampaignError) as err:
        campaign.run([good, bad])
    assert "bogus_option" in str(err.value)
    assert campaign.counts()["done"] == 1 and campaign.counts()["failed"] == 1

    # a plain re-run retries the failed row (resume semantics) but never the
    # done one; non-strict returns None for the row that failed again
    results = campaign.run([good, bad], strict=False)
    assert campaign.last_executed == 1
    assert results[0] is not None and results[1] is None
    assert campaign.store.get(bad).status == "failed"
    assert campaign.store.get(bad).attempts == 2
    assert campaign.store.get(good).attempts == 1


def test_stale_worker_cannot_clobber_finished_rows():
    store = CampaignStore(":memory:")
    key = store.add(ring_config())
    store.claim("a")
    assert store.mark_done(key, {"version": 1, "makespan": 1.0})
    # worker "a"'s duplicate execution dying late must not discard the result
    assert not store.mark_failed(key, "late crash")
    assert not store.mark_done(key, {"version": 1, "makespan": 2.0})
    row = store.get(key)
    assert row.status == "done" and row.metrics["makespan"] == 1.0


def test_run_invalidates_rows_from_older_payload_versions():
    campaign = Campaign()
    config = ring_config()
    key = campaign.store.add(config)
    campaign.store.claim("old-build")
    campaign.store.mark_done(key, {"version": 0, "makespan": -1.0})
    results = campaign.run([config])
    assert campaign.last_executed == 1  # stale row re-ran instead of serving
    assert results[0].makespan > 0
    assert campaign.store.get(key).metrics["version"] > 0


def test_campaign_run_is_scoped_but_resume_drains_the_store():
    # run() must not execute unrelated pending rows sharing the store
    # (a quick figure must never trigger someone's paper-scale backlog);
    # resume() is the explicit whole-store drain.
    campaign = Campaign()
    unrelated = ring_config(seed=99)
    campaign.store.add(unrelated)
    requested = [ring_config(seed=1)]
    results = campaign.run(requested)
    assert len(results) == 1 and campaign.last_executed == 1
    assert campaign.store.get(unrelated).status == "pending"
    assert campaign.resume() == 1
    assert campaign.store.get(unrelated).status == "done"


def test_campaign_rerun_recovers_orphaned_running_rows():
    # "interrupt, then simply re-run" — rows left 'running' by a crashed
    # worker are re-opened by the next run() over the same configs once
    # their lease has lapsed (lease_s=0 models an already-expired claim)
    campaign = Campaign()
    configs = ring_grid().expand()
    campaign.store.add_many(configs)
    crashed = campaign.store.claim("doomed-worker", lease_s=0.0)
    results = campaign.run(configs)
    assert len(results) == len(configs)
    assert campaign.counts()["done"] == len(configs)
    assert campaign.store.get(crashed.key).attempts == 2


def test_campaign_resume_after_simulated_worker_crash(tmp_path):
    path = str(tmp_path / "campaign.sqlite")
    campaign = Campaign(CampaignStore(path))
    configs = ring_grid().expand()
    campaign.store.add_many(configs)
    # a worker claims a row and "crashes" before writing anything back
    # (its heartbeat dies with it, so the zero-length lease is already stale)
    crashed = campaign.store.claim("doomed-worker", lease_s=0.0)
    assert crashed is not None
    assert campaign.counts()["running"] == 1

    executed = campaign.resume()
    assert executed == len(configs)
    assert campaign.counts() == {"pending": 0, "running": 0,
                                 "done": len(configs), "failed": 0}
    # the crashed row was re-claimed by a fresh worker and finished
    row = campaign.store.get(crashed.key)
    assert row.status == "done" and row.attempts == 2
    assert row.worker != "doomed-worker"


def test_parallel_campaign_matches_sequential(tmp_path):
    configs = ring_grid().expand()
    sequential = [run_scenario(config) for config in configs]

    campaign = Campaign(CampaignStore(str(tmp_path / "par.sqlite")), n_workers=2)
    results = campaign.run(configs)
    for got, want in zip(results, sequential):
        assert got.makespan == want.makespan
        assert got.aggregate_checkpoint_time == want.aggregate_checkpoint_time
        assert got.aggregate_restart_time == want.aggregate_restart_time
        assert got.checkpoints_completed == want.checkpoints_completed


def test_parallel_campaign_requires_file_store():
    with pytest.raises(ValueError):
        Campaign(CampaignStore(":memory:"), n_workers=2)


# ------------------------------------------------------- the figure sweeps run on top
def test_hpl_sweep_quick_parallel_matches_sequential_and_caches(tmp_path):
    """Acceptance: cold hpl_sweep(QUICK) with 2 workers == sequential; warm run free."""
    from repro.experiments import figures

    grid = figures.hpl_grid(QUICK)
    configs = grid.expand()
    assert len(configs) == len(QUICK.hpl_scales) * len(figures.HPL_METHODS)
    sequential = {
        (c.method, c.n_ranks): metrics_payload(run_scenario(c)) for c in configs
    }

    campaign = Campaign(CampaignStore(str(tmp_path / "hpl.sqlite")), n_workers=2)
    set_default_campaign(campaign)
    try:
        cold = figures.hpl_sweep(QUICK)
        assert campaign.last_executed == len(configs)
        for key, result in cold.items():
            assert result.metrics == sequential[key], f"mismatch for {key}"

        warm = figures.hpl_sweep(QUICK)
        assert campaign.last_executed == 0  # no simulation re-ran
        assert all(row.attempts == 1 for row in campaign.store.rows())
        assert {k: v.makespan for k, v in warm.items()} == \
               {k: v.makespan for k, v in cold.items()}

        # figures consume the stored results directly
        fig5 = figures.figure5(QUICK)
        assert campaign.last_executed == 0
        assert len(fig5["table"].rows) == len(QUICK.hpl_scales)
    finally:
        set_default_campaign(None)


# ------------------------------------------------------------------------------ exports
def _finished_campaign():
    campaign = Campaign()
    results = campaign.run(ring_grid().expand())
    return campaign, results


def test_results_to_series_groups_by_method():
    _, results = _finished_campaign()
    series = results_to_series(results, x="seed", y="makespan", group_by="method")
    assert {s.name for s in series} == {"NORM", "GP1"}
    for s in series:
        assert s.x == [1, 2]
        assert all(y > 0 for y in s.y)


def test_results_to_table_and_csv(tmp_path):
    campaign, results = _finished_campaign()
    table = results_to_table(results, title="ring sweep")
    assert len(table.rows) == len(results)
    assert table.column("method") == ["NORM", "NORM", "GP1", "GP1"]
    assert all(v > 0 for v in table.column("makespan"))

    path = str(tmp_path / "out.csv")
    assert results_to_csv(results, path) == len(results)
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    assert rows[0][0] == "workload" and len(rows) == len(results) + 1

    summary = summary_table(campaign.store)
    assert summary.column("done") == [len(results)]


def test_export_rejects_unknown_columns():
    _, results = _finished_campaign()
    with pytest.raises(KeyError):
        results_to_series(results, x="seed", y="makspan")  # typo must not yield Nones


# ------------------------------------------------------- simulator fingerprint stamping
def test_payload_carries_simulator_fingerprint():
    from repro.campaign.results import payload_stamp, simulator_fingerprint

    payload = metrics_payload(run_scenario(ring_config()))
    assert payload["sim_version"] == simulator_fingerprint()
    stamp = payload_stamp()
    assert all(payload[name] == value for name, value in stamp.items())


def test_run_invalidates_rows_from_older_simulator_fingerprint():
    from repro.campaign.results import PAYLOAD_VERSION

    campaign = Campaign()
    config = ring_config()
    key = campaign.store.add(config)
    campaign.store.claim("old-kernel")
    # right payload version, but written by a different simulator build
    campaign.store.mark_done(
        key, {"version": PAYLOAD_VERSION, "sim_version": "0.0.1+kernel-r0",
              "makespan": -1.0})
    results = campaign.run([config])
    assert campaign.last_executed == 1  # stale row re-ran instead of serving
    assert results[0].makespan > 0
    assert campaign.store.get(key).metrics["sim_version"] != "0.0.1+kernel-r0"


def test_resume_reopens_stale_fingerprint_rows():
    from repro.campaign.results import PAYLOAD_VERSION

    campaign = Campaign()
    config = ring_config()
    key = campaign.store.add(config)
    campaign.store.claim("old-kernel")
    campaign.store.mark_done(
        key, {"version": PAYLOAD_VERSION, "sim_version": "stale", "makespan": -1.0})
    assert campaign.resume() == 1
    row = campaign.store.get(key)
    assert row.status == "done" and row.metrics["makespan"] > 0


def test_stale_done_keys_scoped_and_matching_rows_kept():
    from repro.campaign.results import payload_stamp

    campaign = Campaign()
    fresh_config = ring_config(seed=1)
    campaign.run([fresh_config])  # writes a correctly stamped row
    stale_config = ring_config(seed=2)
    stale_key = campaign.store.add(stale_config)
    campaign.store.claim("old")
    campaign.store.mark_done(stale_key, {"version": 0, "makespan": 0.0})
    stamp = payload_stamp()
    assert campaign.store.stale_done_keys(stamp) == [stale_key]
    # scoped scan: restricting to the fresh key reports nothing stale
    assert campaign.store.stale_done_keys(stamp, keys=[scenario_key(fresh_config)]) == []
    assert campaign.store.stale_done_keys(stamp, keys=[]) == []


# ------------------------------------------------------------------ benchmark side table
def test_benchmark_rows_round_trip_and_append():
    store = CampaignStore(":memory:")
    first = store.record_benchmark("kernel_speed", {"events_per_s": 100.0})
    second = store.record_benchmark("kernel_speed", {"events_per_s": 200.0})
    store.record_benchmark("other", {"x": 1})
    assert second > first
    rows = store.benchmark_rows("kernel_speed")
    assert [row["payload"]["events_per_s"] for row in rows] == [100.0, 200.0]
    assert len(store.benchmark_rows()) == 3


# ------------------------------------------------------------- failure-rate campaign
def test_failure_rate_sweep_runs_through_campaign_and_caches():
    from repro.experiments.failures import failure_rate_sweep

    campaign = Campaign()
    set_default_campaign(campaign)
    try:
        out = failure_rate_sweep(QUICK, n_ranks=16, intervals=(8.0,),
                                 failure_rates=(1e-6, 1e-3))
        assert len(out["points"]) == 4  # 2 rates x 2 methods
        executed_cold = campaign.last_executed
        assert executed_cold > 0
        # a higher failure rate can only raise the expected total cost
        by_method = {}
        for point in out["points"]:
            by_method.setdefault(point.method, []).append(point)
        for points in by_method.values():
            points.sort(key=lambda p: p.failure_rate_per_node_s)
            assert points[0].expected_total_cost_s <= points[1].expected_total_cost_s
        # warm rerun: everything served from the store
        failure_rate_sweep(QUICK, n_ranks=16, intervals=(8.0,),
                           failure_rates=(1e-6, 1e-3))
        assert campaign.last_executed == 0
    finally:
        set_default_campaign(None)


# ------------------------------------------------------------------ lease/heartbeat
def test_claim_stamps_a_lease_and_renewal_extends_it():
    store = CampaignStore(":memory:")
    store.add(ring_config())
    row = store.claim("w1", lease_s=120.0)
    assert row.lease_expires_at is not None
    before = row.lease_expires_at
    assert store.renew_lease(row.key, "w1", lease_s=600.0)
    assert store.get(row.key).lease_expires_at > before
    # the wrong worker (or a finished row) cannot renew
    assert not store.renew_lease(row.key, "someone-else")
    store.mark_done(row.key, {"makespan": 1.0})
    assert not store.renew_lease(row.key, "w1")


def test_expired_leases_are_reclaimed_but_live_ones_are_not():
    store = CampaignStore(":memory:")
    configs = ring_grid().expand()
    store.add_many(configs)
    stale = store.claim("crashed", lease_s=0.0)
    live = store.claim("alive", lease_s=3600.0)
    assert store.expired_running_keys() == [stale.key]
    assert store.reclaim_expired() == 1
    assert store.get(stale.key).status == "pending"
    assert store.get(live.key).status == "running"
    # a reclaimed row's original owner cannot renew its stale lease
    assert not store.renew_lease(stale.key, "crashed")


def test_concurrent_run_waits_for_live_rows_instead_of_duplicating(tmp_path):
    import threading
    import time as _time

    from repro.campaign.results import payload_stamp

    path = str(tmp_path / "campaign.sqlite")
    config = ring_config()
    holder = CampaignStore(path)
    holder.add(config)
    held = holder.claim("other-live-campaign", lease_s=3600.0)

    results = {}

    def run():
        # sqlite connections are per-thread: build the campaign in here
        campaign = Campaign(CampaignStore(path))
        results["rows"] = campaign.run([config])
        results["executed"] = campaign.last_executed
        campaign.store.close()

    thread = threading.Thread(target=run)
    thread.start()
    _time.sleep(0.15)
    # the concurrent run() must still be waiting, not re-executing
    assert thread.is_alive()
    assert holder.get(held.key).status == "running"
    metrics = dict(payload_stamp(), makespan=1.25)
    assert holder.mark_done(held.key, metrics)
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert results["executed"] == 0  # served, never duplicated
    assert results["rows"][0].makespan == 1.25
    assert holder.get(held.key).attempts == 1
    holder.close()


def test_run_takes_over_once_a_lease_expires(tmp_path):
    path = str(tmp_path / "campaign.sqlite")
    config = ring_config()
    holder = CampaignStore(path)
    holder.add(config)
    holder.claim("crashed-campaign", lease_s=0.05)

    import time as _time
    _time.sleep(0.06)
    campaign = Campaign(CampaignStore(path))
    results = campaign.run([config])
    assert campaign.last_executed == 1
    assert results[0].makespan > 0
    holder.close()


def test_heartbeat_thread_keeps_a_claim_alive(tmp_path):
    import time as _time

    from repro.campaign.executor import _LeaseHeartbeat

    path = str(tmp_path / "campaign.sqlite")
    store = CampaignStore(path)
    store.add(ring_config())
    row = store.claim("hb-worker", lease_s=0.3)
    heartbeat = _LeaseHeartbeat(path, row.key, "hb-worker", lease_s=0.3)
    try:
        _time.sleep(0.5)
        # without renewal the 0.3 s lease would have lapsed by now
        assert store.expired_running_keys() == []
    finally:
        heartbeat.stop()
    _time.sleep(0.4)
    assert store.expired_running_keys() == [row.key]
    store.close()


# ------------------------------------------------------------- priorities & seed-averaging
def test_priority_orders_the_claim_queue():
    store = CampaignStore()
    low = store.add(ring_config(seed=1))
    urgent = store.add(ring_config(seed=2), priority=5)
    mid = store.add(ring_config(seed=3), priority=2)
    order = []
    while True:
        row = store.claim("w")
        if row is None:
            break
        order.append(row.key)
        store.mark_done(row.key, {"makespan": 1.0})
    assert order == [urgent, mid, low]
    assert store.get(urgent).priority == 5


def test_set_priority_promotes_existing_rows():
    store = CampaignStore()
    first = store.add(ring_config(seed=1))
    second = store.add(ring_config(seed=2))
    assert store.set_priority([second], 9) == 1
    assert store.claim("w").key == second
    assert store.set_priority([], 1) == 0


def test_campaign_run_priority_jumps_a_shared_queue():
    campaign = Campaign(CampaignStore())
    bulk = ring_config(seed=1)
    campaign.store.add(bulk)  # pending bulk work from another sweep
    urgent = ring_config(seed=2)
    results = campaign.run([urgent], priority=10)
    assert len(results) == 1
    # the bulk row is untouched (run() is scoped) and still lower priority
    assert campaign.store.get(bulk).status == "pending"
    assert campaign.store.get(scenario_key(urgent)).priority == 10


def test_average_over_seeds_means_and_spread():
    from repro.campaign import average_over_seeds

    a = StoredResult(ring_config(seed=1), {"makespan": 2.0, "checkpoints_completed": 1,
                                           "version": 4, "sim_version": "x"})
    b = StoredResult(ring_config(seed=2), {"makespan": 4.0, "checkpoints_completed": 1,
                                           "version": 4, "sim_version": "x"})
    other = StoredResult(ring_config(method="GP1", seed=1), {"makespan": 10.0})
    (cell, lone) = average_over_seeds([a, b, other])
    assert cell.config.seed == 1 and cell.config.method == "NORM"
    assert cell.metrics["n_seeds"] == 2
    assert cell.makespan == pytest.approx(3.0)
    assert cell.metrics["makespan_std"] == pytest.approx(1.0)
    assert cell.metrics["checkpoints_completed"] == 1
    assert cell.metrics["sim_version"] == "x"
    assert lone.metrics["n_seeds"] == 1
    assert lone.makespan == 10.0
    assert lone.metrics["makespan_std"] == 0.0


def test_average_over_seeds_collapses_failure_seed_too():
    from repro.campaign import average_over_seeds
    from repro.experiments.config import FailureSpec

    def cfg(seed):
        return ring_config(seed=seed,
                           failure=FailureSpec(mtbf_per_node_s=50.0, seed=seed))

    a = StoredResult(cfg(1), {"makespan": 1.0})
    b = StoredResult(cfg(2), {"makespan": 3.0})
    (cell,) = average_over_seeds([a, b])
    assert cell.metrics["n_seeds"] == 2
    assert cell.makespan == pytest.approx(2.0)


def test_average_over_seeds_feeds_series_helpers():
    from repro.campaign import average_over_seeds

    results = [
        StoredResult(ring_config(method=m, seed=s), {"makespan": v})
        for (m, s, v) in [("NORM", 1, 2.0), ("NORM", 2, 4.0),
                          ("GP1", 1, 1.0), ("GP1", 2, 3.0)]
    ]
    averaged = average_over_seeds(results)
    series = results_to_series(averaged, x="n_ranks", y="makespan")
    assert {s.name for s in series} == {"NORM", "GP1"}
    (norm,) = [s for s in series if s.name == "NORM"]
    assert list(zip(norm.x, norm.y)) == [(4, 3.0)]


def test_set_priority_only_raise_never_demotes():
    store = CampaignStore()
    key = store.add(ring_config(seed=1), priority=5)
    # plain call may demote (explicit re-prioritisation)
    assert store.set_priority([key], 2) == 1
    assert store.get(key).priority == 2
    # only_raise never undercuts a higher stamp
    store.set_priority([key], 7)
    assert store.set_priority([key], 3, only_raise=True) == 0
    assert store.get(key).priority == 7
    assert store.set_priority([key], 9, only_raise=True) == 1
    assert store.get(key).priority == 9


# ------------------------------------------------- telemetry auto-export
def test_drain_store_auto_exports_per_worker_traces(tmp_path, monkeypatch):
    """REPRO_TELEMETRY_DIR: each worker's drain writes a parseable trace."""
    import sys

    from repro.campaign import drain_store

    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
    store = CampaignStore(":memory:")
    keys = [store.add(ring_config(seed=s)) for s in (11, 12, 13, 14)]
    assert drain_store(store, worker="w1", keys=keys[:2]) == 2
    assert drain_store(store, worker="w2", keys=keys[2:]) == 2
    assert store.counts()["done"] == 4

    files = sorted(os.listdir(tmp_path))
    assert files == ["campaign-trace-w1.json", "campaign-trace-w2.json"]

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
    try:
        from tools.timeline import load_spans
    finally:
        sys.path.pop(0)
    for name in files:
        spans, tracks = load_spans(os.path.join(str(tmp_path), name))
        # one campaign_task span per claimed row, on the worker's track
        tasks = [s for s in spans if s["name"] == "campaign_task"]
        assert len(tasks) == 2
        assert all(float(s["dur"]) >= 0 and "ts" in s for s in tasks)
        assert tracks


def test_drain_store_without_telemetry_env_writes_nothing(tmp_path, monkeypatch):
    from repro.campaign import drain_store

    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
    store = CampaignStore(":memory:")
    store.add(ring_config(seed=21))
    assert drain_store(store, worker="w1") == 1
    assert os.listdir(tmp_path) == []


# ------------------------------------------------- payload v8 series summaries
def test_payload_v8_carries_sampler_summary():
    from repro.obs import Telemetry

    config = ring_config(seed=31)
    telemetry = Telemetry(trace=False, sample_bin_s=0.05)
    result = run_scenario(config, telemetry=telemetry)
    payload = metrics_payload(result)
    summary = payload["sampler_summary"]
    assert summary and summary == telemetry.sampler.summary()

    stored = StoredResult(config, payload)
    assert stored.sampler_summary == summary
    assert stored.nic_util_peak == summary["nic_util_peak"]
    assert stored.nic_util_mean == summary["nic_util_mean"]
    assert stored.inbox_depth_max == summary["inbox_depth_max"]
    assert stored.log_bytes_peak == summary["log_bytes_peak"]


def test_payload_without_sampler_defaults_empty():
    config = ring_config(seed=32)
    result = run_scenario(config)
    payload = metrics_payload(result)
    assert payload["sampler_summary"] == {}
    stored = StoredResult(config, payload)
    assert stored.sampler_summary == {}
    assert stored.nic_util_peak == 0.0


# --------------------------------------------------- campaign observatory
def _progress_store():
    store = CampaignStore(":memory:")
    keys = [store.add(ring_config(seed=40 + i)) for i in range(6)]
    for _ in range(5):
        store.claim("w1")
    for i in range(3):
        store.mark_done(keys[i], {"makespan": 1.0 + i}, duration_s=2.0 + i)
    store.mark_failed(keys[3], "ValueError: boom\nTraceback (most recent)")
    return store, keys


def test_campaign_progress_snapshot():
    from repro.campaign import campaign_progress

    store, keys = _progress_store()
    progress = campaign_progress(store)
    assert progress.counts == {"pending": 1, "running": 1, "done": 3, "failed": 1}
    assert progress.total == 6
    assert progress.done_fraction == pytest.approx(0.5)
    assert progress.mean_duration_s == pytest.approx(3.0)
    assert progress.eta_s is not None
    # failure summaries keep only the first error line
    assert progress.failures == {keys[3]: "ValueError: boom"}
    # the running row holds a live lease
    (lease,) = progress.leases
    assert lease[1] == "w1" and lease[2] > 0
    assert progress.expired_leases == 0


def test_campaign_progress_empty_store():
    from repro.campaign import (campaign_progress, progress_tables,
                                render_progress_html, render_progress_text)

    progress = campaign_progress(CampaignStore(":memory:"))
    assert progress.total == 0
    assert progress.is_empty
    assert progress.done_fraction == 0.0
    assert progress.eta_s is None  # no rows: no projection, not "drained"
    assert progress.throughput_per_s == 0.0
    tables = progress_tables(progress)
    assert [t.title for t in tables][:2] == ["Campaign status", "Rates"]
    rates = tables[1]
    assert any("no rows yet" in str(cell) for row in rates.rows for cell in row)
    # both renderers must survive (and say so) rather than divide by zero
    assert "no rows yet" in render_progress_text(progress)
    html_page = render_progress_html(progress)
    assert "no rows yet" in html_page
    as_dict = progress.as_dict()
    assert as_dict["is_empty"] and as_dict["eta_s"] is None
    assert as_dict["total"] == 0


def test_progress_renderers():
    from repro.campaign import (campaign_progress, render_progress_html,
                                render_progress_text)

    store, _ = _progress_store()
    progress = campaign_progress(store)
    text = render_progress_text(progress)
    assert "Campaign status" in text and "Lease health" in text
    assert "ValueError: boom" in text

    html = render_progress_html(progress, title="obs test")
    assert "obs test" in html
    assert "50%" in html  # hero done-fraction
    assert 'class="meter"' in html
    assert "prefers-color-scheme: dark" in html
    # status is never colour alone: icon + label pairs present
    assert "✓ done" in html and "✗ failed" in html


def test_dashboard_cli_writes_html(tmp_path):
    from repro.campaign import dashboard

    db = str(tmp_path / "sweep.sqlite")
    store = CampaignStore(db)
    key = store.add(ring_config(seed=50))
    store.claim("w1")
    store.mark_done(key, {"makespan": 1.0}, duration_s=0.5)
    store.close()

    out = str(tmp_path / "observatory.html")
    assert dashboard.main(["--db", db, "--html", out]) == 0
    html_text = open(out, encoding="utf-8").read()
    assert "campaign observatory" in html_text
    assert "100%" in html_text
