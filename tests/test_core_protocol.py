"""Integration-level tests of Algorithm 1 (group protocol), the coordinator,
the Chandy–Lamport baseline, and the restart orchestration."""

import pytest

from repro.ckpt import one_shot, periodic
from repro.ckpt.base import ProtocolConfig, STAGE_CHECKPOINT, STAGE_COORDINATION
from repro.ckpt.chandy_lamport import VclConfig
from repro.ckpt.presets import (
    gp1_family,
    gp4_family,
    gp_family,
    norm_family,
    vcl_family,
)
from repro.cluster.topology import GIDEON_300, Cluster
from repro.core.coordinator import CheckpointCoordinator
from repro.core.groups import GroupSet
from repro.core.restart import replay_volumes, simulate_restart, skip_volumes
from repro.mpi.runtime import MpiRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.synthetic import Halo2DWorkload, RingWorkload, SyntheticParameters


QUIET_CONFIG = ProtocolConfig(
    channel_stall_probability=0.0,
    unexpected_delay_probability=0.0,
)


def run_workload(n_ranks, family, workload, schedule=None, seed=1, propagation=0.012):
    spec = GIDEON_300.with_nodes(n_ranks)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    runtime = MpiRuntime(sim, cluster, n_ranks, protocol_family=family, rng=RandomStreams(seed))
    runtime.set_memory(workload.memory_map())
    coordinator = None
    if schedule is not None:
        coordinator = CheckpointCoordinator(runtime, family, schedule,
                                            propagation_delay_s=propagation)
        coordinator.start()
    runtime.launch(workload.program_factory())
    result = runtime.run_to_completion(limit_s=1e6)
    return result, runtime, coordinator, spec


def ring_workload(n, iterations=16, message_bytes=128 * 1024):
    return RingWorkload(n, SyntheticParameters(iterations=iterations,
                                               message_bytes=message_bytes,
                                               compute_seconds=0.05,
                                               memory_bytes=24 * 1024 * 1024))


# ----------------------------------------------------------------------- basic protocol
def test_every_rank_checkpoints_once_under_norm():
    n = 6
    result, *_ = run_workload(n, norm_family(n, QUIET_CONFIG), ring_workload(n), one_shot(0.3))
    records = result.checkpoint_records
    assert len(records) == n
    assert {r.rank for r in records} == set(range(n))
    assert all(r.group_size == n for r in records)
    assert all(set(r.stages) == {"lock_mpi", "coordination", "checkpoint", "finalize"}
               for r in records)


def test_gp1_has_no_coordination_peers_and_logs_everything():
    n = 4
    family = gp1_family(n, QUIET_CONFIG)
    result, runtime, _, _ = run_workload(n, family, ring_workload(n), one_shot(0.3))
    assert all(r.group_size == 1 for r in result.checkpoint_records)
    for ctx in runtime.contexts:
        # every application message is inter-group under GP1, hence logged
        assert ctx.protocol.log.total_logged_messages == ctx.stats.messages_sent


def test_norm_never_logs_messages():
    n = 4
    family = norm_family(n, QUIET_CONFIG)
    _, runtime, _, _ = run_workload(n, family, ring_workload(n), one_shot(0.3))
    for ctx in runtime.contexts:
        assert ctx.protocol.log.total_logged_messages == 0
        assert ctx.protocol.logged_bytes_total == 0


def test_group_protocol_logs_only_inter_group_messages():
    n = 8
    groups = GroupSet.contiguous(n, 2)  # ring neighbours 3-4 and 7-0 cross groups
    family = gp_family(groups, QUIET_CONFIG)
    _, runtime, _, _ = run_workload(n, family, ring_workload(n), one_shot(0.3))
    for ctx in runtime.contexts:
        proto = ctx.protocol
        ring_right = (ctx.rank + 1) % n
        if groups.same_group(ctx.rank, ring_right):
            assert proto.log.bytes_for(ring_right) == 0
        else:
            assert proto.log.total_logged_messages > 0


def test_checkpoint_record_stage_sum_matches_duration():
    n = 4
    result, *_ = run_workload(n, norm_family(n, QUIET_CONFIG), ring_workload(n), one_shot(0.3))
    for rec in result.checkpoint_records:
        assert sum(rec.stages.values()) == pytest.approx(rec.duration, rel=1e-6)
        assert rec.stage(STAGE_CHECKPOINT) > 0


def test_intra_group_channels_are_drained_at_checkpoint():
    """Coordinated members have no in-transit intra-group data at their snapshots."""
    n = 6
    family = norm_family(n, QUIET_CONFIG)
    result, runtime, _, _ = run_workload(n, family, ring_workload(n), one_shot(0.4))
    snapshots = result.snapshots()
    assert len(snapshots) == n
    for q, snap_q in snapshots.items():
        for p, sent in snap_q.ss.items():
            received = snapshots[p].rr.get(q, 0)
            assert received >= sent, f"in-transit data {q}->{p} at a coordinated checkpoint"


def test_piggyback_garbage_collection_happens_with_multiple_checkpoints():
    # halo2d exchanges messages in both directions on every channel, so the
    # piggybacked RR values are non-trivial and sender logs can actually be
    # trimmed (a unidirectional ring never sends an RR back to its sender).
    n = 4
    family = gp1_family(n, QUIET_CONFIG)
    workload = Halo2DWorkload(n, SyntheticParameters(
        iterations=40, message_bytes=128 * 1024, compute_seconds=0.05,
        memory_bytes=24 * 1024 * 1024))
    _, runtime, _, _ = run_workload(n, family, workload, periodic(0.8))
    gc_events = sum(ctx.protocol.gc_invocations for ctx in runtime.contexts)
    piggybacks = sum(ctx.protocol.piggybacks_sent for ctx in runtime.contexts)
    assert piggybacks > 0
    assert gc_events > 0
    # GC must actually have discarded something somewhere
    assert sum(ctx.protocol.log.gc_bytes for ctx in runtime.contexts) > 0


def test_coordinator_defers_explicit_times_instead_of_dropping_them():
    # Forced-equal-count schedules (Figure 13/14 fairness) rely on every
    # explicitly listed request landing even when waves overlap the times.
    n = 4
    family = norm_family(n, QUIET_CONFIG)
    from repro.ckpt.scheduler import CheckpointSchedule
    schedule = CheckpointSchedule(times=(0.3, 0.4, 0.5))
    result, _, coordinator, _ = run_workload(n, family, ring_workload(n, iterations=20),
                                             schedule)
    assert result.checkpoints_completed == 3
    assert coordinator.report.deferred_waves >= 2
    assert coordinator.report.skipped_waves == 0


def test_coordinator_back_pressure_bounds_oversubscribed_schedules():
    # An interval far below the wave duration must not starve the application:
    # the coordinator skips ticks while a wave is in flight, the run stays
    # finite, and the skips are reported.
    n = 4
    family = norm_family(n, QUIET_CONFIG)
    result, _, coordinator, _ = run_workload(n, family, ring_workload(n, iterations=20),
                                             periodic(0.2))
    assert result.makespan < 200.0
    assert coordinator.report.skipped_waves > 0
    assert result.checkpoints_completed == coordinator.report.checkpoints_requested
    assert result.checkpoints_completed >= 2


def test_periodic_checkpoints_produce_multiple_waves():
    n = 4
    family = norm_family(n, QUIET_CONFIG)
    result, _, coordinator, _ = run_workload(n, family, ring_workload(n, iterations=30),
                                             periodic(0.7))
    assert coordinator.report.checkpoints_requested >= 2
    assert result.checkpoints_completed == coordinator.report.checkpoints_requested


def test_coordinator_skips_waves_after_completion():
    n = 2
    family = norm_family(n, QUIET_CONFIG)
    workload = ring_workload(n, iterations=2)
    result, _, coordinator, _ = run_workload(n, family, workload, one_shot(1e5))
    assert result.checkpoints_completed == 0


def test_coordinator_target_groups_filter():
    n = 4
    groups = GroupSet.contiguous(n, 2)
    family = gp_family(groups, QUIET_CONFIG)
    spec = GIDEON_300.with_nodes(n)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    runtime = MpiRuntime(sim, cluster, n, protocol_family=family, rng=RandomStreams(1))
    workload = ring_workload(n)
    runtime.set_memory(workload.memory_map())
    coordinator = CheckpointCoordinator(runtime, family, one_shot(0.3), target_groups=[0])
    coordinator.start()
    runtime.launch(workload.program_factory())
    result = runtime.run_to_completion(limit_s=1e6)
    ranks_checkpointed = {r.rank for r in result.checkpoint_records}
    assert ranks_checkpointed == {0, 1}  # only group 0


def test_checkpoint_while_blocked_in_receive_does_not_deadlock():
    """Rank 1 blocks waiting for rank 0's message; a checkpoint request arrives meanwhile."""
    n = 2
    family = norm_family(n, QUIET_CONFIG)

    from repro.mpi.ops import Compute, Recv, Send

    class Blocking:
        def memory_map(self):
            return [8 * 1024 * 1024] * n

        def program_factory(self):
            def factory(rank):
                if rank == 0:
                    return [Compute(seconds=2.0, jitter=False), Send(dst=1, nbytes=1000)]
                return [Recv(src=0)]
            return factory

    result, *_ = run_workload(n, family, Blocking(), one_shot(0.5))
    assert result.checkpoints_completed == 1
    assert result.makespan > 2.0


# ----------------------------------------------------------------------------------- VCL
def test_vcl_checkpoints_all_ranks_globally():
    n = 5
    family = vcl_family(QUIET_CONFIG, VclConfig(marker_stall_probability=0.0))
    result, runtime, _, _ = run_workload(n, family, ring_workload(n), one_shot(0.3))
    records = result.checkpoint_records
    assert len(records) == n
    assert all(r.group_size == n for r in records)
    # VCL adds no sender-side logging overhead
    assert all(ctx.protocol.logged_bytes_total == 0 for ctx in runtime.contexts)


def test_vcl_coordination_grows_with_scale():
    cfg = VclConfig(marker_stall_probability=0.0)
    coord_times = {}
    for n in (4, 8):
        family = vcl_family(QUIET_CONFIG, cfg)
        result, *_ = run_workload(n, family, ring_workload(n), one_shot(0.3))
        coord_times[n] = sum(r.stage(STAGE_COORDINATION) for r in result.checkpoint_records) / n
    assert coord_times[8] > coord_times[4]


def test_vcl_config_validation():
    with pytest.raises(ValueError):
        VclConfig(per_channel_marker_s=-1)
    with pytest.raises(ValueError):
        VclConfig(marker_stall_probability=2.0)


# -------------------------------------------------------------------------------- restart
def test_restart_requires_at_least_one_checkpoint():
    n = 2
    family = norm_family(n, QUIET_CONFIG)
    result, _, _, spec = run_workload(n, family, ring_workload(n, iterations=2), None)
    with pytest.raises(ValueError):
        simulate_restart(result, spec)


def test_norm_restart_has_no_replay():
    n = 6
    family = norm_family(n, QUIET_CONFIG)
    result, _, _, spec = run_workload(n, family, ring_workload(n), one_shot(0.4))
    restart = simulate_restart(result, spec)
    assert len(restart.records) == n
    assert restart.total_replay_bytes == 0
    assert restart.total_resend_operations == 0
    assert all(rec.duration > 0 for rec in restart.records)
    assert all(rec.stages["image"] > 0 for rec in restart.records)


def test_gp1_restart_replays_at_least_as_much_as_grouped():
    """Uncoordinated checkpoints can never need *less* replay than grouped ones."""
    n = 8
    workload = ring_workload(n, iterations=40, message_bytes=512 * 1024)
    grouped, _, _, spec = run_workload(
        n, gp_family(GroupSet.contiguous(n, 2), QUIET_CONFIG), workload, one_shot(1.0),
        propagation=0.05)
    singles, _, _, _ = run_workload(
        n, gp1_family(n, QUIET_CONFIG), workload, one_shot(1.0), propagation=0.05)
    replay_grouped = simulate_restart(grouped, spec).total_replay_bytes
    replay_singles = simulate_restart(singles, spec).total_replay_bytes
    assert replay_singles >= replay_grouped


def test_replay_volumes_consistent_with_snapshots():
    n = 8
    family = gp1_family(n, QUIET_CONFIG)
    result, _, _, spec = run_workload(n, family, ring_workload(n, iterations=40),
                                      one_shot(1.0), propagation=0.05)
    snapshots = result.snapshots()
    for channel in replay_volumes(result):
        sent = snapshots[channel.src].ss.get(channel.dst, 0)
        received = snapshots[channel.dst].rr.get(channel.src, 0)
        assert channel.nbytes >= sent - received
        assert channel.n_messages >= 1


def test_skip_volumes_nonnegative_and_only_inter_group():
    n = 8
    family = gp1_family(n, QUIET_CONFIG)
    result, _, _, _ = run_workload(n, family, ring_workload(n, iterations=40),
                                   one_shot(1.0), propagation=0.05)
    for (q, p), nbytes in skip_volumes(result).items():
        assert nbytes > 0
        assert q != p


def test_restart_records_have_all_stages():
    n = 4
    family = gp1_family(n, QUIET_CONFIG)
    result, _, _, spec = run_workload(n, family, ring_workload(n), one_shot(0.5))
    restart = simulate_restart(result, spec)
    for rec in restart.records:
        assert set(rec.stages) == {"image", "rebuild", "exchange", "replay", "barrier"}


def test_group_members_finish_restart_together():
    n = 6
    groups = GroupSet.contiguous(n, 2)
    family = gp_family(groups, QUIET_CONFIG)
    result, _, _, spec = run_workload(n, family, ring_workload(n), one_shot(0.5))
    restart = simulate_restart(result, spec)
    by_rank = {rec.rank: rec.end for rec in restart.records}
    for group in groups.groups:
        ends = {by_rank[r] for r in group}
        assert max(ends) - min(ends) < 1e-9


def test_queue_dispatch_policy_never_loses_a_wave():
    # Figure 10-style fidelity: under the "queue" policy every requested
    # periodic tick is eventually issued, where "drop" discards colliders.
    def run(policy):
        n = 16
        sim = Simulator()
        cluster = Cluster(sim, GIDEON_300.with_nodes(n))
        family = norm_family(n)
        runtime = MpiRuntime(sim, cluster, n, protocol_family=family,
                             rng=RandomStreams(5))
        workload = Halo2DWorkload(n, SyntheticParameters())
        runtime.set_memory(workload.memory_map())
        coordinator = CheckpointCoordinator(
            runtime, family, periodic(0.2, max_checkpoints=4),
            dispatch_policy=policy)
        coordinator.start()
        runtime.launch(workload.program_factory())
        runtime.run_to_completion(limit_s=1e5)
        return coordinator.report

    queued = run("queue")
    dropped = run("drop")
    assert queued.checkpoints_requested == 4
    assert queued.queued_waves > 0
    assert dropped.checkpoints_requested < queued.checkpoints_requested
    assert dropped.skipped_waves > 0
    # fidelity accounting never loses a tick silently
    assert (dropped.checkpoints_requested + dropped.skipped_waves
            >= queued.checkpoints_requested)


def test_dispatch_policy_is_validated():
    n = 4
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(n))
    family = norm_family(n)
    runtime = MpiRuntime(sim, cluster, n, protocol_family=family)
    with pytest.raises(ValueError, match="dispatch_policy"):
        CheckpointCoordinator(runtime, family, periodic(1.0),
                              dispatch_policy="bogus")
