"""Measured elastic shrink restart: spare exhaustion → repartition → finish.

The scenario the tentpole exists for: a node dies, the spare pool is empty,
and instead of waiting out a reboot the recovery manager *shrinks* — the dead
rank's units are reassigned onto the survivors, its newest surviving
checkpoint image is shipped to the adopter (remote storage) or the job
restarts the domain from step 0 (node-local storage, image died with the
node), and the run completes on fewer ranks with exactly-once channel
totals.  Also covers the payload v7 fields end to end and the two satellite
wirings: the Poisson switch-outage mode and key-stable FailureSpec
serialization.
"""

import dataclasses

import pytest

from repro.campaign.results import metrics_payload
from repro.campaign.store import CampaignStore, config_from_dict, config_to_dict, scenario_key
from repro.ckpt.scheduler import periodic
from repro.cluster.failure import FailureEvent, FailureInjector, TraceFailureModel
from repro.cluster.topology import Cluster, GIDEON_300
from repro.core.coordinator import CheckpointCoordinator
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.experiments.runner import build_family, build_workload, run_scenario
from repro.mpi.runtime import MpiRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

#: long enough that several checkpoint waves land before the kill at 1.7 s,
#: images small enough (4 MB) that a wave completes within the 0.4 s period
SHRINK_OPTS = {"iterations": 60, "memory_bytes": 4 * 1024 * 1024}


def _run_shrink(workload="halo2d", method="GP4", n=8, storage="remote",
                kill_at=1.7, victim=1):
    """Kill ``victim``'s node with zero spares; return (app, runtime)."""
    opts = dict(SHRINK_OPTS) if workload in ("halo2d", "ring") else {}
    wl = build_workload(workload, n, opts)
    spec = dataclasses.replace(GIDEON_300, n_nodes=max(GIDEON_300.n_nodes, n),
                               checkpoint_storage=storage)
    family = build_family(method, n, workload, spec, {}, None, None)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    runtime = MpiRuntime(sim, cluster, n, protocol_family=family,
                         rng=RandomStreams(7))
    runtime.set_memory(wl.memory_map())
    runtime.workload = wl
    CheckpointCoordinator(runtime, family, periodic(0.4)).start()
    model = TraceFailureModel([FailureEvent(kill_at, runtime.ctx(victim).node_id)])
    FailureInjector(runtime, model, elastic=True).start()
    runtime.launch(wl.program_factory())
    app = runtime.run_to_completion(limit_s=1e6)
    return app, runtime


def _assert_exactly_once(app):
    """Every directed channel's sent total equals its received total."""
    for ctx in app.contexts:
        for peer in ctx.account.peers():
            sent = ctx.account.sent_to(peer)
            received = app.contexts[peer].account.received_from(ctx.rank)
            assert sent == received, (ctx.rank, peer, sent, received)


# ------------------------------------------------------------- measured shrink
def test_shrink_completes_with_image_ship():
    """Remote storage: the dead rank's newest image ships to its adopter."""
    app, runtime = _run_shrink(storage="remote")
    assert runtime.aborted is None
    assert runtime.recovery_manager.shrink_restarts == 1
    reports = [r for r in runtime.recovery_reports if r.shrink]
    assert len(reports) == 1
    rep = reports[0]
    assert rep.target_ckpt_id is not None      # resumed from a recovery line
    assert rep.ranks_after == 7
    assert rep.units_migrated >= 1
    assert rep.repartition_bytes_shipped > 0
    _assert_exactly_once(app)
    # the victim is retired: finished, owns nothing, never relaunched
    wl = runtime.workload
    assert wl.partition.units_of(1) == ()
    assert runtime.ctx(1).finished and not runtime.ctx(1).in_recovery


def test_shrink_from_scratch_with_local_storage():
    """Node-local storage: the victim's images died with it → restart at 0."""
    app, runtime = _run_shrink(storage="local")
    assert runtime.aborted is None
    assert runtime.recovery_manager.shrink_restarts == 1
    rep = next(r for r in runtime.recovery_reports if r.shrink)
    assert rep.target_ckpt_id is None
    assert rep.repartition_bytes_shipped == 0
    assert rep.ranks_after == 7
    _assert_exactly_once(app)


@pytest.mark.parametrize("workload", ["ring", "cg", "hpl"])
def test_shrink_completes_across_workloads(workload):
    app, runtime = _run_shrink(workload=workload)
    assert runtime.aborted is None
    assert runtime.recovery_manager.shrink_restarts >= 1
    _assert_exactly_once(app)


# ------------------------------------------------------------ scenario harness
def _elastic_config(**kwargs):
    spec = dataclasses.replace(GIDEON_300, checkpoint_storage="remote")
    defaults = dict(
        workload="halo2d", n_ranks=8, method="GP4",
        schedule=periodic(0.4), cluster=spec, seed=7,
        workload_options=dict(SHRINK_OPTS), do_restart=False,
        failure=FailureSpec(at_s=1.7, victim_rank=1, elastic=True))
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


def test_run_scenario_elastic_payload_v7():
    result = run_scenario(_elastic_config())
    assert result.survived
    assert result.shrink_restarts == 1
    assert result.ranks_after_restart == 7
    assert result.units_migrated >= 1
    assert result.repartition_bytes_shipped > 0
    payload = metrics_payload(result)
    assert payload["shrink_restarts"] == 1
    assert payload["ranks_after_restart"] == 7
    assert payload["units_migrated"] == result.units_migrated
    assert payload["repartition_bytes_shipped"] == result.repartition_bytes_shipped


def test_switch_outage_rate_mode_fires_and_recovers():
    """Poisson switch outages (satellite wiring): the drawn event executes."""
    spec = dataclasses.replace(GIDEON_300, n_nodes=12, nodes_per_switch=4,
                               checkpoint_storage="remote")
    config = ScenarioConfig(
        workload="halo2d", n_ranks=8, method="GP4",
        schedule=periodic(0.4), cluster=spec, seed=3,
        workload_options=dict(SHRINK_OPTS), do_restart=False,
        failure=FailureSpec(switch_outage_rate_per_switch_s=0.05,
                            max_failures=1, seed=3, n_spares=4))
    result = run_scenario(config)
    assert result.survived
    causes = {getattr(rep, "cause", "crash") for rep in result.app.recovery}
    assert "switch-outage" in causes


def test_failure_spec_mode_validation():
    with pytest.raises(ValueError):
        FailureSpec()                                     # no mode at all
    with pytest.raises(ValueError):
        FailureSpec(at_s=1.0, switch_outage_rate_per_switch_s=0.1)
    with pytest.raises(ValueError):
        FailureSpec(switch_outage_rate_per_switch_s=-1.0)


# -------------------------------------------------------- key-stable storage
def test_new_failure_fields_are_key_stable():
    """Configs not using the new knobs keep their pre-PR key shape."""
    base = _elastic_config(failure=FailureSpec(at_s=1.0))
    serialized = config_to_dict(base)
    assert "elastic" not in serialized["failure"]
    assert "switch_outage_rate_per_switch_s" not in serialized["failure"]
    # the new knobs are present — and change the key — when set
    elastic = _elastic_config(failure=FailureSpec(at_s=1.0, elastic=True))
    assert config_to_dict(elastic)["failure"]["elastic"] is True
    assert scenario_key(elastic) != scenario_key(base)


def test_new_failure_fields_round_trip_through_store():
    for config in (
        _elastic_config(),
        _elastic_config(failure=FailureSpec(
            switch_outage_rate_per_switch_s=0.01, seed=5, max_failures=2,
            n_spares=1, elastic=True)),
    ):
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert scenario_key(rebuilt) == scenario_key(config)
        store = CampaignStore(":memory:")
        key = store.add(config)
        row = store.get(key)
        assert row.config == config
