"""Property tests for the domain/partition layer (elastic restart tentpole).

The refactor's core contract: a :class:`~repro.workloads.domain.Partition` is
pure bookkeeping.  Any valid assignment of units to ranks — shrink, expand,
or arbitrary shuffle — conserves the domain's total compute seconds, total
point-to-point message bytes and total resident memory, measured from the
*derived per-rank scripts* (so merge bugs cannot hide behind the domain
arithmetic).  Under the identity partition the derived scripts are the legacy
scripts op-for-op, which is what keeps the determinism goldens bit-identical.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.elastic import measured_totals
from repro.experiments.runner import build_workload
from repro.workloads.domain import Domain, Partition, RepartitionPlan, WorkUnit


#: the five workloads of the paper harness, at property-test scale:
#: (unit count, cheap parameter overrides).  SP needs a square count.
WORKLOADS = {
    "ring": (6, {"iterations": 4, "memory_bytes": 1 << 20}),
    "halo2d": (6, {"iterations": 4, "memory_bytes": 1 << 20}),
    "hpl": (8, {"problem_size": 2000, "block_size": 200, "max_steps": 6}),
    "cg": (8, {"na": 14000, "max_steps": 4}),
    "sp": (9, {"grid_points": 36, "max_steps": 3, "time_steps": 6}),
}

_CACHE = {}


def _workload(name):
    """One shared instance per workload (examples only mutate the partition)."""
    if name not in _CACHE:
        n_units, options = WORKLOADS[name]
        wl = build_workload(name, n_units, dict(options))
        reference = measured_totals(wl, n_units)
        _CACHE[name] = (wl, reference)
    return _CACHE[name]


# ------------------------------------------------------------------ conservation
@pytest.mark.parametrize("name", sorted(WORKLOADS))
@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_any_partition_conserves_totals(name, data):
    """Random unit→rank maps conserve compute, message bytes and memory."""
    wl, (ref_compute, ref_message, ref_memory) = _workload(name)
    n_units = wl.n_units
    n_ranks = data.draw(st.integers(min_value=1, max_value=n_units + 3),
                        label="n_ranks")
    owner = data.draw(st.lists(st.integers(0, n_ranks - 1),
                               min_size=n_units, max_size=n_units),
                      label="owner")
    wl.set_partition(Partition(owner, n_ranks))
    try:
        compute, message, memory = measured_totals(wl, n_ranks)
    finally:
        wl.set_partition(Partition.identity(n_units))
    assert math.isclose(compute, ref_compute, rel_tol=1e-9)
    assert message == ref_message
    assert memory == ref_memory


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_block_partitions_conserve_across_rank_counts(name):
    """Shrink and expand block partitions carry identical totals."""
    wl, (ref_compute, ref_message, ref_memory) = _workload(name)
    n_units = wl.n_units
    try:
        for n_ranks in (1, 2, n_units - 1, n_units, n_units + 2):
            wl.set_partition(Partition.block(n_units, n_ranks))
            compute, message, memory = measured_totals(wl, n_ranks)
            assert math.isclose(compute, ref_compute, rel_tol=1e-9), n_ranks
            assert message == ref_message, n_ranks
            assert memory == ref_memory, n_ranks
    finally:
        wl.set_partition(Partition.identity(n_units))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_domain_totals_match_measured_scripts(name):
    """Domain arithmetic agrees with the scripts it summarises."""
    wl, (ref_compute, ref_message, ref_memory) = _workload(name)
    domain = wl.domain()
    assert domain.n_units == wl.n_units
    assert math.isclose(domain.total_compute_seconds, ref_compute, rel_tol=1e-9)
    assert domain.total_message_bytes == ref_message
    assert domain.total_memory_bytes == ref_memory


# ------------------------------------------------------- identity == legacy
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_identity_partition_equals_legacy_script(name):
    """Explicit identity partition yields the legacy script op-for-op."""
    wl, _ = _workload(name)
    wl.set_partition(Partition.identity(wl.n_units))
    try:
        for rank in range(wl.n_units):
            assert list(wl.program(rank)) == list(wl.native_program(rank))
            assert wl.memory_bytes(rank) == wl.native_memory_bytes(rank)
    finally:
        wl.set_partition(Partition.identity(wl.n_units))


def test_total_operations_cached_and_invalidated():
    wl = build_workload("ring", 4, {"iterations": 4})
    first = wl.total_operations(2)
    assert wl._total_ops.get(2) == first
    assert wl.total_operations(2) == first
    wl.set_partition(Partition.block(4, 2))
    assert not wl._total_ops
    merged = wl.total_operations(0)
    assert merged == wl.total_operations(0)


# ------------------------------------------------------------------- partition
def test_partition_validation():
    with pytest.raises(ValueError):
        Partition((), 2)
    with pytest.raises(ValueError):
        Partition((0, 2), 2)
    with pytest.raises(ValueError):
        Partition((0,), 0)
    with pytest.raises(ValueError):
        Partition.block(0, 2)


def test_block_partition_shapes():
    part = Partition.block(7, 3)
    sizes = [len(part.units_of(r)) for r in range(3)]
    assert sum(sizes) == 7 and max(sizes) - min(sizes) <= 1
    # expand: trailing ranks idle, still valid
    wide = Partition.block(3, 5)
    assert wide.active_ranks() == (0, 1, 2)
    assert wide.units_of(4) == ()
    assert Partition.block(4, 4).is_identity


@given(n_units=st.integers(2, 12), data=st.data())
@settings(max_examples=40, deadline=None)
def test_reassign_covers_orphans_deterministically(n_units, data):
    n_ranks = data.draw(st.integers(2, n_units + 2), label="n_ranks")
    owner = data.draw(st.lists(st.integers(0, n_ranks - 1),
                               min_size=n_units, max_size=n_units),
                      label="owner")
    part = Partition(owner, n_ranks)
    dead = data.draw(st.sets(st.integers(0, n_ranks - 1),
                             max_size=n_ranks - 1), label="dead")
    repart = part.reassign(dead)
    # same communicator size, every unit owned by a survivor
    assert repart.n_ranks == part.n_ranks
    assert all(r not in dead for r in repart.owner)
    # surviving ranks keep exactly their old units
    for rank in range(n_ranks):
        if rank not in dead:
            assert set(part.units_of(rank)) <= set(repart.units_of(rank))
    # deterministic: same inputs, same plan
    assert repart == part.reassign(dead)


def test_reassign_all_dead_raises():
    with pytest.raises(ValueError):
        Partition.identity(3).reassign({0, 1, 2})


def test_repartition_plan_derived_views():
    part = Partition((0, 2, 2), 3)
    plan = RepartitionPlan(
        failed_ranks=(1,), new_partition=part, resume_step=4,
        target_ckpt_id=2, adoptions=((1, 1, 2), (2, 1, 2)))
    assert plan.units_migrated == 2
    assert plan.ranks_after == 2
    assert plan.image_ships() == ((1, 2),)


def test_domain_weights_and_steps():
    domain = Domain((WorkUnit(0, 1.0, 10, 100, 4), WorkUnit(1, 3.0, 20, 50, 6)))
    assert domain.weights() == {0: 1.0, 1: 3.0}
    assert domain.steps == 6
    assert domain.total_memory_bytes == 30
