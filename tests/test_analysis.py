"""Tests for the analysis layer: metrics, trace statistics, reporting, advisor."""

import pytest

from repro.analysis.advisor import (
    expected_overhead_fraction,
    suggest_checkpoint_interval,
    young_interval,
)
from repro.analysis.metrics import (
    aggregate_checkpoint_time,
    aggregate_coordination_time,
    aggregate_restart_time,
    mean_checkpoint_duration,
    stage_breakdown,
)
from repro.analysis.reporting import Series, Table, format_table, series_table
from repro.analysis.trace_analysis import (
    communication_summary,
    imbalance_factor,
    pair_volume_histogram,
    top_pairs,
    volume_by_rank,
)
from repro.ckpt.base import CheckpointRecord, RestartRecord, STAGE_CHECKPOINT
from repro.mpi.trace import TraceLog, TraceRecord


def make_record(rank=0, start=0.0, end=5.0, checkpoint=2.0, coordination=2.5):
    return CheckpointRecord(
        rank=rank, ckpt_id=0, group_id=0, start=start, end=end,
        stages={"lock_mpi": 0.3, "coordination": coordination,
                STAGE_CHECKPOINT: checkpoint, "finalize": 0.2},
    )


# -------------------------------------------------------------------------------- metrics
def test_aggregate_checkpoint_and_coordination_time():
    records = [make_record(rank=r) for r in range(4)]
    assert aggregate_checkpoint_time(records) == pytest.approx(20.0)
    assert aggregate_coordination_time(records) == pytest.approx(4 * 3.0)


def test_mean_checkpoint_duration_empty_is_zero():
    assert mean_checkpoint_duration([]) == 0.0
    assert mean_checkpoint_duration([make_record()]) == pytest.approx(5.0)


def test_stage_breakdown_averages_across_records():
    records = [make_record(checkpoint=2.0), make_record(checkpoint=4.0)]
    breakdown = stage_breakdown(records)
    assert breakdown.n_records == 2
    assert breakdown.stages[STAGE_CHECKPOINT] == pytest.approx(3.0)
    assert breakdown.total == pytest.approx(sum(breakdown.stages.values()))
    assert len(breakdown.as_row()) == 4
    assert stage_breakdown([]).n_records == 0


def test_aggregate_restart_time():
    records = [RestartRecord(rank=r, start=0.0, end=2.0) for r in range(3)]
    assert aggregate_restart_time(records) == pytest.approx(6.0)


# -------------------------------------------------------------------------- trace analysis
def _trace():
    return TraceLog(
        [TraceRecord(0, 1, 1000), TraceRecord(0, 1, 500), TraceRecord(2, 3, 100),
         TraceRecord(1, 0, 50)],
        n_ranks=4,
    )


def test_communication_summary():
    summary = communication_summary(_trace())
    assert summary.total_messages == 4
    assert summary.total_bytes == 1650
    assert summary.distinct_pairs == 2
    assert summary.max_pair_bytes == 1550
    assert "msgs" in summary.describe()


def test_top_pairs_ordering():
    pairs = top_pairs(_trace(), k=2)
    assert pairs[0][0] == (0, 1)
    assert pairs[0][2] == 1550
    assert len(top_pairs(_trace(), k=1)) == 1
    with pytest.raises(ValueError):
        top_pairs(_trace(), k=-1)


def test_pair_volume_histogram():
    hist = pair_volume_histogram(_trace(), n_bins=4)
    assert sum(hist["counts"]) == 2
    assert pair_volume_histogram(TraceLog(), n_bins=3) == {"edges": [], "counts": []}
    with pytest.raises(ValueError):
        pair_volume_histogram(_trace(), n_bins=0)


def test_volume_by_rank_and_imbalance():
    volumes = volume_by_rank(_trace())
    assert volumes[0] == (1500, 50)
    assert imbalance_factor(_trace()) > 1.0
    assert imbalance_factor(TraceLog()) == 1.0


# ------------------------------------------------------------------------------- reporting
def test_series_append_and_dict():
    s = Series(name="x")
    s.append(1, 10)
    s.append(2, 20)
    assert s.as_dict() == {1: 10, 2: 20}
    assert len(s) == 2
    with pytest.raises(ValueError):
        Series(name="bad", x=[1], y=[])


def test_table_add_row_and_column():
    t = Table(title="t", columns=["a", "b"])
    t.add_row(1, 2)
    assert t.column("b") == [2]
    with pytest.raises(ValueError):
        t.add_row(1)
    with pytest.raises(KeyError):
        t.column("missing")


def test_format_table_renders_all_rows():
    t = Table(title="demo", columns=["n", "value"])
    t.add_row(16, 1.2345)
    t.add_row(128, 10000.0)
    text = format_table(t)
    assert "demo" in text and "128" in text and "n" in text
    assert len(text.splitlines()) == 5


def test_series_table_merges_x_values():
    a = Series(name="a", x=[1, 2], y=[10, 20])
    b = Series(name="b", x=[2, 3], y=[200, 300])
    table = series_table("merged", [a, b], x_label="n")
    assert table.columns == ["n", "a", "b"]
    assert len(table.rows) == 3
    assert table.rows[0] == [1, 10, ""]


# --------------------------------------------------------------------------------- advisor
def test_young_interval_formula():
    assert young_interval(10.0, 2000.0) == pytest.approx((2 * 10 * 2000) ** 0.5)
    with pytest.raises(ValueError):
        young_interval(0.0, 100.0)
    with pytest.raises(ValueError):
        young_interval(1.0, 0.0)


def test_suggestion_respects_floor_and_logging_overhead():
    base = suggest_checkpoint_interval(10.0, 10000.0)
    cheaper = suggest_checkpoint_interval(10.0, 10000.0, logging_overhead_fraction=0.5)
    assert cheaper.interval_s < base.interval_s
    floored = suggest_checkpoint_interval(10.0, 10000.0, min_interval_s=1000.0)
    assert floored.interval_s == 1000.0
    assert base.expected_checkpoints_per_failure > 1
    with pytest.raises(ValueError):
        suggest_checkpoint_interval(10.0, 1000.0, logging_overhead_fraction=1.5)


def test_expected_overhead_fraction_tradeoff():
    # very frequent checkpoints: checkpoint term dominates
    frequent = expected_overhead_fraction(10.0, 5.0, 100000.0)
    # very rare checkpoints: rework term dominates
    rare = expected_overhead_fraction(50000.0, 5.0, 100000.0)
    optimal = expected_overhead_fraction(young_interval(5.0, 100000.0), 5.0, 100000.0)
    assert optimal < frequent
    assert optimal < rare
    with pytest.raises(ValueError):
        expected_overhead_fraction(0.0, 1.0, 100.0)


def test_measured_recovery_cost_shifts_the_optimum():
    from repro.analysis.advisor import MeasuredCosts, measured_costs

    base = suggest_checkpoint_interval(10.0, 10000.0)
    calibrated = suggest_checkpoint_interval(10.0, 10000.0, recovery_cost_s=4000.0)
    # recovery time does no work: effective MTBF shrinks, checkpoints tighten
    assert calibrated.interval_s < base.interval_s
    assert calibrated.recovery_cost_s == 4000.0
    assert "recovery" in calibrated.describe()

    costs = MeasuredCosts(checkpoint_cost_s=8.0, recovery_cost_s=2000.0,
                          lost_work_per_failure_s=30.0, n_failures=3)
    via_measured = suggest_checkpoint_interval(10.0, 10000.0, measured=costs)
    assert via_measured.checkpoint_cost_s == 8.0
    assert via_measured.recovery_cost_s == 2000.0
    assert via_measured.interval_s == suggest_checkpoint_interval(
        8.0, 10000.0, recovery_cost_s=2000.0).interval_s

    with pytest.raises(ValueError):
        suggest_checkpoint_interval(10.0, 1000.0, recovery_cost_s=-1.0)
    # extraction works on plain payload dicts too
    payload = {"failures_injected": 2, "rollback_ranks_total": 8,
               "recovery_rank_seconds": 16.0, "mean_checkpoint_duration": 3.0,
               "measured_lost_work_s": 10.0}
    costs = measured_costs(payload)
    assert costs.checkpoint_cost_s == 3.0
    assert costs.recovery_cost_s == pytest.approx(2.0)
    assert costs.lost_work_per_failure_s == pytest.approx(5.0)
    with pytest.raises(ValueError):
        measured_costs({"failures_injected": 0})
