"""Tests for the experiment harness (configs, runner, figure generators)."""

import pytest

from repro.analysis.reporting import format_table
from repro.ckpt.scheduler import one_shot
from repro.cluster.topology import GIDEON_300
from repro.experiments import figures
from repro.experiments.config import FULL, QUICK, ScenarioConfig, profile_by_name
from repro.experiments.failures import (
    expected_work_loss_experiment,
    mtbf_overhead_experiment,
    rollback_scope_experiment,
)
from repro.experiments.runner import (
    build_family,
    build_workload,
    obtain_groups,
    run_scenario,
)


# --------------------------------------------------------------------------------- config
def test_scenario_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(workload="hpl", n_ranks=0)
    with pytest.raises(ValueError):
        ScenarioConfig(workload="hpl", n_ranks=8, method="BOGUS")
    cfg = ScenarioConfig(workload="ring", n_ranks=4)
    assert cfg.with_method("NORM").method == "NORM"
    assert cfg.with_seed(9).seed == 9


def test_profiles_lookup_and_contents():
    assert profile_by_name("full") is FULL
    assert profile_by_name("quick") is QUICK
    with pytest.raises(ValueError):
        profile_by_name("enormous")
    assert FULL.hpl_scales[-1] == 128
    assert FULL.sp_scales == (64, 81, 100, 121)
    assert QUICK.hpl_scales[-1] <= 32


# --------------------------------------------------------------------------------- runner
def test_build_workload_by_name():
    assert build_workload("hpl", 16).name == "hpl"
    assert build_workload("cg", 16).name == "cg"
    assert build_workload("sp", 16).name == "sp"
    assert build_workload("ring", 4).name == "ring"
    with pytest.raises(ValueError):
        build_workload("mystery", 4)


def test_build_family_by_method():
    assert build_family("NORM", 8, "ring", GIDEON_300).name == "NORM"
    assert build_family("GP1", 8, "ring", GIDEON_300).name == "GP1"
    assert build_family("GP4", 8, "ring", GIDEON_300).name == "GP4"
    assert build_family("VCL", 8, "ring", GIDEON_300).name == "VCL"
    with pytest.raises(ValueError):
        build_family("BOGUS", 8, "ring", GIDEON_300)


def test_obtain_groups_for_hpl_quick_matches_columns():
    groups = obtain_groups("hpl", 16, GIDEON_300, QUICK.hpl_options, max_group_size=8)
    # 16 ranks on an 8x2 grid: two columns of 8
    assert groups.members(0) == (0, 2, 4, 6, 8, 10, 12, 14)
    assert groups.members(1) == (1, 3, 5, 7, 9, 11, 13, 15)


def test_run_scenario_ring_norm_end_to_end():
    result = run_scenario(
        ScenarioConfig(
            workload="ring",
            n_ranks=4,
            method="NORM",
            schedule=one_shot(0.2),
            workload_options={"iterations": 10, "compute_seconds": 0.05},
        )
    )
    assert result.makespan > 0
    assert result.checkpoints_completed == 1
    assert result.aggregate_checkpoint_time > 0
    assert result.restart is not None
    assert result.aggregate_restart_time > 0
    assert result.resend_bytes == 0  # NORM never replays
    assert result.breakdown().n_records == 4


def test_run_scenario_without_schedule_skips_restart():
    result = run_scenario(
        ScenarioConfig(workload="ring", n_ranks=3, method="GP1", schedule=None,
                       workload_options={"iterations": 5})
    )
    assert result.restart is None
    assert result.checkpoints_completed == 0
    assert result.gap_fraction == 0.0


# -------------------------------------------------------------------------------- figures
def test_table1_reproduces_round_robin_groups():
    out = figures.table1(QUICK, n_ranks=32)
    groupset = out["groupset"]
    assert groupset.members(0) == (0, 4, 8, 12, 16, 20, 24, 28)
    assert len(out["table"].rows) == 4
    assert out["formation"].intra_fraction > 0.5


def test_figure1_series_is_increasing_overall():
    out = figures.figure1(QUICK)
    series = out["series"][0]
    assert len(series) == len(QUICK.coordination_scales)
    assert series.y[-1] > series.y[0]
    assert "Figure 1" in format_table(out["table"])


def test_figure3_orders_schemes_by_logging():
    out = figures.figure3(QUICK)
    table = out["table"]
    logged = dict(zip(table.column("scheme"), table.column("logged bytes fraction")))
    assert logged["coordinated (NORM)"] == 0.0
    assert logged["message logging (GP1)"] == 1.0
    assert 0.0 < logged["group-based (GP)"] < 1.0
    scope = dict(zip(table.column("scheme"), table.column("coordination scope")))
    assert scope["coordinated (NORM)"] > scope["group-based (GP)"] > scope["message logging (GP1)"]


def test_figures_5_to_9_share_the_same_sweep():
    figures.clear_sweep_cache()
    f5 = figures.figure5(QUICK)
    f6 = figures.figure6(QUICK)
    f7 = figures.figure7(QUICK)
    f8 = figures.figure8(QUICK)
    f9 = figures.figure9(QUICK)
    # Figure 5: every method has one point per scale; NORM difference is zero
    for series in f5["series"]:
        assert len(series) == len(QUICK.hpl_scales)
    norm_diff = next(s for s in f5["diff_series"] if s.name.startswith("NORM"))
    assert all(abs(v) < 1e-9 for v in norm_diff.y)
    # Figure 6: grouped checkpointing beats global coordination at the largest scale
    ckpt = {s.name: s for s in f6["checkpoint_series"]}
    largest = QUICK.hpl_scales[-1]
    assert ckpt["GP"].as_dict()[largest] < ckpt["NORM"].as_dict()[largest]
    assert ckpt["GP1"].as_dict()[largest] <= ckpt["GP"].as_dict()[largest]
    # Figure 7/8: resend volumes and operations are reported for GP/GP1/GP4 only
    assert {s.name for s in f7["series"]} == {"GP", "GP1", "GP4"}
    assert {s.name for s in f8["series"]} == {"GP", "GP1", "GP4"}
    gp1_resend = next(s for s in f7["series"] if s.name == "GP1")
    gp_resend = next(s for s in f7["series"] if s.name == "GP")
    assert all(a >= b for a, b in zip(gp1_resend.y, gp_resend.y))
    # Figure 9: one breakdown row per (scale, method) with non-negative stages
    assert len(f9["table"].rows) == 2 * 4
    for row in f9["table"].rows:
        assert all(v >= 0 for v in row[2:])


def test_figure10_interval_zero_has_no_checkpoints():
    out = figures.figure10(QUICK, n_ranks=16)
    count = next(s for s in out["series"] if s.name == "NORM #CKPT")
    assert count.as_dict()[0.0] == 0
    gp_time = next(s for s in out["series"] if s.name == "GP time")
    norm_time = next(s for s in out["series"] if s.name == "NORM time")
    # with no checkpoints GP can only be slower or equal (logging overhead)
    assert gp_time.as_dict()[0.0] >= norm_time.as_dict()[0.0] - 1e-6


def test_figure13_and_14_compare_gp_and_vcl():
    figures.clear_sweep_cache()
    f13 = figures.figure13(QUICK)
    f14 = figures.figure14(QUICK)
    names13 = {s.name for s in f13["series"]}
    assert names13 == {"GP time", "VCL time", "GP #CKPT", "VCL #CKPT"}
    assert {s.name for s in f14["series"]} == {"GP", "VCL"}
    for s in f14["series"]:
        assert all(v > 0 for v in s.y)


# -------------------------------------------------------------------------------- failures
def test_rollback_scope_experiment_orders_methods():
    out = rollback_scope_experiment(QUICK, n_ranks=16)
    scope = out["scope"]
    assert scope["NORM"] == 16
    assert scope["GP1"] == 1
    assert 1 < scope["GP"] < 16


def test_expected_work_loss_experiment_reports_points():
    out = expected_work_loss_experiment(QUICK, n_ranks=16, intervals=(2.0, 4.0))
    assert len(out["points"]) == 4
    assert all(p.expected_loss_s >= 0 for p in out["points"])


def test_mtbf_overhead_experiment():
    out = mtbf_overhead_experiment({"GP": 2.0, "NORM": 10.0}, mtbf_per_node_s=1e6, n_nodes=100)
    results = out["results"]
    assert results["GP"]["interval_s"] < results["NORM"]["interval_s"]
    assert results["GP"]["overhead"] < results["NORM"]["overhead"]
