"""Telemetry layer: span semantics, metrics registry, exporters, integration.

Covers:

* :class:`~repro.obs.SpanTracer` semantics — nesting, attribute propagation,
  idempotent close, retroactive spans, and ``abort_open`` sweeping
  interrupted spans closed with ``aborted=True``;
* the :class:`~repro.obs.MetricsRegistry` instrument family and its flat
  rendering (the campaign payload's ``registry_metrics``);
* the MPI :class:`~repro.mpi.tracer.Tracer` cap marking its log
  ``truncated`` (with the dropped count surviving a dumps/loads round trip);
* Chrome ``trace_event`` export validity;
* scenario integration — a traced failure + recovery run leaves no open
  spans, closes killed ranks' checkpoint spans as aborted, and exports a
  recovery span tree that *matches the* :class:`RecoveryReport` (same
  rollback ranks, same measured failure→resumption window);
* bit-identity — span tracing enabled reproduces the committed golden
  parity metrics under both ``REPRO_SIM_FASTPATH`` modes.
"""

import json
import os

import pytest

from repro.ckpt.scheduler import periodic
from repro.cluster.network import FAST_PATH_ENV
from repro.experiments import runner
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.experiments.parity import parity_metrics, quick_parity_configs, scenario_label
from repro.experiments.runner import run_scenario
from repro.mpi.tracer import Tracer
from repro.mpi.messages import Message
from repro.mpi.trace import TraceLog
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    SpanTracer,
    Telemetry,
    chrome_trace,
    flat_metrics,
    phase_times,
    spans_to_jsonl,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "quick_parity_golden.json")


class ManualClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ------------------------------------------------------------- span semantics
class TestSpanTracer:
    def test_nesting_and_attribute_propagation(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        outer = tracer.begin("wave", track="rank0", category="ckpt", ckpt_id=1)
        clock.now = 1.0
        inner = tracer.begin("dump", track="rank0", group_id=2)
        assert inner.parent_id == outer.span_id
        clock.now = 1.5
        tracer.end(inner, nbytes=4096)
        clock.now = 2.0
        tracer.end(outer)
        assert inner.attrs == {"group_id": 2, "nbytes": 4096}
        assert outer.attrs == {"ckpt_id": 1}
        assert (outer.start, outer.end) == (0.0, 2.0)
        assert (inner.start, inner.end) == (1.0, 1.5)
        assert inner.duration == 0.5
        assert tracer.open_count() == 0

    def test_separate_tracks_do_not_nest(self):
        tracer = SpanTracer(ManualClock())
        a = tracer.begin("a", track="rank0")
        b = tracer.begin("b", track="rank1")
        assert b.parent_id is None
        tracer.end(a)
        tracer.end(b)

    def test_end_is_idempotent(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        span = tracer.begin("x")
        clock.now = 1.0
        tracer.end(span)
        clock.now = 5.0
        tracer.end(span)  # no-op: already closed
        assert span.end == 1.0
        assert len(tracer.spans) == 1

    def test_context_manager(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        with tracer.span("claim", track="worker", key="k1") as span:
            clock.now = 3.0
        assert span.end == 3.0
        assert span.attrs == {"key": "k1"}

    def test_abort_open_closes_innermost_first_with_cause(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        outer = tracer.begin("checkpoint", track="rank3")
        inner = tracer.begin("stage", track="rank3")
        clock.now = 2.5
        closed = tracer.abort_open("rank3", abort_cause="node-crash")
        assert closed == [inner, outer]
        for span in (inner, outer):
            assert span.aborted
            assert span.end == 2.5
            assert span.attrs["abort_cause"] == "node-crash"
        assert tracer.open_count("rank3") == 0

    def test_abort_open_on_clean_track_is_a_noop(self):
        tracer = SpanTracer(ManualClock())
        assert tracer.abort_open("rank9") == []

    def test_retroactive_add_bypasses_open_stacks(self):
        tracer = SpanTracer(ManualClock())
        live = tracer.begin("checkpoint", track="rank0")
        retro = tracer.add("l2_partner_copy", start=0.5, end=0.9,
                           track="rank0", parent=live, bytes=1024)
        # the retro span did not become the nesting parent of future begins
        sibling = tracer.begin("stage", track="rank0")
        assert sibling.parent_id == live.span_id
        assert retro.parent_id == live.span_id
        assert retro.end == 0.9
        assert retro.attrs == {"bytes": 1024}
        tracer.end(sibling)
        tracer.end(live)

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        span = tracer.begin("x", track="t")
        tracer.end(span)
        with tracer.span("y"):
            pass
        assert tracer.abort_open("t") == []
        assert tracer.open_count() == 0
        assert tracer.spans == []


# ----------------------------------------------------------- metrics registry
class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("sim.events.processed").inc()
        reg.counter("sim.events.processed").inc(4)
        reg.gauge("recovery.inflight.peak").max(2)
        reg.gauge("recovery.inflight.peak").max(1)  # lower: no change
        hist = reg.histogram("phase.checkpoint.duration")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        assert reg.get("sim.events.processed").value == 5
        assert reg.get("recovery.inflight.peak").value == 2
        assert (hist.count, hist.total, hist.min, hist.max) == (3, 6.0, 1.0, 3.0)
        assert hist.mean == 2.0

    def test_tags_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("storage.bytes.written", tier="L1").inc(10)
        reg.counter("storage.bytes.written", tier="L2").inc(20)
        assert reg.get("storage.bytes.written", tier="L1").value == 10
        assert reg.get("storage.bytes.written", tier="L2").value == 20
        assert reg.get("storage.bytes.written") is None

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_merge_counts_prefixes_legacy_stats(self):
        reg = MetricsRegistry()
        reg.merge_counts({"spare_migrations": 2, "inplace_reboots": 1},
                         prefix="recovery.")
        assert reg.get("recovery.spare_migrations").value == 2

    def test_flat_dict_expands_histograms_sorted(self):
        reg = MetricsRegistry()
        reg.histogram("b.hist").observe(2.0)
        reg.counter("a.count", tier="L2").inc(3)
        flat = reg.as_flat_dict()
        assert flat == {
            "a.count{tier=L2}": 3,
            "b.hist.count": 1,
            "b.hist.max": 2.0,
            "b.hist.min": 2.0,
            "b.hist.total": 2.0,
        }
        assert list(flat) == sorted(flat)
        assert flat_metrics(reg) == flat

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.counter("x").inc()
        reg.histogram("y").observe(1.0)
        reg.merge_counts({"a": 1})
        assert reg.get("x") is None
        assert len(reg) == 0
        assert reg.as_flat_dict() == {}


# ------------------------------------------------- MPI trace-log truncation
class TestTraceLogTruncation:
    def _send(self, tracer, n):
        for i in range(n):
            tracer.on_send(Message(src=0, dst=1, nbytes=100, tag=i), timestamp=float(i))

    def test_cap_marks_log_truncated(self):
        tracer = Tracer(max_records=3)
        self._send(tracer, 5)
        assert len(tracer.log) == 3
        assert tracer.log.truncated
        assert tracer.log.dropped_records == 2
        assert tracer.dropped_records == 2

    def test_uncapped_log_is_not_truncated(self):
        tracer = Tracer()
        self._send(tracer, 5)
        assert not tracer.log.truncated
        assert tracer.log.dropped_records == 0

    def test_truncation_survives_round_trip(self):
        tracer = Tracer(max_records=2)
        self._send(tracer, 6)
        text = tracer.log.dumps()
        assert "# truncated 4" in text
        again = TraceLog.loads(text)
        assert again.truncated
        assert again.dropped_records == 4
        assert len(again) == 2
        # a complete trace round-trips as not-truncated
        clean = TraceLog.loads(TraceLog(tracer.log.records).dumps())
        assert not clean.truncated

    def test_reset_clears_truncation(self):
        tracer = Tracer(max_records=1)
        self._send(tracer, 3)
        tracer.reset()
        assert not tracer.log.truncated
        assert tracer.dropped_records == 0


# ------------------------------------------------------------- chrome export
class TestExport:
    def _tracer(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        outer = tracer.begin("checkpoint", track="rank0", category="ckpt", ckpt_id=1)
        clock.now = 2.0
        tracer.end(outer)
        tracer.add("copy", start=0.5, end=1.0, track="storage",
                   category="storage", aborted=True)
        return tracer

    def test_chrome_trace_structure(self):
        tracer = self._tracer()
        reg = MetricsRegistry()
        reg.counter("ckpt.records").inc(1)
        doc = chrome_trace(tracer, metrics=reg)
        json.dumps(doc)  # must be serialisable
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} >= {"repro", "rank0", "storage"}
        assert len(complete) == 2
        ckpt = next(e for e in complete if e["name"] == "checkpoint")
        assert ckpt["ts"] == 0.0 and ckpt["dur"] == 2e6  # seconds -> µs
        copy = next(e for e in complete if e["name"] == "copy")
        assert copy["args"]["aborted"] is True
        assert copy["tid"] != ckpt["tid"]
        assert doc["otherData"]["metrics"] == {"ckpt.records": 1}

    def test_jsonl_is_one_object_per_line(self):
        lines = spans_to_jsonl(self._tracer()).strip().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "checkpoint"
        assert parsed[1]["aborted"] is True


# ------------------------------------------------------- scenario integration
FAILURE_CONFIG = ScenarioConfig(
    "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
    failure=FailureSpec(at_s=1.9, victim_rank=0),
)


@pytest.fixture(scope="module")
def traced_failure_run():
    telemetry = Telemetry()
    result = run_scenario(FAILURE_CONFIG, telemetry=telemetry)
    return result, telemetry


class TestScenarioTelemetry:
    def test_no_spans_left_open(self, traced_failure_run):
        _, telemetry = traced_failure_run
        assert telemetry.tracer.open_count() == 0
        assert telemetry.tracer.spans

    def test_killed_ranks_checkpoints_close_aborted(self, traced_failure_run):
        _, telemetry = traced_failure_run
        aborted = [s for s in telemetry.tracer.spans
                   if s.name == "checkpoint" and s.aborted]
        assert aborted
        for span in aborted:
            assert "abort_cause" in span.attrs

    def test_recovery_span_tree_matches_report(self, traced_failure_run):
        result, telemetry = traced_failure_run
        report = result.recovery_reports[0]
        spans = [s for s in telemetry.tracer.spans if s.track == "recovery"]
        roots = [s for s in spans if s.name == "recovery"]
        assert len(roots) == 1
        root = roots[0]
        # same rollback ranks, same measured failure -> resumption window
        assert root.attrs["rollback_ranks"] == list(report.rollback_ranks)
        assert root.start == report.failure_time
        assert root.end == report.completed_at
        assert not root.aborted

        detection = next(s for s in spans if s.name == "detection")
        assert detection.parent_id == root.span_id
        assert (detection.start, detection.end) == (report.failure_time,
                                                    report.detected_at)

        rank_spans = [s for s in spans if s.name == "rank_restart"]
        assert {s.attrs["rank"] for s in rank_spans} == {rr.rank for rr in report.ranks}
        for span in rank_spans:
            assert span.parent_id == root.span_id
            assert root.start <= span.start <= span.end <= root.end
            stages = [s for s in spans if s.parent_id == span.span_id]
            assert {s.name for s in stages} <= {
                "reboot", "image_restore", "rebuild", "exchange", "replay"}

        barrier = next(s for s in spans if s.name == "barrier")
        assert barrier.end == report.completed_at

    def test_phase_times_cover_checkpoint_and_recovery(self, traced_failure_run):
        result, _ = traced_failure_run
        times = result.phase_times
        assert times["checkpoint"]["records"] == len(result.app.checkpoint_records)
        assert times["checkpoint"]["stages"]["checkpoint"] == pytest.approx(
            sum(r.stages.get("checkpoint", 0.0) for r in result.app.checkpoint_records))
        assert times["recovery"]["reports"] == 1
        assert times["recovery"]["stages"]["total"] > 0

    def test_tracing_does_not_change_simulated_metrics(self, traced_failure_run):
        traced_result, _ = traced_failure_run
        runner.clear_caches()
        untraced = run_scenario(FAILURE_CONFIG)
        assert untraced.telemetry.tracing is False
        assert parity_metrics(untraced) == parity_metrics(traced_result)

    def test_phase_times_helper_matches_result_property(self, traced_failure_run):
        result, telemetry = traced_failure_run
        assert phase_times(telemetry) == result.phase_times


# ------------------------------------------------ golden parity with tracing
PARITY_SUBSET = [quick_parity_configs()[i] for i in (0, 6)]


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize("fast", [True, False], ids=["fastpath", "slowpath"])
@pytest.mark.parametrize("config", PARITY_SUBSET, ids=scenario_label)
def test_traced_runs_match_parity_golden(config, fast, golden, monkeypatch):
    """Span tracing on, both kernel paths: golden metrics stay bit-identical."""
    monkeypatch.setenv(FAST_PATH_ENV, "1" if fast else "0")
    runner.clear_caches()
    try:
        result = run_scenario(config, telemetry=Telemetry())
    finally:
        runner.clear_caches()
    assert result.telemetry.tracing is True
    assert result.telemetry.tracer.spans  # tracing actually engaged
    assert result.telemetry.tracer.open_count() == 0
    assert parity_metrics(result) == golden[scenario_label(config)]["metrics"]
