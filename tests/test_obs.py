"""Telemetry layer: span semantics, metrics registry, exporters, integration.

Covers:

* :class:`~repro.obs.SpanTracer` semantics — nesting, attribute propagation,
  idempotent close, retroactive spans, and ``abort_open`` sweeping
  interrupted spans closed with ``aborted=True``;
* the :class:`~repro.obs.MetricsRegistry` instrument family and its flat
  rendering (the campaign payload's ``registry_metrics``);
* the MPI :class:`~repro.mpi.tracer.Tracer` cap marking its log
  ``truncated`` (with the dropped count surviving a dumps/loads round trip);
* Chrome ``trace_event`` export validity;
* scenario integration — a traced failure + recovery run leaves no open
  spans, closes killed ranks' checkpoint spans as aborted, and exports a
  recovery span tree that *matches the* :class:`RecoveryReport` (same
  rollback ranks, same measured failure→resumption window);
* bit-identity — span tracing enabled reproduces the committed golden
  parity metrics under both ``REPRO_SIM_FASTPATH`` modes.
"""

import json
import os

import pytest

from repro.ckpt.scheduler import periodic
from repro.cluster.network import FAST_PATH_ENV
from repro.experiments import runner
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.experiments.parity import parity_metrics, quick_parity_configs, scenario_label
from repro.experiments.runner import run_scenario
from repro.mpi.tracer import Tracer
from repro.mpi.messages import Message
from repro.mpi.trace import TraceLog, TraceRecord
from repro.obs import (
    RANK_STATES,
    SAMPLE_BIN_ENV,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    SpanTracer,
    StateSampler,
    Telemetry,
    chrome_trace,
    flat_metrics,
    phase_times,
    reconcile_with_registry,
    sampling_bin_from_env,
    spans_to_jsonl,
    utilization_breakdown,
    utilization_table,
    write_series_csv,
    write_series_jsonl,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "quick_parity_golden.json")


class ManualClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ------------------------------------------------------------- span semantics
class TestSpanTracer:
    def test_nesting_and_attribute_propagation(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        outer = tracer.begin("wave", track="rank0", category="ckpt", ckpt_id=1)
        clock.now = 1.0
        inner = tracer.begin("dump", track="rank0", group_id=2)
        assert inner.parent_id == outer.span_id
        clock.now = 1.5
        tracer.end(inner, nbytes=4096)
        clock.now = 2.0
        tracer.end(outer)
        assert inner.attrs == {"group_id": 2, "nbytes": 4096}
        assert outer.attrs == {"ckpt_id": 1}
        assert (outer.start, outer.end) == (0.0, 2.0)
        assert (inner.start, inner.end) == (1.0, 1.5)
        assert inner.duration == 0.5
        assert tracer.open_count() == 0

    def test_separate_tracks_do_not_nest(self):
        tracer = SpanTracer(ManualClock())
        a = tracer.begin("a", track="rank0")
        b = tracer.begin("b", track="rank1")
        assert b.parent_id is None
        tracer.end(a)
        tracer.end(b)

    def test_end_is_idempotent(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        span = tracer.begin("x")
        clock.now = 1.0
        tracer.end(span)
        clock.now = 5.0
        tracer.end(span)  # no-op: already closed
        assert span.end == 1.0
        assert len(tracer.spans) == 1

    def test_context_manager(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        with tracer.span("claim", track="worker", key="k1") as span:
            clock.now = 3.0
        assert span.end == 3.0
        assert span.attrs == {"key": "k1"}

    def test_abort_open_closes_innermost_first_with_cause(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        outer = tracer.begin("checkpoint", track="rank3")
        inner = tracer.begin("stage", track="rank3")
        clock.now = 2.5
        closed = tracer.abort_open("rank3", abort_cause="node-crash")
        assert closed == [inner, outer]
        for span in (inner, outer):
            assert span.aborted
            assert span.end == 2.5
            assert span.attrs["abort_cause"] == "node-crash"
        assert tracer.open_count("rank3") == 0

    def test_abort_open_on_clean_track_is_a_noop(self):
        tracer = SpanTracer(ManualClock())
        assert tracer.abort_open("rank9") == []

    def test_retroactive_add_bypasses_open_stacks(self):
        tracer = SpanTracer(ManualClock())
        live = tracer.begin("checkpoint", track="rank0")
        retro = tracer.add("l2_partner_copy", start=0.5, end=0.9,
                           track="rank0", parent=live, bytes=1024)
        # the retro span did not become the nesting parent of future begins
        sibling = tracer.begin("stage", track="rank0")
        assert sibling.parent_id == live.span_id
        assert retro.parent_id == live.span_id
        assert retro.end == 0.9
        assert retro.attrs == {"bytes": 1024}
        tracer.end(sibling)
        tracer.end(live)

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        span = tracer.begin("x", track="t")
        tracer.end(span)
        with tracer.span("y"):
            pass
        assert tracer.abort_open("t") == []
        assert tracer.open_count() == 0
        assert tracer.spans == []


# ----------------------------------------------------------- metrics registry
class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("sim.events.processed").inc()
        reg.counter("sim.events.processed").inc(4)
        reg.gauge("recovery.inflight.peak").max(2)
        reg.gauge("recovery.inflight.peak").max(1)  # lower: no change
        hist = reg.histogram("phase.checkpoint.duration")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        assert reg.get("sim.events.processed").value == 5
        assert reg.get("recovery.inflight.peak").value == 2
        assert (hist.count, hist.total, hist.min, hist.max) == (3, 6.0, 1.0, 3.0)
        assert hist.mean == 2.0

    def test_tags_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("storage.bytes.written", tier="L1").inc(10)
        reg.counter("storage.bytes.written", tier="L2").inc(20)
        assert reg.get("storage.bytes.written", tier="L1").value == 10
        assert reg.get("storage.bytes.written", tier="L2").value == 20
        assert reg.get("storage.bytes.written") is None

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_merge_counts_prefixes_legacy_stats(self):
        reg = MetricsRegistry()
        reg.merge_counts({"spare_migrations": 2, "inplace_reboots": 1},
                         prefix="recovery.")
        assert reg.get("recovery.spare_migrations").value == 2

    def test_flat_dict_expands_histograms_sorted(self):
        reg = MetricsRegistry()
        reg.histogram("b.hist").observe(2.0)
        reg.counter("a.count", tier="L2").inc(3)
        flat = reg.as_flat_dict()
        assert flat == {
            "a.count{tier=L2}": 3,
            "b.hist.count": 1,
            "b.hist.max": 2.0,
            "b.hist.min": 2.0,
            "b.hist.total": 2.0,
        }
        assert list(flat) == sorted(flat)
        assert flat_metrics(reg) == flat

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.counter("x").inc()
        reg.histogram("y").observe(1.0)
        reg.merge_counts({"a": 1})
        assert reg.get("x") is None
        assert len(reg) == 0
        assert reg.as_flat_dict() == {}


# ------------------------------------------------- MPI trace-log truncation
class TestTraceLogTruncation:
    def _send(self, tracer, n):
        for i in range(n):
            tracer.on_send(Message(src=0, dst=1, nbytes=100, tag=i), timestamp=float(i))

    def test_cap_marks_log_truncated(self):
        tracer = Tracer(max_records=3)
        self._send(tracer, 5)
        assert len(tracer.log) == 3
        assert tracer.log.truncated
        assert tracer.log.dropped_records == 2
        assert tracer.dropped_records == 2

    def test_uncapped_log_is_not_truncated(self):
        tracer = Tracer()
        self._send(tracer, 5)
        assert not tracer.log.truncated
        assert tracer.log.dropped_records == 0

    def test_truncation_survives_round_trip(self):
        tracer = Tracer(max_records=2)
        self._send(tracer, 6)
        text = tracer.log.dumps()
        assert "# truncated 4" in text
        again = TraceLog.loads(text)
        assert again.truncated
        assert again.dropped_records == 4
        assert len(again) == 2
        # a complete trace round-trips as not-truncated
        clean = TraceLog.loads(TraceLog(tracer.log.records).dumps())
        assert not clean.truncated

    def test_reset_clears_truncation(self):
        tracer = Tracer(max_records=1)
        self._send(tracer, 3)
        tracer.reset()
        assert not tracer.log.truncated
        assert tracer.dropped_records == 0

    def test_retro_appends_past_cap_count_as_dropped(self):
        # regression: records added directly to a capped log (not via the
        # tracer's on_send) used to bypass the cap entirely, leaving
        # dropped_records stale and the `# truncated N` marker wrong
        tracer = Tracer(max_records=3)
        self._send(tracer, 3)
        log = tracer.log
        assert not log.truncated
        assert log.append(TraceRecord(src=0, dst=1, nbytes=7)) is False
        assert log.extend(TraceRecord(src=0, dst=1, nbytes=7)
                          for _ in range(2)) == 0
        assert log.truncated
        assert log.dropped_records == 3
        assert tracer.dropped_records == 3  # tracer view == the log's counter
        text = log.dumps()
        assert "# truncated 3" in text
        again = TraceLog.loads(text)
        assert again.truncated and again.dropped_records == 3
        assert len(again) == 3

    def test_cap_enforced_from_construction(self):
        records = [TraceRecord(src=0, dst=1, nbytes=1) for _ in range(5)]
        log = TraceLog(records, max_records=2)
        assert len(log) == 2
        assert log.truncated and log.dropped_records == 3

    def test_reset_preserves_cap(self):
        tracer = Tracer(max_records=2)
        self._send(tracer, 5)
        tracer.reset()
        self._send(tracer, 5)
        assert len(tracer.log) == 2
        assert tracer.dropped_records == 3


# ------------------------------------------------------------- chrome export
class TestExport:
    def _tracer(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        outer = tracer.begin("checkpoint", track="rank0", category="ckpt", ckpt_id=1)
        clock.now = 2.0
        tracer.end(outer)
        tracer.add("copy", start=0.5, end=1.0, track="storage",
                   category="storage", aborted=True)
        return tracer

    def test_chrome_trace_structure(self):
        tracer = self._tracer()
        reg = MetricsRegistry()
        reg.counter("ckpt.records").inc(1)
        doc = chrome_trace(tracer, metrics=reg)
        json.dumps(doc)  # must be serialisable
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} >= {"repro", "rank0", "storage"}
        assert len(complete) == 2
        ckpt = next(e for e in complete if e["name"] == "checkpoint")
        assert ckpt["ts"] == 0.0 and ckpt["dur"] == 2e6  # seconds -> µs
        copy = next(e for e in complete if e["name"] == "copy")
        assert copy["args"]["aborted"] is True
        assert copy["tid"] != ckpt["tid"]
        assert doc["otherData"]["metrics"] == {"ckpt.records": 1}

    def test_jsonl_is_one_object_per_line(self):
        lines = spans_to_jsonl(self._tracer()).strip().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "checkpoint"
        assert parsed[1]["aborted"] is True


# ------------------------------------------------------- scenario integration
FAILURE_CONFIG = ScenarioConfig(
    "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
    failure=FailureSpec(at_s=1.9, victim_rank=0),
)


@pytest.fixture(scope="module")
def traced_failure_run():
    telemetry = Telemetry()
    result = run_scenario(FAILURE_CONFIG, telemetry=telemetry)
    return result, telemetry


class TestScenarioTelemetry:
    def test_no_spans_left_open(self, traced_failure_run):
        _, telemetry = traced_failure_run
        assert telemetry.tracer.open_count() == 0
        assert telemetry.tracer.spans

    def test_killed_ranks_checkpoints_close_aborted(self, traced_failure_run):
        _, telemetry = traced_failure_run
        aborted = [s for s in telemetry.tracer.spans
                   if s.name == "checkpoint" and s.aborted]
        assert aborted
        for span in aborted:
            assert "abort_cause" in span.attrs

    def test_recovery_span_tree_matches_report(self, traced_failure_run):
        result, telemetry = traced_failure_run
        report = result.recovery_reports[0]
        spans = [s for s in telemetry.tracer.spans if s.track == "recovery"]
        roots = [s for s in spans if s.name == "recovery"]
        assert len(roots) == 1
        root = roots[0]
        # same rollback ranks, same measured failure -> resumption window
        assert root.attrs["rollback_ranks"] == list(report.rollback_ranks)
        assert root.start == report.failure_time
        assert root.end == report.completed_at
        assert not root.aborted

        detection = next(s for s in spans if s.name == "detection")
        assert detection.parent_id == root.span_id
        assert (detection.start, detection.end) == (report.failure_time,
                                                    report.detected_at)

        rank_spans = [s for s in spans if s.name == "rank_restart"]
        assert {s.attrs["rank"] for s in rank_spans} == {rr.rank for rr in report.ranks}
        for span in rank_spans:
            assert span.parent_id == root.span_id
            assert root.start <= span.start <= span.end <= root.end
            stages = [s for s in spans if s.parent_id == span.span_id]
            assert {s.name for s in stages} <= {
                "reboot", "image_restore", "rebuild", "exchange", "replay"}

        barrier = next(s for s in spans if s.name == "barrier")
        assert barrier.end == report.completed_at

    def test_phase_times_cover_checkpoint_and_recovery(self, traced_failure_run):
        result, _ = traced_failure_run
        times = result.phase_times
        assert times["checkpoint"]["records"] == len(result.app.checkpoint_records)
        assert times["checkpoint"]["stages"]["checkpoint"] == pytest.approx(
            sum(r.stages.get("checkpoint", 0.0) for r in result.app.checkpoint_records))
        assert times["recovery"]["reports"] == 1
        assert times["recovery"]["stages"]["total"] > 0

    def test_tracing_does_not_change_simulated_metrics(self, traced_failure_run):
        traced_result, _ = traced_failure_run
        runner.clear_caches()
        untraced = run_scenario(FAILURE_CONFIG)
        assert untraced.telemetry.tracing is False
        assert parity_metrics(untraced) == parity_metrics(traced_result)

    def test_phase_times_helper_matches_result_property(self, traced_failure_run):
        result, telemetry = traced_failure_run
        assert phase_times(telemetry) == result.phase_times


# ------------------------------------------------ golden parity with tracing
PARITY_SUBSET = [quick_parity_configs()[i] for i in (0, 6)]


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize("fast", [True, False], ids=["fastpath", "slowpath"])
@pytest.mark.parametrize("config", PARITY_SUBSET, ids=scenario_label)
def test_traced_runs_match_parity_golden(config, fast, golden, monkeypatch):
    """Span tracing on, both kernel paths: golden metrics stay bit-identical."""
    monkeypatch.setenv(FAST_PATH_ENV, "1" if fast else "0")
    runner.clear_caches()
    try:
        result = run_scenario(config, telemetry=Telemetry())
    finally:
        runner.clear_caches()
    assert result.telemetry.tracing is True
    assert result.telemetry.tracer.spans  # tracing actually engaged
    assert result.telemetry.tracer.open_count() == 0
    assert parity_metrics(result) == golden[scenario_label(config)]["metrics"]


# --------------------------------------------------- continuous state sampler
class _StubInbox:
    _waiters = ()

    def __len__(self):
        return 0


class _StubCtx:
    def __init__(self, rank):
        self.rank = rank
        self.finished = False
        self.failed = False
        self.in_recovery = False
        self.in_checkpoint = False
        self.pending_get = None
        self.inbox = _StubInbox()
        self.protocol = object()


class _StubNet:
    def __init__(self, n):
        self.n_nodes = n
        self._tx_inflight = [0] * n
        self._rx_inflight = [0] * n


class _StubCluster:
    def __init__(self, n):
        self.network = _StubNet(n)


class _StubRuntime:
    def __init__(self, n=2):
        self.n_ranks = n
        self.contexts = [_StubCtx(r) for r in range(n)]
        self._rank_processes = [None] * n
        self.cluster = _StubCluster(n)


class TestStateSamplerUnit:
    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            StateSampler(bin_s=0.0)
        with pytest.raises(ValueError):
            StateSampler(bin_s=0.25, max_bins=1)

    def test_env_bin_parsing(self, monkeypatch):
        monkeypatch.delenv(SAMPLE_BIN_ENV, raising=False)
        assert sampling_bin_from_env() is None
        monkeypatch.setenv(SAMPLE_BIN_ENV, "0.25")
        assert sampling_bin_from_env() == 0.25
        monkeypatch.setenv(SAMPLE_BIN_ENV, "junk")
        assert sampling_bin_from_env() is None
        monkeypatch.setenv(SAMPLE_BIN_ENV, "-1")
        assert sampling_bin_from_env() is None

    def test_unbound_observe_only_advances_the_edge(self):
        sampler = StateSampler(bin_s=0.5)
        sampler.observe(1.7)
        assert sampler.next_edge == pytest.approx(2.0)
        assert sampler.n_bins == 0

    def test_observe_stamps_every_crossed_edge(self):
        sampler = StateSampler(bin_s=0.25)
        sampler.bind_runtime(_StubRuntime(n=3))
        sampler.observe(1.05)  # crosses 0.25, 0.5, 0.75, 1.0
        assert sampler.edges == pytest.approx([0.25, 0.5, 0.75, 1.0])
        assert sampler.next_edge == pytest.approx(1.25)
        # one snapshot, shared by all four edges; stub ranks all compute
        assert sampler.rank_states[0] == bytes([0, 0, 0])
        fractions = sampler.occupancy_fractions()
        assert fractions["compute"] == [1.0] * 4

    def test_rebin_halves_resolution_and_bounds_memory(self):
        sampler = StateSampler(bin_s=0.25, max_bins=4)
        sampler.bind_runtime(_StubRuntime())
        sampler.observe(2.0)  # 8 edges > max_bins -> one rebin
        assert sampler.rebin_count == 1
        assert sampler.bin_s == pytest.approx(0.5)
        assert sampler.edges == pytest.approx([0.5, 1.0, 1.5, 2.0])
        assert sampler.next_edge == pytest.approx(2.5)

    def test_note_phase_reclassifies_interrupted_checkpoint(self):
        sampler = StateSampler(bin_s=0.25)
        sampler.note_phase(0, "checkpoint", 1.0)
        sampler.note_phase(0, "checkpoint", 1.1)  # re-note: no-op
        sampler.note_phase(0, "recovery", 1.5)  # kill mid-checkpoint
        sampler.note_phase(0, None, 2.5)
        # the partial wave books as recovery, not checkpoint
        assert sampler.phase_intervals == [
            (0, "recovery", 1.0, 1.5),
            (0, "recovery", 1.5, 2.5),
        ]
        assert sampler.phase_seconds() == {0: {"recovery": pytest.approx(1.5)}}

    def test_end_phase_only_closes_matching_phase(self):
        sampler = StateSampler(bin_s=0.25)
        sampler.note_phase(1, "checkpoint", 1.0)
        sampler.note_phase(1, "recovery", 1.2)
        # the checkpoint finally-block fires after the kill moved the rank
        # to recovery: it must not clobber the open recovery interval
        sampler.end_phase(1, "checkpoint", 1.3)
        sampler.finalize(2.0)
        assert (1, "recovery", 1.2, 2.0) in sampler.phase_intervals

    def test_finalize_closes_open_phases(self):
        sampler = StateSampler(bin_s=0.25)
        sampler.note_phase(0, "finished", 3.0)
        sampler.finalize(4.0)
        assert sampler.phase_intervals == [(0, "finished", 3.0, 4.0)]
        assert sampler.end_time == 4.0


# ------------------------------------------- sampled scenario + attribution
SAMPLE_BIN = 0.1


@pytest.fixture(scope="module")
def sampled_failure_run():
    runner.clear_caches()
    telemetry = Telemetry(trace=False, sample_bin_s=SAMPLE_BIN)
    result = run_scenario(FAILURE_CONFIG, telemetry=telemetry)
    runner.clear_caches()
    return result, telemetry


class TestSampledScenario:
    def test_sampler_engaged_and_summary_flows_through(self, sampled_failure_run):
        result, telemetry = sampled_failure_run
        sampler = telemetry.sampler
        assert sampler.n_bins > 0
        assert result.sampler is sampler
        summary = result.sampler_summary
        assert summary == sampler.summary()
        assert result.nic_util_peak == summary["nic_util_peak"] > 0
        assert result.log_bytes_peak == summary["log_bytes_peak"] > 0
        assert result.inbox_depth_max == summary["inbox_depth_max"] > 0

    def test_occupancy_fractions_sum_to_one_per_bin(self, sampled_failure_run):
        _, telemetry = sampled_failure_run
        fractions = telemetry.sampler.occupancy_fractions()
        for i in range(telemetry.sampler.n_bins):
            assert sum(fractions[s][i] for s in RANK_STATES) == pytest.approx(1.0)

    def test_breakdown_reconciles_with_registry_phase_times(self, sampled_failure_run):
        """Acceptance criterion: occupancy reconciles within one bin width."""
        result, telemetry = sampled_failure_run
        sampler = telemetry.sampler
        rec = reconcile_with_registry(sampler, telemetry)
        assert rec["checkpoint_registry_s"] > 0
        assert rec["checkpoint_abs_diff"] <= sampler.bin_s
        assert rec["recovery_attributed_s"] > 0

    def test_breakdown_sums_to_run_length_per_rank(self, sampled_failure_run):
        result, telemetry = sampled_failure_run
        sampler = telemetry.sampler
        breakdown = utilization_breakdown(sampler)
        assert set(breakdown) == set(range(FAILURE_CONFIG.n_ranks))
        for rank, states in breakdown.items():
            assert set(states) == set(RANK_STATES)
            assert sum(states.values()) == pytest.approx(sampler.end_time)
        table = utilization_table(breakdown)
        assert len(table.rows) == FAILURE_CONFIG.n_ranks

    def test_sampling_does_not_change_simulated_metrics(self, sampled_failure_run):
        sampled_result, _ = sampled_failure_run
        runner.clear_caches()
        plain = run_scenario(FAILURE_CONFIG)
        runner.clear_caches()
        assert parity_metrics(plain) == parity_metrics(sampled_result)

    def test_series_exports_round_trip(self, sampled_failure_run, tmp_path):
        _, telemetry = sampled_failure_run
        sampler = telemetry.sampler
        jsonl_path = tmp_path / "series.jsonl"
        csv_path = tmp_path / "series.csv"
        write_series_jsonl(jsonl_path, sampler)
        write_series_csv(csv_path, sampler)

        records = [json.loads(line)
                   for line in jsonl_path.read_text().splitlines()]
        meta = [r for r in records if r["type"] == "meta"]
        bins = [r for r in records if r["type"] == "bin"]
        phases = [r for r in records if r["type"] == "phase"]
        assert len(meta) == 1
        assert meta[0]["states"] == list(RANK_STATES)
        assert len(bins) == sampler.n_bins
        assert len(phases) == len(sampler.phase_intervals)

        csv_lines = csv_path.read_text().strip().splitlines()
        assert len(csv_lines) == sampler.n_bins + 1  # header + one per bin
        assert csv_lines[0].startswith("t0,t1,n_compute")

    def test_dashboard_renders_from_jsonl(self, sampled_failure_run, tmp_path):
        """Acceptance criterion: heatmap HTML renders end-to-end."""
        import sys

        _, telemetry = sampled_failure_run
        path = tmp_path / "series.jsonl"
        write_series_jsonl(path, telemetry.sampler)
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        try:
            from tools.dashboard import (load_series, occupancy_table,
                                         render_dashboard_html)
        finally:
            sys.path.pop(0)
        data = load_series(str(path))
        assert len(data["bins"]) == telemetry.sampler.n_bins
        html = render_dashboard_html(data, title="test run")
        assert "Rank-state heatmap" in html
        assert "Utilization stacked area" in html
        assert "prefers-color-scheme: dark" in html
        assert "Table view" in html
        table = occupancy_table(data)
        assert [row[0] for row in table.rows] == list(RANK_STATES)


@pytest.mark.parametrize("fast", [True, False], ids=["fastpath", "slowpath"])
@pytest.mark.parametrize("config", PARITY_SUBSET, ids=scenario_label)
def test_sampled_runs_match_parity_golden(config, fast, golden, monkeypatch):
    """Sampler on, both kernel paths: golden metrics stay bit-identical."""
    monkeypatch.setenv(FAST_PATH_ENV, "1" if fast else "0")
    runner.clear_caches()
    try:
        result = run_scenario(
            config, telemetry=Telemetry(trace=False, sample_bin_s=0.05))
    finally:
        runner.clear_caches()
    sampler = result.telemetry.sampler
    assert sampler is not None and sampler.n_bins > 0
    assert parity_metrics(result) == golden[scenario_label(config)]["metrics"]
