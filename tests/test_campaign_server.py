"""Tests for the campaign observatory: generation stamps, the response
cache, and the read-side HTTP service (REST API, Prometheus scrape, live
HTML board)."""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign import (
    CampaignStore,
    GenerationCache,
    campaign_progress,
    drain_store,
)
from repro.campaign.metrics_export import (
    MetricFamily,
    campaign_families,
    parse_exposition,
    registry_families,
    render_exposition,
)
from repro.campaign.server import ObservatoryApp, serve
from repro.ckpt.scheduler import one_shot
from repro.experiments.config import ScenarioConfig
from repro.obs.metrics import MetricsRegistry

RING_OPTS = {"iterations": 6, "compute_seconds": 0.05}

#: every cached endpoint of the service (the warm-cache acceptance set)
CACHED_ENDPOINTS = (
    "/",
    "/api/progress",
    "/api/results",
    "/api/results?format=csv",
    "/api/tables/overhead",
    "/api/tables/survivability",
    "/api/tables/availability",
    "/api/tables/elastic",
    "/api/bench",
    "/metrics",
)


def ring_config(method="NORM", seed=1, **kwargs):
    base = dict(workload="ring", n_ranks=4, method=method, schedule=one_shot(0.2),
                workload_options=dict(RING_OPTS), seed=seed)
    base.update(kwargs)
    return ScenarioConfig(**base)


def seeded_store(path):
    """A drained 2×2 ring grid plus one benchmark row, on disk at ``path``."""
    store = CampaignStore(str(path))
    for method in ("NORM", "GP1"):
        for seed in (1, 2):
            store.add(ring_config(method=method, seed=seed))
    drain_store(store)
    store.record_benchmark("kernel_speed",
                           {"scenario": "ring-4", "events_per_s": 12345.0})
    return store


def http_get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


# ---------------------------------------------------------- generation stamp
class TestGeneration:
    def test_stable_across_pure_reads(self):
        store = CampaignStore(":memory:")
        store.add(ring_config())
        stamp = store.generation()
        store.counts()
        campaign_progress(store)
        assert store.generation() == stamp

    def test_changes_on_every_lifecycle_transition(self):
        store = CampaignStore(":memory:")
        stamps = [store.generation()]

        def step(label):
            stamp = store.generation()
            assert stamp not in stamps, f"stamp unchanged after {label}"
            stamps.append(stamp)

        key = store.add(ring_config())
        step("add")
        claimed = store.claim(worker="w1")
        assert claimed is not None
        step("claim")
        assert store.mark_done(key, {"makespan": 1.0})
        step("mark_done")
        store.record_benchmark("kernel_speed", {"scenario": "x", "events_per_s": 1.0})
        step("record_benchmark")

    def test_cross_connection_writes_are_visible(self, tmp_path):
        db = str(tmp_path / "gen.sqlite")
        reader = CampaignStore(db)
        writer = CampaignStore(db)
        before = reader.generation()
        writer.add(ring_config())
        assert reader.generation() != before


# ------------------------------------------------------------ response cache
class TestGenerationCache:
    def test_computes_at_most_once_per_generation(self):
        store = CampaignStore(":memory:")
        store.add(ring_config())
        registry = MetricsRegistry()
        cache = GenerationCache(store, registry=registry)
        calls = []

        def compute():
            calls.append(1)
            return b"payload"

        entry1, hit1 = cache.get("k", compute)
        entry2, hit2 = cache.get("k", compute)
        assert (hit1, hit2) == (False, True)
        assert entry1.value == entry2.value == b"payload"
        assert entry1.etag == entry2.etag
        assert len(calls) == 1
        assert cache.miss_count == 1 and cache.hit_count == 1
        assert registry.counter("server.cache.miss").value == 1
        assert registry.counter("server.cache.hit").value == 1

    def test_store_write_invalidates_and_changes_etag(self):
        store = CampaignStore(":memory:")
        cache = GenerationCache(store)
        entry1, _ = cache.get("k", lambda: b"a")
        store.add(ring_config())
        entry2, hit = cache.get("k", lambda: b"b")
        assert not hit
        assert entry2.value == b"b"
        assert entry1.etag != entry2.etag

    def test_independent_keys_and_invalidate(self):
        store = CampaignStore(":memory:")
        cache = GenerationCache(store)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        assert len(cache) == 2
        cache.invalidate("a")
        assert len(cache) == 1
        _, hit = cache.get("b", lambda: 3)
        assert hit
        cache.invalidate()
        assert len(cache) == 0


# -------------------------------------------------------- benchmark stamping
class TestBenchmarkStamping:
    def test_rows_are_stamped_with_versions_and_timestamp(self):
        from repro.campaign.results import PAYLOAD_VERSION, simulator_fingerprint

        store = CampaignStore(":memory:")
        store.record_benchmark("kernel_speed",
                               {"scenario": "s", "events_per_s": 10.0})
        (row,) = store.benchmark_rows("kernel_speed")
        payload = row["payload"]
        assert payload["payload_version"] == PAYLOAD_VERSION
        assert payload["sim_version"] == simulator_fingerprint()
        # ISO-8601 UTC, parseable and tz-aware
        from datetime import datetime

        stamp = datetime.fromisoformat(payload["recorded_at_utc"])
        assert stamp.tzinfo is not None

    def test_explicit_stamps_are_not_overwritten(self):
        store = CampaignStore(":memory:")
        store.record_benchmark("b", {"scenario": "s", "events_per_s": 1.0,
                                     "sim_version": "frozen"})
        (row,) = store.benchmark_rows("b")
        assert row["payload"]["sim_version"] == "frozen"


# -------------------------------------------------------- prometheus format
class TestExposition:
    def test_render_and_parse_round_trip(self):
        families = [
            MetricFamily("demo_gauge", "gauge", "a gauge").add(1.5, kind="x"),
            MetricFamily("demo_total", "counter", 'help with "quotes"\nand newline'
                         ).add(3),
        ]
        text = render_exposition(families)
        parsed = parse_exposition(text)
        assert parsed["demo_gauge"]["type"] == "gauge"
        assert parsed["demo_gauge"]["samples"]['kind="x"'] == 1.5
        assert parsed["demo_total"]["samples"][""] == 3.0

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_exposition("no_type_header 1\n")
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x bogus\n")
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x gauge\nx notanumber\n")

    def test_campaign_families_cover_the_store(self):
        store = CampaignStore(":memory:")
        store.add(ring_config())
        drain_store(store)
        store.record_benchmark("kernel_speed",
                               {"scenario": "ring-4", "events_per_s": 7.0})
        progress = campaign_progress(store)
        text = render_exposition(
            campaign_families(progress, store.benchmark_rows()))
        parsed = parse_exposition(text)
        assert parsed["repro_campaign_rows"]["samples"]['status="done"'] == 1.0
        assert parsed["repro_campaign_experiments"]["samples"][""] == 1.0
        assert parsed["repro_campaign_done_fraction"]["samples"][""] == 1.0
        sample = parsed["repro_benchmark_events_per_second"]["samples"]
        assert sample['benchmark="kernel_speed",scenario="ring-4"'] == 7.0

    def test_registry_families_translate_names_and_tags(self):
        registry = MetricsRegistry()
        registry.counter("server.cache.hit").inc(4)
        registry.gauge("queue.depth", worker="w1").set(2)
        registry.histogram("req.seconds").observe(0.5)
        text = render_exposition(registry_families(registry))
        parsed = parse_exposition(text)
        assert parsed["repro_server_cache_hit_total"]["type"] == "counter"
        assert parsed["repro_server_cache_hit_total"]["samples"][""] == 4.0
        assert parsed["repro_queue_depth"]["samples"]['worker="w1"'] == 2.0
        assert parsed["repro_req_seconds_sum"]["samples"][""] == 0.5
        assert parsed["repro_req_seconds_count"]["samples"][""] == 1.0


# ------------------------------------------------------------- http service
@pytest.fixture(scope="module")
def observatory(tmp_path_factory):
    """A live server over a drained 2×2 ring store (module-shared)."""
    db = str(tmp_path_factory.mktemp("obs") / "campaign.sqlite")
    seeded_store(db).close()
    server = serve(db, port=0, poll_s=0.5)
    server.serve_in_thread()
    host, port = server.server_address[:2]
    yield server, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    server.app.store.close()


class TestObservatoryService:
    def test_healthz_reports_generation(self, observatory):
        server, base = observatory
        status, headers, body = http_get(base + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["generation"] == list(server.app.cache.generation())
        assert "ETag" not in headers  # liveness is never cached

    def test_progress_snapshot_is_consistent_json(self, observatory):
        _, base = observatory
        status, headers, body = http_get(base + "/api/progress")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert sum(payload["counts"].values()) == payload["total"] == 4
        assert payload["counts"]["done"] == 4
        assert payload["done_fraction"] == 1.0
        assert not payload["is_empty"]

    def test_every_cached_endpoint_warms_to_hits_and_304(self, observatory):
        server, base = observatory
        cache = server.app.cache
        for path in CACHED_ENDPOINTS:
            status1, headers1, body1 = http_get(base + path)
            assert status1 == 200, path
            etag = headers1["ETag"]
            misses_between = cache.miss_count
            status2, headers2, body2 = http_get(
                base + path, {"If-None-Match": etag})
            # the second, conditional request: 304, no body, zero new misses
            assert status2 == 304, path
            assert body2 == b"" and headers2["ETag"] == etag, path
            assert headers2["X-Cache"] == "hit", path
            assert cache.miss_count == misses_between, path
            # unconditional re-read serves the identical cached body
            status3, headers3, body3 = http_get(base + path)
            assert (status3, body3) == (200, body1), path
            assert headers3["X-Cache"] == "hit", path
            assert cache.miss_count == misses_between, path

    def test_results_json_and_filters(self, observatory):
        _, base = observatory
        _, _, body = http_get(base + "/api/results")
        payload = json.loads(body)
        assert payload["count"] == 4
        assert {r["config"]["method"] for r in payload["results"]} \
            == {"NORM", "GP1"}
        assert all(r["metrics"]["makespan"] > 0 for r in payload["results"])
        _, _, body = http_get(base + "/api/results?method=NORM&seed=1")
        payload = json.loads(body)
        assert payload["count"] == 1
        assert payload["results"][0]["config"]["seed"] == 1

    def test_results_csv_negotiation(self, observatory):
        _, base = observatory
        status, headers, body = http_get(base + "/api/results?format=csv")
        assert status == 200
        assert headers["Content-Type"].startswith("text/csv")
        lines = body.decode().strip().splitlines()
        assert lines[0].startswith("workload,")
        assert len(lines) == 1 + 4
        # Accept-header negotiation reaches the same representation
        _, accept_headers, accept_body = http_get(
            base + "/api/results", {"Accept": "text/csv"})
        assert accept_headers["Content-Type"].startswith("text/csv")
        assert accept_body == body

    def test_bench_rows_are_served_with_stamps(self, observatory):
        _, base = observatory
        status, _, body = http_get(base + "/api/bench?name=kernel_speed")
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 1
        row = payload["rows"][0]
        assert row["payload"]["events_per_s"] == 12345.0
        assert "sim_version" in row["payload"]
        assert "recorded_at_utc" in row["payload"]

    def test_table_endpoints_have_table_shape(self, observatory):
        _, base = observatory
        for name in ("overhead", "survivability", "availability", "elastic"):
            status, _, body = http_get(base + f"/api/tables/{name}")
            assert status == 200, name
            payload = json.loads(body)
            assert set(payload) == {"table", "source_results"}
            assert set(payload["table"]) == {"title", "columns", "rows"}
            # the ring store holds no experiment-family rows
            assert payload["source_results"] == 0

    def test_metrics_scrape_parses_and_covers_the_campaign(self, observatory):
        _, base = observatory
        status, headers, body = http_get(base + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        parsed = parse_exposition(body.decode())
        assert parsed["repro_campaign_rows"]["samples"]['status="done"'] == 4.0
        assert parsed["repro_campaign_done_fraction"]["samples"][""] == 1.0
        bench = parsed["repro_benchmark_events_per_second"]["samples"]
        assert bench['benchmark="kernel_speed",scenario="ring-4"'] == 12345.0
        # the server's own economy is on the scrape
        assert "repro_server_cache_hit_total" in parsed
        assert "repro_server_cache_miss_total" in parsed
        assert "repro_server_requests_total" in parsed

    def test_html_board_polls_the_progress_endpoint(self, observatory):
        _, base = observatory
        status, headers, body = http_get(base + "/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        page = body.decode()
        assert "campaign observatory" in page
        assert "/api/progress" in page and "location.reload" in page
        assert "100%" in page  # fully drained store

    def test_head_requests_carry_headers_without_body(self, observatory):
        _, base = observatory
        request = urllib.request.Request(base + "/api/progress", method="HEAD")
        with urllib.request.urlopen(request, timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["ETag"]
            assert resp.read() == b""

    def test_unknown_routes_and_bad_params(self, observatory):
        _, base = observatory
        status, _, body = http_get(base + "/api/tables/nope")
        assert status == 404
        assert "overhead" in json.loads(body)["tables"]
        status, _, _ = http_get(base + "/nope")
        assert status == 404
        status, _, body = http_get(base + "/api/results?limit=bogus")
        assert status == 400
        assert "limit" in json.loads(body)["error"]
        status, _, _ = http_get(base + "/api/results?status=bogus")
        assert status == 400
        status, _, _ = http_get(base + "/api/results?format=xml")
        assert status == 400

    def test_external_write_rolls_the_etag(self, tmp_path):
        db = str(tmp_path / "roll.sqlite")
        store = CampaignStore(db)
        store.add(ring_config(seed=1))
        drain_store(store)
        store.close()
        server = serve(db, port=0)
        server.serve_in_thread()
        base = "http://%s:%d" % server.server_address[:2]
        try:
            _, headers1, _ = http_get(base + "/api/progress")
            # a different connection (an external worker) grows the store
            writer = CampaignStore(db)
            writer.add(ring_config(seed=2))
            writer.close()
            status, headers2, body = http_get(
                base + "/api/progress", {"If-None-Match": headers1["ETag"]})
            assert status == 200  # not 304: the store moved on
            assert headers2["ETag"] != headers1["ETag"]
            assert headers2["X-Cache"] == "miss"
            assert json.loads(body)["counts"]["pending"] == 1
        finally:
            server.shutdown()
            server.server_close()
            server.app.store.close()


# --------------------------------------------- served tables == CLI tables
class TestServedTablesValueEqual:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.campaign.executor import (
            get_default_campaign,
            reset_default_campaign,
        )
        from repro.experiments.storage_tiers import storage_tier_experiment

        reset_default_campaign()
        out = storage_tier_experiment(
            methods=("GP1",), policies=("L1", "L1+L2"),
            failures=("none", "node-crash"), seeds=(0,))
        store = get_default_campaign().store
        yield out, store
        reset_default_campaign()

    def test_from_store_tables_match_experiment_tables(self, sweep):
        from repro.experiments.storage_tiers import tables_from_store

        out, store = sweep
        served = tables_from_store(store)
        assert served["overhead"].title == out["overhead_table"].title
        assert served["overhead"].columns == out["overhead_table"].columns
        assert served["overhead"].rows == out["overhead_table"].rows
        assert served["survivability"].rows == out["survivability"].rows

    def test_http_served_table_matches_experiment_table(self, sweep):
        from repro.analysis.reporting import table_to_dict

        out, store = sweep
        app = ObservatoryApp(store)
        for name, expected in (("overhead", out["overhead_table"]),
                               ("survivability", out["survivability"])):
            response = app.handle(f"/api/tables/{name}", {})
            assert response.status == 200
            payload = json.loads(response.body)
            assert payload["table"] == table_to_dict(expected)


# --------------------------------------------- read-while-write (satellite 3)
class TestConcurrentReadWhileWrite:
    def test_snapshots_stay_consistent_and_writer_finishes(self, tmp_path):
        db = str(tmp_path / "live.sqlite")
        store = CampaignStore(db)
        total = 0
        for method in ("NORM", "GP1"):
            for seed in (1, 2):
                store.add(ring_config(method=method, seed=seed))
                total += 1
        store.close()

        server = serve(db, port=0)
        server.serve_in_thread()
        base = "http://%s:%d" % server.server_address[:2]

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        worker = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.campaign import CampaignStore, drain_store; "
             f"n = drain_store(CampaignStore({db!r}), worker='external'); "
             "sys.exit(0 if n else 3)"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)

        snapshots = []
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                _, _, body = http_get(base + "/api/progress")
                payload = json.loads(body)
                # internal consistency: counts always sum to the total
                assert sum(payload["counts"].values()) == payload["total"]
                assert payload["total"] == total
                snapshots.append(payload["counts"]["done"])
                _, _, scrape = http_get(base + "/metrics")
                parsed = parse_exposition(scrape.decode())
                rows = parsed["repro_campaign_rows"]["samples"]
                assert sum(rows.values()) == float(total)
                if payload["counts"]["done"] == total:
                    break
                time.sleep(0.05)
            out, err = worker.communicate(timeout=120)
            assert worker.returncode == 0, (out, err)
            # the readers never blocked the writer: the grid fully drained
            _, _, body = http_get(base + "/api/progress")
            assert json.loads(body)["counts"]["done"] == total
            assert snapshots, "no snapshot was taken while draining"
            assert all(b >= a for a, b in zip(snapshots, snapshots[1:]))
        finally:
            worker.kill()
            server.shutdown()
            server.server_close()
            server.app.store.close()
