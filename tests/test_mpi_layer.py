"""Tests for the MPI-like layer: messages, ops, traces, collectives, runtime."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.topology import GIDEON_300, Cluster
from repro.mpi import collectives as coll
from repro.mpi.messages import ChannelAccount, Message, MessageKind, in_transit_bytes
from repro.mpi.ops import (
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Recv,
    Reduce,
    Send,
    SendRecv,
)
from repro.mpi.runtime import MpiRuntime, RuntimeConfig
from repro.mpi.trace import TraceLog, TraceRecord, unordered_pair
from repro.mpi.tracer import Tracer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


# ------------------------------------------------------------------ messages & accounts
def test_message_validation():
    with pytest.raises(ValueError):
        Message(src=-1, dst=0, nbytes=10)
    with pytest.raises(ValueError):
        Message(src=0, dst=0, nbytes=-1)


def test_message_sequence_numbers_increase():
    a = Message(src=0, dst=1, nbytes=1)
    b = Message(src=0, dst=1, nbytes=1)
    assert b.seq > a.seq


def test_channel_account_tracks_sent_and_received():
    acc = ChannelAccount(0)
    acc.record_send(1, 100)
    acc.record_send(1, 50)
    acc.record_receive(2, 30)
    assert acc.sent_to(1) == 150
    assert acc.messages_sent_to(1) == 2
    assert acc.received_from(2) == 30
    assert acc.total_sent == 150
    assert acc.total_received == 30
    assert acc.peers() == {1, 2}


def test_channel_account_snapshots_are_copies():
    acc = ChannelAccount(0)
    acc.record_send(1, 100)
    snap = acc.snapshot_sent()
    acc.record_send(1, 100)
    assert snap[1] == 100
    assert acc.sent_to(1) == 200


def test_channel_account_validation():
    acc = ChannelAccount(0)
    with pytest.raises(ValueError):
        acc.record_send(-1, 10)
    with pytest.raises(ValueError):
        acc.record_receive(1, -10)


def test_in_transit_bytes_helper():
    assert in_transit_bytes({1: 500}, {0: 200}, sender=0, receiver=1) == 300
    assert in_transit_bytes({1: 100}, {0: 200}, sender=0, receiver=1) == 0


# ---------------------------------------------------------------------------------- ops
def test_op_validation():
    with pytest.raises(ValueError):
        Compute(seconds=-1)
    with pytest.raises(ValueError):
        Send(dst=-1, nbytes=0)
    with pytest.raises(ValueError):
        Recv(src=-2)
    with pytest.raises(ValueError):
        SendRecv(dst=0, send_nbytes=-1)
    with pytest.raises(ValueError):
        Bcast(root=-1, nbytes=0)


def test_barrier_over_helper_sorts():
    b = Barrier.over([3, 1, 2])
    assert b.participants == (1, 2, 3)


# -------------------------------------------------------------------------------- traces
def test_trace_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(src=0, dst=1, nbytes=-1)
    with pytest.raises(ValueError):
        TraceRecord(src=0, dst=1, nbytes=1, timestamp=-1)


def test_unordered_pair_canonical():
    assert unordered_pair(5, 2) == (2, 5) == unordered_pair(2, 5)


def test_trace_pair_totals_merge_directions():
    log = TraceLog([
        TraceRecord(0, 1, 100),
        TraceRecord(1, 0, 50),
        TraceRecord(0, 2, 10),
    ])
    totals = log.pair_totals()
    assert totals[(0, 1)] == (2, 150)
    assert totals[(0, 2)] == (1, 10)
    assert log.total_bytes == 160
    assert log.bytes_between(1, 0) == 150


def test_trace_communication_matrix():
    log = TraceLog([TraceRecord(0, 1, 100), TraceRecord(0, 1, 50), TraceRecord(2, 0, 7)])
    mat = log.communication_matrix()
    assert mat.shape == (3, 3)
    assert mat[0, 1] == 150
    assert mat[2, 0] == 7
    counts = log.message_count_matrix()
    assert counts[0, 1] == 2


def test_trace_round_trip_serialisation(tmp_path):
    log = TraceLog([TraceRecord(0, 1, 100, 1.5, 3), TraceRecord(1, 2, 7, 2.0, 0)], n_ranks=4)
    path = tmp_path / "trace.txt"
    log.save(path)
    loaded = TraceLog.load(path)
    assert len(loaded) == 2
    assert loaded.n_ranks == 4
    assert loaded.records[0] == log.records[0]


def test_trace_loads_rejects_malformed_line():
    with pytest.raises(ValueError):
        TraceLog.loads("0 1 100\n")


def test_trace_time_window():
    log = TraceLog([TraceRecord(0, 1, 10, t) for t in (0.0, 1.0, 2.0, 3.0)])
    window = log.time_window(1.0, 3.0)
    assert len(window) == 2
    with pytest.raises(ValueError):
        log.time_window(3.0, 1.0)


def test_tracer_records_only_app_messages():
    tracer = Tracer()
    app = Message(src=0, dst=1, nbytes=10)
    ctrl = Message(src=0, dst=1, nbytes=10, kind=MessageKind.CONTROL)
    tracer.on_send(app, 1.0)
    tracer.on_send(ctrl, 1.0)
    assert len(tracer.log) == 1


def test_tracer_max_records_cap():
    tracer = Tracer(max_records=2)
    for _ in range(5):
        tracer.on_send(Message(src=0, dst=1, nbytes=1), 0.0)
    assert len(tracer.log) == 2
    assert tracer.dropped_records == 3


def test_tracer_disable_enable_reset():
    tracer = Tracer()
    tracer.disable()
    tracer.on_send(Message(src=0, dst=1, nbytes=1), 0.0)
    assert len(tracer.log) == 0
    tracer.enable()
    tracer.on_send(Message(src=0, dst=1, nbytes=1), 0.0)
    assert len(tracer.log) == 1
    tracer.reset()
    assert len(tracer.log) == 0


# ---------------------------------------------------------------------------- collectives
@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 16])
def test_bcast_schedule_is_consistent(n):
    """Every non-root receives exactly once; sends match receives globally."""
    participants = list(range(n))
    sends, recvs = [], []
    for rank in participants:
        for action, peer, size in coll.bcast_schedule(rank, 0, participants, 100):
            (sends if action == "send" else recvs).append((rank, peer))
    # every non-root rank receives exactly once
    receivers = [r for r, _ in recvs]
    assert sorted(receivers) == [r for r in participants if r != 0]
    # each send has a matching receive
    assert sorted((dst, src) for src, dst in sends) == sorted(recvs)


@pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
def test_reduce_schedule_mirrors_bcast(n):
    participants = list(range(n))
    sends = []
    for rank in participants:
        for action, peer, _ in coll.reduce_schedule(rank, 0, participants, 10):
            if action == "send":
                sends.append((rank, peer))
    # every non-root sends exactly once in a reduction tree
    assert sorted(s for s, _ in sends) == [r for r in participants if r != 0]


@pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 9])
def test_allreduce_schedule_sends_match_recvs(n):
    participants = list(range(n))
    sends, recvs = [], []
    for rank in participants:
        for action, peer, _ in coll.allreduce_schedule(rank, participants, 8):
            (sends if action == "send" else recvs).append((rank, peer))
    assert sorted((dst, src) for src, dst in sends) == sorted(recvs)


def test_allreduce_single_rank_empty():
    assert coll.allreduce_schedule(0, [0], 8) == []


def test_allgather_ring_length():
    steps = coll.allgather_schedule(2, [0, 1, 2, 3], 100)
    assert coll.schedule_message_count(steps) == 3
    assert coll.schedule_byte_count(steps) == 300


def test_schedule_rejects_unknown_rank():
    with pytest.raises(ValueError):
        coll.bcast_schedule(9, 0, [0, 1, 2], 10)
    with pytest.raises(ValueError):
        coll.bcast_schedule(0, 9, [0, 1, 2], 10)


def test_schedule_rejects_duplicates_and_negative_sizes():
    with pytest.raises(ValueError):
        coll.barrier_schedule(0, [0, 0, 1])
    with pytest.raises(ValueError):
        coll.allgather_schedule(0, [0, 1], -1)


# -------------------------------------------------------------------------------- runtime
def make_runtime(n_ranks=4, tracer=None):
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(n_ranks))
    runtime = MpiRuntime(sim, cluster, n_ranks, rng=RandomStreams(0), tracer=tracer)
    return sim, runtime


def test_runtime_requires_positive_ranks():
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(2))
    with pytest.raises(ValueError):
        MpiRuntime(sim, cluster, 0)


def test_runtime_set_memory_variants():
    _, rt = make_runtime(3)
    rt.set_memory(100)
    assert [c.memory_bytes for c in rt.contexts] == [100, 100, 100]
    rt.set_memory([1, 2, 3])
    assert [c.memory_bytes for c in rt.contexts] == [1, 2, 3]
    rt.set_memory({1: 99})
    assert rt.ctx(1).memory_bytes == 99
    with pytest.raises(ValueError):
        rt.set_memory([1, 2])


def test_runtime_send_recv_roundtrip_updates_accounting():
    sim, rt = make_runtime(2)

    def prog(rank):
        if rank == 0:
            return [Send(dst=1, nbytes=1000, tag=5)]
        return [Recv(src=0, tag=5)]

    rt.launch(prog)
    result = rt.run_to_completion()
    assert result.makespan > 0
    assert rt.ctx(0).account.sent_to(1) == 1000
    assert rt.ctx(1).account.received_from(0) == 1000
    assert rt.ctx(1).stats.messages_received == 1
    assert len(result.deliveries) == 1


def test_runtime_sendrecv_pairwise_exchange():
    sim, rt = make_runtime(2)

    def prog(rank):
        other = 1 - rank
        return [SendRecv(dst=other, send_nbytes=500, src=other, tag=1)]

    rt.launch(prog)
    rt.run_to_completion()
    assert rt.ctx(0).account.received_from(1) == 500
    assert rt.ctx(1).account.received_from(0) == 500


def test_runtime_collective_ops_complete():
    sim, rt = make_runtime(5)

    def prog(rank):
        return [
            Bcast(root=0, nbytes=1000),
            Allreduce(nbytes=8),
            Reduce(root=2, nbytes=64),
            Barrier(),
        ]

    rt.launch(prog)
    result = rt.run_to_completion(limit_s=1000)
    assert result.makespan > 0
    # every rank executed all four operations
    assert all(ctx.stats.ops_executed == 4 for ctx in rt.contexts)


def test_runtime_compute_uses_node_speed_and_jitter_stream():
    sim, rt = make_runtime(1)

    def prog(rank):
        return [Compute(seconds=2.0, jitter=False)]

    rt.launch(prog)
    result = rt.run_to_completion()
    assert result.makespan == pytest.approx(2.0)


def test_runtime_tracer_sees_collective_point_to_point_messages():
    tracer = Tracer()
    sim, rt = make_runtime(4, tracer=tracer)

    def prog(rank):
        return [Bcast(root=0, nbytes=100)]

    rt.launch(prog)
    rt.run_to_completion()
    assert len(tracer.log) == 3  # binomial tree over 4 ranks = 3 sends


def test_runtime_launch_twice_rejected():
    sim, rt = make_runtime(2)
    rt.launch(lambda rank: [Compute(seconds=0.0)])
    with pytest.raises(RuntimeError):
        rt.launch(lambda rank: [Compute(seconds=0.0)])


def test_runtime_run_before_launch_rejected():
    sim, rt = make_runtime(2)
    with pytest.raises(RuntimeError):
        rt.run_to_completion()


def test_runtime_unsupported_op_type_fails():
    sim, rt = make_runtime(1)

    class Bogus:
        pass

    rt.launch(lambda rank: [Bogus()])
    with pytest.raises(TypeError):
        rt.run_to_completion()


def test_runtime_rank_out_of_range():
    sim, rt = make_runtime(2)
    with pytest.raises(ValueError):
        rt.ctx(5)


def test_runtime_result_reports_finish_times_and_running_ranks():
    sim, rt = make_runtime(2)

    def prog(rank):
        return [Compute(seconds=1.0 + rank, jitter=False)]

    rt.launch(prog)
    assert set(rt.running_ranks()) == {0, 1}
    result = rt.run_to_completion()
    assert rt.running_ranks() == ()
    finish = result.per_rank_finish_times()
    assert finish[1] > finish[0]


def test_runtime_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(control_message_bytes=-1)


@given(nbytes=st.integers(min_value=0, max_value=10_000_000))
@settings(max_examples=20, deadline=None)
def test_runtime_send_conserves_bytes(nbytes):
    sim, rt = make_runtime(2)

    def prog(rank):
        if rank == 0:
            return [Send(dst=1, nbytes=nbytes)]
        return [Recv(src=0)]

    rt.launch(prog)
    rt.run_to_completion()
    assert rt.ctx(0).account.sent_to(1) == rt.ctx(1).account.received_from(0) == nbytes
