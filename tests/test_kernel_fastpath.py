"""Unit tests for the kernel fast-path machinery.

Covers the immediate-resume queue (:meth:`Simulator.call_soon`, process
bootstrap without boot events), lazy event names, ``SimStats`` counters,
``fire_at`` absolute scheduling, ``Resource.acquire_nowait`` holds, lazy TX
holds on the network, and the signal-free receive gating of the runtime.
"""

import pytest

from repro.cluster.network import FAST_ETHERNET, Network
from repro.cluster.topology import Cluster, GIDEON_300
from repro.mpi.runtime import MpiRuntime
from repro.sim.engine import SimStats, Simulator
from repro.sim.primitives import Event, Resource, ResourceHold, Store
from repro.sim.rng import RandomStreams


# ------------------------------------------------------------- immediate queue
def test_call_soon_runs_before_next_calendar_event():
    sim = Simulator()
    order = []
    ev = sim.timeout(1.0, value="calendar")
    ev.callbacks.append(lambda e: order.append("calendar"))
    sim.call_soon(lambda _arg: order.append("soon"))
    sim.run()
    assert order == ["soon", "calendar"]


def test_call_soon_is_fifo_and_reentrant():
    sim = Simulator()
    order = []
    sim.call_soon(lambda _a: (order.append(1), sim.call_soon(lambda _b: order.append(3))))
    sim.call_soon(lambda _a: order.append(2))
    sim.run()
    assert order == [1, 2, 3]


def test_process_bootstrap_allocates_no_calendar_event():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    # two calendar events: the timeout and the process-completion event —
    # no boot event ever reaches the heap
    assert sim.processed_events == 2
    assert sim.stats.immediate_boots == 1


def test_immediate_resume_on_already_fired_event_counts():
    sim = Simulator()
    early = sim.timeout(0.5, value="x")

    def proc():
        yield sim.timeout(1.0)
        value = yield early  # processed long ago -> immediate resume
        return value

    assert sim.run_until_complete(sim.process(proc())) == "x"
    assert sim.stats.immediate_resumes == 1


def test_peek_reports_now_when_immediates_pending():
    sim = Simulator()
    sim.now = 3.0
    sim.call_soon(lambda _a: None)
    assert sim.peek() == 3.0
    sim.run()
    assert sim.peek() == float("inf")


def test_run_until_event_completes_and_respects_limit():
    sim = Simulator()
    ev = sim.timeout(5.0)
    assert sim.run_until_event(ev, limit=10.0) is True
    assert ev.processed and sim.now == 5.0

    sim2 = Simulator()
    ev2 = sim2.timeout(5.0)
    assert sim2.run_until_event(ev2, limit=1.0) is False
    assert not ev2.processed


def test_run_until_event_detects_deadlock():
    sim = Simulator()
    from repro.sim.engine import SimulationError

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_event(sim.event())


# ----------------------------------------------------------------- lazy names
def test_event_name_accepts_callable():
    sim = Simulator()
    calls = []

    def make_name():
        calls.append(1)
        return "lazy!"

    ev = Event(sim, name=make_name)
    assert not calls  # nothing resolved at construction
    assert ev.name == "lazy!"
    assert calls == [1]
    assert "lazy!" in repr(ev)


def test_event_without_name_has_empty_label():
    sim = Simulator()
    ev = Event(sim)
    assert ev.name == ""
    assert repr(ev).startswith("<Event")


def test_resource_request_name_is_lazy():
    sim = Simulator()
    res = Resource(sim, name="nic")
    req = res.request()
    assert req.name == "req:nic"


# -------------------------------------------------------------------- SimStats
def test_stats_counters_track_created_events():
    sim = Simulator()
    sim.timeout(1.0)
    sim.all_of([sim.timeout(2.0)])
    sim.run()
    stats = sim.stats.as_dict()
    assert stats["timeouts"] == 2
    assert stats["conditions"] == 1
    assert stats["heap_pushes"] >= 3
    assert set(SimStats.__slots__) == set(stats)


def test_fire_at_schedules_at_absolute_time():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    ev = sim.fire_at(2.5, value="abs")
    sim.run()
    assert ev.processed and ev.value == "abs"
    assert sim.now == 2.5


def test_fire_at_rejects_past_times():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.fire_at(0.5)


# ------------------------------------------------------------ acquire_nowait
def test_acquire_nowait_grants_free_slot_without_event():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    hold = res.acquire_nowait()
    assert isinstance(hold, ResourceHold)
    assert res.count == 1
    assert sim.processed_events == 0 and not sim._heap
    res.release(hold)
    assert res.count == 0


def test_acquire_nowait_refuses_busy_or_queued_resource():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    sim.run()
    assert first.processed
    assert res.acquire_nowait() is None  # busy
    queued = res.request()
    res.release(first)
    sim.run()
    assert queued.processed
    assert res.acquire_nowait() is None  # still held by the queued grant


def test_nowait_hold_queues_later_requests_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    hold = res.acquire_nowait()
    waiting = res.request()
    sim.run()
    assert not waiting.processed
    res.release(hold)
    sim.run()
    assert waiting.processed


# ------------------------------------------------------------ store wake-ups
def test_store_getter_wakes_through_immediate_queue():
    sim = Simulator()
    store = Store(sim)
    got = store.get()
    store.put("x")
    assert got.triggered and not got.processed
    sim.run()  # drains immediates even with an empty calendar
    assert got.processed and got.value == "x"
    assert sim.stats.store_wakeups == 1
    assert sim.processed_events == 0  # no calendar event was used


# ----------------------------------------------------------- network tx holds
def test_try_hold_tx_is_event_free_and_expires_lazily():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 2, fast_path=True)
    assert net.try_hold_tx(0, 1000)
    assert not sim._heap  # zero events scheduled
    # second hold while the first is live: refused (inflight + NIC busy)
    assert not net.try_hold_tx(0, 1000)
    # after the hold's end time has passed, the next check expires it
    sim.now = 1.0
    assert net.try_hold_tx(0, 1000)


def test_live_tx_hold_materialises_for_coroutine_contender():
    sim = Simulator()
    net = Network(sim, FAST_ETHERNET, 2, fast_path=True)
    assert net.try_hold_tx(0, 115_000)  # holds TX NIC for overhead + 10ms
    hold_end = (0.0 + FAST_ETHERNET.per_message_overhead_s) + 115_000 / 11.5e6
    done = []

    def contender():
        yield from net.tx(0, 115_000)
        done.append(sim.now)

    sim.process(contender())
    sim.run()
    # the contender queued until exactly the hold's end, then transferred
    expected = (hold_end + 115_000 / 11.5e6)
    assert done[0] == pytest.approx(expected, rel=1e-12)


def test_fabric_disables_tx_fast_path():
    from dataclasses import replace

    sim = Simulator()
    spec = replace(FAST_ETHERNET, switch_capacity=2)
    net = Network(sim, spec, 2, fast_path=True)
    assert net.try_reserve_tx(0, 1000) is None
    assert not net.try_hold_tx(0, 1000)


# ----------------------------------------------------- runtime signal gating
def test_runtime_without_coordinator_skips_signal_conditions():
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(4))
    runtime = MpiRuntime(sim, cluster, 2, rng=RandomStreams(0))
    assert runtime.checkpoints_enabled is False

    from repro.mpi.ops import Recv, Send

    def program(rank):
        if rank == 0:
            return [Send(dst=1, nbytes=1000)]
        return [Recv(src=0)]

    runtime.launch(program)
    runtime.run_to_completion(limit_s=10.0)
    # the blocked receive waited on the bare inbox event — the only condition
    # is run_to_completion's own AllOf over the rank processes
    assert sim.stats.conditions == 1


def test_attach_checkpoint_source_flags_runtime():
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(4))
    runtime = MpiRuntime(sim, cluster, 2, rng=RandomStreams(0))
    runtime.attach_checkpoint_source()
    assert runtime.checkpoints_enabled is True
