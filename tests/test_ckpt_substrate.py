"""Tests for the checkpoint substrates: config, records, BLCR, sender log, schedules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ckpt.base import (
    STAGE_CHECKPOINT,
    STAGES,
    CheckpointRecord,
    CheckpointRequest,
    ProtocolConfig,
    RestartRecord,
)
from repro.ckpt.blcr import BlcrModel
from repro.ckpt.logstore import LogEntry, SenderLog
from repro.ckpt.scheduler import (
    CheckpointSchedule,
    no_checkpoints,
    one_shot,
    periodic,
    schedule_from_intervals,
)
from repro.cluster.storage import LocalDiskArray
from repro.sim.engine import Simulator


# ------------------------------------------------------------------------------- config
def test_protocol_config_defaults_valid():
    cfg = ProtocolConfig()
    assert cfg.lock_mpi_s >= 0
    assert 0 <= cfg.channel_stall_probability <= 1


def test_protocol_config_validation():
    with pytest.raises(ValueError):
        ProtocolConfig(lock_mpi_s=-1)
    with pytest.raises(ValueError):
        ProtocolConfig(channel_stall_probability=1.5)
    with pytest.raises(ValueError):
        ProtocolConfig(log_copy_bandwidth=0)
    with pytest.raises(ValueError):
        ProtocolConfig(replay_batch_bytes=0)


def test_protocol_config_with_overrides():
    cfg = ProtocolConfig().with_overrides(lock_mpi_s=0.5)
    assert cfg.lock_mpi_s == 0.5
    assert cfg.finalize_s == ProtocolConfig().finalize_s


# ------------------------------------------------------------------------------ records
def test_checkpoint_request_validation():
    with pytest.raises(ValueError):
        CheckpointRequest(ckpt_id=-1, group_id=0, participants=(0,), issued_at=0.0)
    with pytest.raises(ValueError):
        CheckpointRequest(ckpt_id=0, group_id=0, participants=(), issued_at=0.0)
    with pytest.raises(ValueError):
        CheckpointRequest(ckpt_id=0, group_id=0, participants=(0,), issued_at=0.0, stagger_s=-1)


def test_checkpoint_record_durations_and_stage_access():
    rec = CheckpointRecord(
        rank=0, ckpt_id=0, group_id=0, start=10.0, end=16.0,
        stages={STAGE_CHECKPOINT: 2.0, "coordination": 3.0},
    )
    assert rec.duration == pytest.approx(6.0)
    assert rec.coordination_time == pytest.approx(4.0)
    assert rec.stage("coordination") == 3.0
    assert rec.stage("unknown") == 0.0


def test_checkpoint_record_end_before_start_rejected():
    with pytest.raises(ValueError):
        CheckpointRecord(rank=0, ckpt_id=0, group_id=0, start=5.0, end=4.0)


def test_restart_record_duration():
    rec = RestartRecord(rank=0, start=1.0, end=4.0)
    assert rec.duration == 3.0
    with pytest.raises(ValueError):
        RestartRecord(rank=0, start=4.0, end=1.0)


def test_stage_names_order_matches_paper():
    assert STAGES == ("lock_mpi", "coordination", "checkpoint", "finalize")


# --------------------------------------------------------------------------------- BLCR
def test_blcr_image_size_adds_runtime_overhead():
    blcr = BlcrModel(runtime_overhead_bytes=10)
    assert blcr.image_bytes(90) == 100
    with pytest.raises(ValueError):
        blcr.image_bytes(-1)


def test_blcr_validation():
    with pytest.raises(ValueError):
        BlcrModel(runtime_overhead_bytes=-1)
    with pytest.raises(ValueError):
        BlcrModel(dump_fork_s=-1)


def test_blcr_dump_and_restore_take_io_time():
    sim = Simulator()
    disks = LocalDiskArray(sim, 1)
    blcr = BlcrModel(runtime_overhead_bytes=0, dump_fork_s=0.1, restore_exec_s=0.2)
    app_bytes = 35_000_000  # exactly one second of write at 35 MB/s

    def proc():
        dump_time = yield from blcr.dump(sim, disks, 0, app_bytes)
        restore_time = yield from blcr.restore(sim, disks, 0, app_bytes)
        return dump_time, restore_time

    dump_time, restore_time = sim.run_until_complete(sim.process(proc()))
    assert dump_time > 1.0
    assert restore_time > 0.2
    assert disks.written_bytes == app_bytes
    assert disks.read_bytes == app_bytes


# --------------------------------------------------------------------------- sender log
def test_log_entry_validation():
    with pytest.raises(ValueError):
        LogEntry(dst=-1, nbytes=1, end_offset=1, timestamp=0.0)
    with pytest.raises(ValueError):
        LogEntry(dst=0, nbytes=10, end_offset=5, timestamp=0.0)


def test_sender_log_append_and_totals():
    log = SenderLog(0)
    log.append(1, 100, 100, 0.0)
    log.append(1, 50, 150, 1.0)
    log.append(2, 10, 10, 2.0)
    assert log.retained_bytes == 160
    assert log.bytes_for(1) == 150
    assert log.messages_for(1) == 2
    assert sorted(log.destinations()) == [1, 2]
    assert len(log) == 3
    assert log.total_logged_messages == 3


def test_sender_log_flush_tracks_unflushed_tail():
    log = SenderLog(0)
    log.append(1, 100, 100, 0.0)
    assert log.unflushed_bytes == 100
    assert log.mark_flushed() == 100
    assert log.unflushed_bytes == 0
    log.append(1, 30, 130, 1.0)
    assert log.unflushed_bytes == 30


def test_sender_log_garbage_collect_by_offset():
    log = SenderLog(0)
    log.append(1, 100, 100, 0.0)
    log.append(1, 100, 200, 1.0)
    log.append(1, 100, 300, 2.0)
    discarded = log.garbage_collect(1, acknowledged_offset=200)
    assert discarded == 200
    assert log.bytes_for(1) == 100
    assert log.gc_bytes == 200
    # a second GC with the same offset discards nothing
    assert log.garbage_collect(1, 200) == 0
    with pytest.raises(ValueError):
        log.garbage_collect(1, -5)


def test_sender_log_replay_plan_selects_unreceived_suffix():
    log = SenderLog(0)
    for i in range(4):
        log.append(1, 100, (i + 1) * 100, float(i))
    plan = log.replay_plan(1, receiver_rr=250)
    assert [e.end_offset for e in plan] == [300, 400]
    assert log.replay_plan(1, receiver_rr=400) == []
    with pytest.raises(ValueError):
        log.replay_plan(1, -1)


def test_sender_log_clear():
    log = SenderLog(0)
    log.append(1, 100, 100, 0.0)
    log.clear()
    assert log.retained_bytes == 0
    assert log.unflushed_bytes == 0


@given(sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_sender_log_gc_plus_retained_equals_total(sizes):
    """Invariant: bytes discarded by GC plus bytes retained equals bytes logged."""
    log = SenderLog(0)
    offset = 0
    for i, size in enumerate(sizes):
        offset += size
        log.append(1, size, offset, float(i))
    ack = offset // 2
    log.garbage_collect(1, ack)
    assert log.gc_bytes + log.retained_bytes == sum(sizes)
    # retained entries are exactly those ending beyond the acknowledged offset
    assert all(e.end_offset > ack for e in log.entries_for(1))


# -------------------------------------------------------------------------------- schedules
def test_one_shot_schedule():
    sched = one_shot(60.0)
    assert sched.request_times(100.0) == [60.0]
    assert sched.request_times(30.0) == []
    with pytest.raises(ValueError):
        one_shot(-1.0)


def test_periodic_schedule_request_times():
    sched = periodic(30.0)
    assert sched.request_times(100.0) == [30.0, 60.0, 90.0]
    assert periodic(30.0, first_at=10.0).request_times(50.0) == [10.0, 40.0]
    assert periodic(30.0, max_checkpoints=2).request_times(1000.0) == [30.0, 60.0]


def test_periodic_schedule_iterator_is_lazy_and_unbounded():
    it = periodic(10.0).iterate()
    assert [next(it) for _ in range(4)] == [10.0, 20.0, 30.0, 40.0]


def test_no_checkpoints_schedule_empty():
    assert no_checkpoints().request_times(1000.0) == []
    assert list(no_checkpoints().iterate()) == []


def test_schedule_validation():
    with pytest.raises(ValueError):
        CheckpointSchedule(times=(-1.0,))
    with pytest.raises(ValueError):
        CheckpointSchedule(interval_s=0.0)
    with pytest.raises(ValueError):
        periodic(10.0).request_times(-5.0)


def test_schedule_from_intervals_maps_zero_to_none():
    schedules = schedule_from_intervals([0.0, 60.0])
    assert not schedules[0].is_periodic and schedules[0].request_times(1e4) == []
    assert schedules[1].is_periodic
    with pytest.raises(ValueError):
        schedule_from_intervals([-1.0])


def test_explicit_times_combined_with_periodic():
    sched = CheckpointSchedule(times=(5.0,), interval_s=50.0)
    assert sched.request_times(120.0) == [5.0, 50.0, 100.0]


def test_log_entries_preserve_message_tags():
    log = SenderLog(0)
    log.append(dst=1, nbytes=10, end_offset=10, timestamp=0.0, tag=7)
    log.append(dst=1, nbytes=10, end_offset=20, timestamp=1.0)
    tags = [e.tag for e in log.entries_for(1)]
    assert tags == [7, 0]


def test_log_rollback_to_checkpoint_offsets():
    log = SenderLog(0)
    for i in range(1, 5):
        log.append(dst=1, nbytes=10, end_offset=10 * i, timestamp=float(i), tag=i)
    log.append(dst=2, nbytes=5, end_offset=5, timestamp=0.5)
    log.mark_flushed()
    log.append(dst=1, nbytes=10, end_offset=50, timestamp=9.0)

    # checkpoint had seen 20 bytes to rank 1 and nothing to rank 2
    discarded = log.rollback_to({1: 20})
    assert discarded == 10 * 3 + 5  # entries 30..50 to rank 1, all of rank 2
    assert [e.end_offset for e in log.entries_for(1)] == [10, 20]
    assert log.entries_for(2) == []
    assert log.unflushed_bytes == 0
    # re-execution re-appends the discarded range at the same offsets
    log.append(dst=1, nbytes=10, end_offset=30, timestamp=10.0, tag=3)
    assert log.replay_plan(1, receiver_rr=10) == log.entries_for(1)[1:]
