"""End-to-end tests of the paper's headline claims at reduced (test) scale.

Each test states the claim from the paper it checks.  These are the
"shape" checks — orderings and trends, not absolute seconds.
"""

import pytest

from repro.ckpt import one_shot
from repro.ckpt.base import ProtocolConfig
from repro.ckpt.presets import gp1_family, gp_family, norm_family
from repro.cluster.topology import GIDEON_300, Cluster
from repro.core import CheckpointCoordinator, form_groups, simulate_restart
from repro.core.groups import GroupSet
from repro.experiments.config import QUICK
from repro.experiments.runner import obtain_trace, run_scenario
from repro.experiments.config import ScenarioConfig
from repro.mpi.runtime import MpiRuntime
from repro.mpi.tracer import Tracer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.hpl import HplParameters, HplWorkload

QUIET = ProtocolConfig(channel_stall_probability=0.0, unexpected_delay_probability=0.0)
HPL_OPTS = {"problem_size": 6000, "block_size": 200, "max_steps": 12}


def hpl_scenario(n, method, ckpt_at=2.0, seed=3):
    return ScenarioConfig(
        workload="hpl", n_ranks=n, method=method, schedule=one_shot(ckpt_at),
        workload_options=dict(HPL_OPTS), max_group_size=8, seed=seed,
    )


@pytest.fixture(scope="module")
def hpl32():
    """Shared HPL-32 runs for all four grouping methods."""
    return {m: run_scenario(hpl_scenario(32, m)) for m in ("GP", "GP1", "GP4", "NORM")}


def test_claim_group_formation_matches_process_grid():
    """Section 5.1 / Table 1: trace analysis groups each process column together."""
    trace = obtain_trace("hpl", 32, GIDEON_300, HPL_OPTS)
    groupset = form_groups(trace, max_group_size=8, n_ranks=32).groupset
    expected = {tuple(range(c, 32, 4)) for c in range(4)}
    assert set(groupset.groups) == expected


def test_claim_group_checkpoint_cheaper_than_global(hpl32):
    """Figure 6a: GP's summed checkpoint time is well below NORM's."""
    assert hpl32["GP"].aggregate_checkpoint_time < hpl32["NORM"].aggregate_checkpoint_time
    # the paper reports >80% reduction at full scale; at test scale demand >30%
    assert (
        hpl32["GP"].aggregate_checkpoint_time
        < 0.7 * hpl32["NORM"].aggregate_checkpoint_time
    )


def test_claim_uncoordinated_checkpoint_is_cheapest(hpl32):
    """Figure 6a: GP1 (no coordination at all) has the lowest checkpoint cost."""
    for other in ("GP", "GP4", "NORM"):
        assert hpl32["GP1"].aggregate_checkpoint_time <= hpl32[other].aggregate_checkpoint_time


def test_claim_even_adhoc_grouping_beats_global(hpl32):
    """Section 5.1: even the ad-hoc GP4 grouping checkpoints faster than NORM."""
    assert hpl32["GP4"].aggregate_checkpoint_time < hpl32["NORM"].aggregate_checkpoint_time


def test_claim_global_restart_needs_no_replay(hpl32):
    """Figure 7: globally coordinated checkpoints never resend messages on restart."""
    assert hpl32["NORM"].resend_bytes == 0
    assert hpl32["NORM"].resend_operations == 0


def test_claim_gp1_resends_at_least_as_much_as_gp(hpl32):
    """Figures 7/8: uncoordinated checkpointing resends the most data on restart."""
    assert hpl32["GP1"].resend_bytes >= hpl32["GP"].resend_bytes
    assert hpl32["GP1"].resend_operations >= hpl32["GP"].resend_operations


def test_claim_gp_restart_close_to_norm(hpl32):
    """Figure 6b: GP restarts only slightly slower than NORM (small replays only)."""
    assert hpl32["GP"].aggregate_restart_time <= 1.25 * hpl32["NORM"].aggregate_restart_time


def test_claim_execution_time_with_checkpoint_competitive(hpl32):
    """Figure 5: with one checkpoint, GP's end-to-end time is at least competitive with NORM."""
    assert hpl32["GP"].makespan <= hpl32["NORM"].makespan * 1.05


def test_claim_coordination_cost_grows_with_system_size():
    """Figure 1: NORM's aggregate coordination time grows with the process count."""
    small = run_scenario(hpl_scenario(16, "NORM"))
    large = run_scenario(hpl_scenario(32, "NORM"))
    assert large.aggregate_coordination_time > small.aggregate_coordination_time


def test_claim_group_checkpoint_time_roughly_scale_independent():
    """Section 5.1: GP spends almost the same *per-process* checkpoint time as it scales."""
    small = run_scenario(hpl_scenario(16, "GP"))
    large = run_scenario(hpl_scenario(32, "GP"))
    per_proc_small = small.aggregate_checkpoint_time / 16
    per_proc_large = large.aggregate_checkpoint_time / 32
    assert per_proc_large < per_proc_small * 2.0
    # whereas NORM's per-process cost grows faster
    norm_small = run_scenario(hpl_scenario(16, "NORM"))
    norm_large = run_scenario(hpl_scenario(32, "NORM"))
    growth_norm = (norm_large.aggregate_checkpoint_time / 32) / (
        norm_small.aggregate_checkpoint_time / 16
    )
    growth_gp = per_proc_large / per_proc_small
    assert growth_norm > growth_gp


def test_claim_logging_overhead_without_checkpoints():
    """Figure 10, interval 0: with no checkpoints the group-based scheme is the slower one
    (message logging overhead), which is the price paid for cheaper checkpoints."""
    gp = run_scenario(
        ScenarioConfig(workload="hpl", n_ranks=16, method="GP1", schedule=None,
                       workload_options=dict(HPL_OPTS), do_restart=False, seed=3)
    )
    norm = run_scenario(
        ScenarioConfig(workload="hpl", n_ranks=16, method="NORM", schedule=None,
                       workload_options=dict(HPL_OPTS), do_restart=False, seed=3)
    )
    assert gp.makespan >= norm.makespan


def test_claim_flexible_group_choice_is_user_controllable():
    """Section 6: unlike architecture-fixed schemes, any group formation can be supplied."""
    n = 16
    custom = GroupSet.from_lists([[0, 5, 10, 15], [1, 2, 3, 4]], n_ranks=n)
    family = gp_family(custom, QUIET)
    workload = HplWorkload(n, HplParameters(**HPL_OPTS))
    sim = Simulator()
    cluster = Cluster(sim, GIDEON_300.with_nodes(n))
    runtime = MpiRuntime(sim, cluster, n, protocol_family=family, rng=RandomStreams(0))
    runtime.set_memory(workload.memory_map())
    CheckpointCoordinator(runtime, family, one_shot(2.0)).start()
    runtime.launch(workload.program_factory())
    result = runtime.run_to_completion(limit_s=1e6)
    sizes = {rec.group_size for rec in result.checkpoint_records}
    assert 4 in sizes and 1 in sizes  # custom groups and implicit singletons both checkpointed
