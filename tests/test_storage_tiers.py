"""Tests for the multi-level checkpoint-storage hierarchy.

Covers: the :class:`~repro.storage.policy.StoragePolicy` and its FTI-style
level scheduling, topology-aware partner placement, the legacy single-tier
delegation (byte-identical to the pre-hierarchy model, locked against the
parity goldens), the :class:`~repro.cluster.failure.SwitchOutageFailureModel`
(seeded determinism, victim set = switch membership), end-to-end correlated
failure survival (unsurvivable with same-switch partners, recovers from
cross-switch L2 and from L3 with exactly-once channel accounting), the
recovery-aware checkpoint coordinator, the campaign serialisation of the new
config fields, the payload v5 metrics, and the advisor's multi-level
interval suggestion.
"""

import dataclasses
import json
import os

import pytest

from repro.analysis.advisor import suggest_multilevel_intervals
from repro.campaign.results import PAYLOAD_VERSION, metrics_payload, StoredResult
from repro.campaign.store import config_from_dict, config_to_dict, scenario_key
from repro.ckpt.scheduler import one_shot, periodic, tier_levels
from repro.cluster.failure import FailureEvent, SwitchOutageFailureModel
from repro.cluster.topology import GIDEON_300, Cluster, ClusterSpec
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.experiments.parity import parity_metrics, quick_parity_configs, scenario_label
from repro.experiments.runner import run_scenario
from repro.experiments.storage_tiers import (
    DEFAULT_WORKLOAD_OPTIONS,
    policy_label,
    storage_tier_configs,
    storage_tier_experiment,
    survivability_matrix,
    tier_cost_calibration,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.storage.policy import (
    PARTNER_SAME_SWITCH,
    StoragePolicy,
    full_hierarchy,
    local_only,
    partner_replicated,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "quick_parity_golden.json")


def _channel_totals(app):
    out = {}
    for ctx in app.contexts:
        for peer in ctx.account.peers():
            out[(ctx.rank, peer, "S")] = ctx.account.sent_to(peer)
            out[(ctx.rank, peer, "Sm")] = ctx.account.messages_sent_to(peer)
            out[(ctx.rank, peer, "R")] = ctx.account.received_from(peer)
            out[(ctx.rank, peer, "Rm")] = ctx.account.messages_received_from(peer)
    return out


# ------------------------------------------------------------------ policy unit
class TestStoragePolicy:
    def test_defaults_are_l1_only(self):
        policy = StoragePolicy()
        assert policy.levels == ("L1",)
        assert policy.uses_l1 and not policy.uses_l2 and not policy.uses_l3

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            StoragePolicy(levels=("L1", "L9"))

    def test_rejects_async_only_hierarchy(self):
        with pytest.raises(ValueError):
            StoragePolicy(levels=("L2",))

    def test_rejects_duplicate_levels(self):
        with pytest.raises(ValueError):
            StoragePolicy(levels=("L1", "L1"))

    def test_rejects_bad_promotion_intervals(self):
        with pytest.raises(ValueError):
            StoragePolicy(levels=("L1", "L2"), l2_every=0)

    def test_describe_names_placement_and_intervals(self):
        text = full_hierarchy(l2_every=2, l3_every=4).describe()
        assert "L1" in text and "cross_switch/2" in text and "L3/4" in text


class TestTierLevels:
    def test_every_checkpoint_hits_all_levels_by_default(self):
        policy = full_hierarchy()
        assert tier_levels(policy, 0) == ("L1", "L2", "L3")
        assert tier_levels(policy, 7) == ("L1", "L2", "L3")

    def test_promotion_intervals_select_waves(self):
        policy = full_hierarchy(l2_every=2, l3_every=4)
        assert tier_levels(policy, 0) == ("L1",)
        assert tier_levels(policy, 1) == ("L1", "L2")
        assert tier_levels(policy, 3) == ("L1", "L2", "L3")

    def test_l3_only_policy_always_has_a_sync_home(self):
        policy = StoragePolicy(levels=("L3",), l3_every=3)
        # waves not due for L3 still land on it: an image with no durable
        # copy could never be restarted from
        assert tier_levels(policy, 0) == ("L3",)
        assert tier_levels(policy, 2) == ("L3",)


# ------------------------------------------------------------- partner placement
class TestPartnerPlacement:
    def _hierarchy(self, n_nodes, nodes_per_switch, policy):
        spec = dataclasses.replace(GIDEON_300, n_nodes=n_nodes,
                                   nodes_per_switch=nodes_per_switch,
                                   storage_policy=policy)
        return Cluster(Simulator(), spec).hierarchy

    def test_cross_switch_partner_is_on_another_switch(self):
        h = self._hierarchy(12, 4, partner_replicated())
        for node in range(12):
            partner = h.partner_of(node)
            assert partner is not None
            assert not h.topology.same_switch(node, partner), (node, partner)

    def test_same_switch_partner_stays_in_rack(self):
        h = self._hierarchy(12, 4, partner_replicated(placement=PARTNER_SAME_SWITCH))
        for node in range(12):
            partner = h.partner_of(node)
            assert partner is not None and partner != node
            assert h.topology.same_switch(node, partner), (node, partner)

    def test_single_switch_cluster_degrades_to_ring(self):
        h = self._hierarchy(4, 32, partner_replicated())
        assert [h.partner_of(n) for n in range(4)] == [1, 2, 3, 0]

    def test_uneven_last_switch_wraps_offsets(self):
        h = self._hierarchy(6, 4, partner_replicated())  # switches {0..3}, {4,5}
        for node in range(6):
            partner = h.partner_of(node)
            assert partner is not None
            assert not h.topology.same_switch(node, partner)


# ------------------------------------------------- legacy delegation (satellite)
class TestLegacyTierApiParity:
    def test_legacy_write_read_delegate_to_base_storage(self):
        """hierarchy.write/read must cost exactly what the raw storage costs."""
        def elapsed(use_hierarchy):
            sim = Simulator()
            cluster = Cluster(sim, GIDEON_300.with_nodes(4).with_remote_checkpointing(2))
            target = cluster.hierarchy if use_hierarchy else cluster.checkpoint_storage

            times = {}

            def driver():
                t = yield from target.write(1, 10 * 1024 * 1024)
                times["write"] = t
                t = yield from target.read(1, 10 * 1024 * 1024)
                times["read"] = t

            sim.process(driver())
            sim.run()
            return times, sim.now

        assert elapsed(True) == elapsed(False)

    def test_remote_storage_golden_parity_through_tier_api(self):
        """The Figure-13-style remote config reproduces its golden bit-for-bit.

        All storage traffic now routes through the hierarchy's tier API; this
        locks the legacy remote path (and with it Figure 13's benchmark)
        against the pre-hierarchy golden metrics.
        """
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        config = next(c for c in quick_parity_configs()
                      if c.cluster.checkpoint_storage == "remote")
        label = scenario_label(config)
        result = run_scenario(config)
        assert parity_metrics(result) == golden[label]["metrics"]

    def test_legacy_runs_report_base_tier_bytes(self):
        config = ScenarioConfig("ring", 8, "GP", one_shot(0.3), seed=3)
        result = run_scenario(config)
        written = result.tier_bytes_written
        assert written["L1"] > 0 and written["L2"] == 0 and written["L3"] == 0
        assert result.partner_copies == 0


# --------------------------------------------------------- switch-outage model
class TestSwitchOutageModel:
    def test_deterministic_outage_kills_exactly_the_switch(self):
        model = SwitchOutageFailureModel(at_s=10.0, switch=1, nodes_per_switch=4)
        events = model.failures(horizon=100.0, n_nodes=12)
        assert {e.node for e in events} == {4, 5, 6, 7}
        assert all(e.time == 10.0 for e in events)
        assert all(e.cause == "switch-outage" for e in events)
        assert all(e.destroys_disk for e in events)

    def test_outage_beyond_horizon_or_switch_range_is_empty(self):
        model = SwitchOutageFailureModel(at_s=200.0, switch=0, nodes_per_switch=4)
        assert model.failures(horizon=100.0, n_nodes=12) == []
        model = SwitchOutageFailureModel(at_s=10.0, switch=9, nodes_per_switch=4)
        assert model.failures(horizon=100.0, n_nodes=12) == []

    def test_disk_sparing_outage(self):
        model = SwitchOutageFailureModel(at_s=5.0, switch=0, nodes_per_switch=2,
                                         destroy_disks=False)
        assert all(not e.destroys_disk for e in model.failures(10.0, 4))

    def test_poisson_outages_are_seed_deterministic(self):
        def outages(seed):
            model = SwitchOutageFailureModel(
                rate_per_switch_s=0.01, nodes_per_switch=4,
                rng=RandomStreams(seed), max_outages=5)
            return model.outages(horizon=1000.0, n_nodes=16)

        assert outages(7) == outages(7)
        assert outages(7) != outages(8)

    def test_poisson_victims_cover_whole_switches(self):
        model = SwitchOutageFailureModel(
            rate_per_switch_s=0.01, nodes_per_switch=4,
            rng=RandomStreams(1), max_outages=3)
        events = model.failures(horizon=1000.0, n_nodes=16)
        by_time = {}
        for e in events:
            by_time.setdefault(e.time, set()).add(e.node)
        topo_switch = lambda node: node // 4
        for victims in by_time.values():
            switches = {topo_switch(v) for v in victims}
            assert len(switches) == 1
            assert victims == set(range(min(victims), min(victims) + 4))

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            SwitchOutageFailureModel()
        with pytest.raises(ValueError):
            SwitchOutageFailureModel(at_s=1.0, rate_per_switch_s=0.1)


# --------------------------------------------------- failure-spec serialisation
class TestConfigSerialisation:
    def test_switch_outage_spec_requires_one_mode(self):
        with pytest.raises(ValueError):
            FailureSpec(at_s=1.0, switch_outage_at_s=2.0)
        with pytest.raises(ValueError):
            FailureSpec()

    def test_pre_hierarchy_keys_are_stable(self):
        config = ScenarioConfig("halo2d", 8, "GP1", periodic(4.0),
                                failure=FailureSpec(at_s=2.0))
        data = config_to_dict(config)
        assert "storage_policy" not in data["cluster"]
        assert "switch_outage_at_s" not in data["failure"]
        assert "outage_switch" not in data["failure"]

    def test_policy_and_outage_round_trip(self):
        cluster = dataclasses.replace(
            GIDEON_300, n_nodes=12, nodes_per_switch=4,
            storage_policy=full_hierarchy(l2_every=2, l3_every=4))
        config = ScenarioConfig(
            "halo2d", 8, "GP1", periodic(4.0), cluster=cluster,
            failure=FailureSpec(switch_outage_at_s=6.0, outage_switch=1))
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert scenario_key(rebuilt) == scenario_key(config)

    def test_policy_changes_the_key(self):
        base = ScenarioConfig("halo2d", 8, "GP1", periodic(4.0))
        tiered = dataclasses.replace(
            base, cluster=base.cluster.with_storage_policy(partner_replicated()))
        assert scenario_key(base) != scenario_key(tiered)


# --------------------------------------------------------------- e2e survival
def _tier_config(policy, kind, method="GP1", n_spares=2):
    cluster = dataclasses.replace(
        GIDEON_300, n_nodes=16 + n_spares, nodes_per_switch=4,
        storage_policy=policy, name="storage-tiers")
    failure = None
    if kind == "node-crash":
        failure = FailureSpec(at_s=12.0, victim_rank=0, n_spares=n_spares,
                              reboot_delay_s=5.0)
    elif kind == "switch-outage":
        failure = FailureSpec(switch_outage_at_s=12.0, outage_switch=0,
                              n_spares=n_spares, reboot_delay_s=5.0)
    return ScenarioConfig(
        workload="halo2d", n_ranks=16, method=method, schedule=periodic(2.0),
        cluster=cluster, seed=0,
        workload_options=dict(DEFAULT_WORKLOAD_OPTIONS),
        max_group_size=8, do_restart=False, failure=failure)


class TestCorrelatedFailureSurvival:
    @pytest.fixture(scope="class")
    def outage_runs(self):
        return {
            "L1": run_scenario(_tier_config(local_only(), "switch-outage")),
            "L2same": run_scenario(_tier_config(
                partner_replicated(placement=PARTNER_SAME_SWITCH), "switch-outage")),
            "L2cross": run_scenario(_tier_config(partner_replicated(), "switch-outage")),
            "L3": run_scenario(_tier_config(full_hierarchy(), "switch-outage")),
            "baseline": run_scenario(_tier_config(partner_replicated(), "none")),
        }

    def test_outage_unsurvivable_without_offsite_copies(self, outage_runs):
        result = outage_runs["L1"]
        assert not result.survived
        assert "no surviving copy" in result.abort_reason
        # the run terminated at the abort instead of deadlocking
        assert result.makespan == pytest.approx(12.25)
        (report,) = result.recovery_reports
        assert report.unsurvivable and report.cause == "switch-outage"

    def test_outage_unsurvivable_with_same_switch_partners(self, outage_runs):
        result = outage_runs["L2same"]
        assert not result.survived
        assert result.partner_copies > 0  # replicas existed — on the dead switch

    def test_outage_recovers_from_cross_switch_partners(self, outage_runs):
        result = outage_runs["L2cross"]
        assert result.survived
        assert result.outages_survived == 1
        tiers = {}
        for report in result.recovery_reports:
            assert not report.unsurvivable
            tiers.update(report.restore_tiers)
        # every victim rank was restored from its partner replica
        assert {tiers[rank] for rank in (0, 1, 2, 3)} == {"L2"}
        assert result.tier_bytes_read["L2"] > 0

    def test_outage_recovers_from_l3(self, outage_runs):
        result = outage_runs["L3"]
        assert result.survived
        assert result.outages_survived == 1
        tiers = {}
        for report in result.recovery_reports:
            tiers.update(report.restore_tiers)
        assert all(tiers[rank] in ("L2", "L3") for rank in (0, 1, 2, 3))
        assert result.tier_bytes_read["L3"] > 0 or result.tier_bytes_read["L2"] > 0

    def test_recovered_run_keeps_exactly_once_channels(self, outage_runs):
        base = outage_runs["baseline"]
        for key in ("L2cross", "L3"):
            recovered = outage_runs[key]
            assert _channel_totals(recovered.app) == _channel_totals(base.app), key

    def test_recovery_reports_are_measured(self, outage_runs):
        result = outage_runs["L2cross"]
        assert result.failures_injected >= 1
        assert result.measured_recovery_time_s > 0
        assert result.measured_lost_work_s > 0

    def test_outage_recovery_is_fastpath_bit_deterministic(self, monkeypatch):
        def metrics():
            result = run_scenario(_tier_config(partner_replicated(), "switch-outage"))
            return (
                result.makespan,
                result.checkpoints_completed,
                result.tier_bytes_written,
                result.tier_bytes_read,
                result.partner_copies,
                [(r.failure_time, r.rollback_ranks, r.target_ckpt_id,
                  dict(r.restore_tiers), r.completed_at)
                 for r in result.recovery_reports],
            )

        monkeypatch.setenv("REPRO_SIM_FASTPATH", "1")
        fast = metrics()
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        slow = metrics()
        assert fast == slow
        assert fast[5], "the outage must have injected a recovery"

    def test_node_crash_survives_on_l1_via_inplace_reboot(self):
        result = run_scenario(_tier_config(local_only(), "node-crash"))
        assert result.survived
        tiers = {}
        for report in result.recovery_reports:
            tiers.update(report.restore_tiers)
        assert tiers[0] == "L1"
        assert sum(r.inplace_reboots for r in result.recovery_reports) >= 1


# ---------------------------------------------- recovery-aware coordinator tick
class TestRecoveryAwareScheduling:
    def test_healthy_groups_checkpoint_while_one_recovers(self):
        result = run_scenario(_tier_config(partner_replicated(), "node-crash",
                                           method="GP4"))
        assert result.survived
        # the victim's group missed at least one tick mid-recovery, and the
        # coordinator kept issuing waves to the other groups meanwhile
        assert result.skipped_in_recovery >= 1
        assert result.checkpoints_completed >= 2


# ------------------------------------------------------------ payload & results
class TestPayloadV5:
    def test_payload_carries_tier_metrics(self):
        result = run_scenario(_tier_config(partner_replicated(), "none"))
        payload = metrics_payload(result)
        # v6 added the telemetry phase_times/registry_metrics entries
        assert payload["version"] == PAYLOAD_VERSION == 8
        assert payload["survived"] == 1
        assert payload["tier_bytes_written"]["L2"] > 0
        assert payload["partner_copies"] > 0
        stored = StoredResult(result.config, payload)
        assert stored.survived
        assert stored.tier_bytes_written == result.tier_bytes_written
        assert stored.partner_copies == result.partner_copies
        assert stored.outages_survived == result.outages_survived

    def test_pre_v5_payloads_default_gracefully(self):
        stored = StoredResult(ScenarioConfig("ring", 4), {"makespan": 1.0})
        assert stored.survived
        assert stored.tier_bytes_written == {}
        assert stored.partner_copies == 0
        assert stored.spare_refills == 0


# -------------------------------------------------------------- tier experiment
class TestStorageTierExperiment:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.campaign.executor import reset_default_campaign

        reset_default_campaign()
        out = storage_tier_experiment(
            methods=("NORM", "GP", "GP1"),
            policies=("L1", "L1+L2", "L1+L2+L3"),
            failures=("none", "switch-outage"),
            seeds=(0,))
        reset_default_campaign()
        return out

    def test_overhead_ordering_per_method(self, sweep):
        by_cell = sweep["by_cell"]
        for method in ("NORM", "GP", "GP1"):
            l1 = by_cell[(method, "L1", "none", 0)].makespan
            l2 = by_cell[(method, "L1+L2", "none", 0)].makespan
            l3 = by_cell[(method, "L1+L2+L3", "none", 0)].makespan
            assert l1 <= l2 <= l3, (method, l1, l2, l3)

    def test_method_ordering_preserved_per_policy(self, sweep):
        by_cell = sweep["by_cell"]
        for policy in ("L1", "L1+L2", "L1+L2+L3"):
            norm = by_cell[("NORM", policy, "none", 0)].makespan
            gp = by_cell[("GP", policy, "none", 0)].makespan
            gp1 = by_cell[("GP1", policy, "none", 0)].makespan
            assert norm >= gp >= gp1, (policy, norm, gp, gp1)

    def test_survivability_matrix_reports_not_crashes(self, sweep):
        table = sweep["survivability"]
        rows = {row[0]: row for row in table.rows}
        l1_row = rows["L1"]
        assert any("UNSURVIVABLE" in str(cell) for cell in l1_row)
        for policy in ("L1+L2", "L1+L2+L3"):
            assert all("UNSURVIVABLE" not in str(cell) for cell in rows[policy])

    def test_tier_bytes_grow_with_levels(self, sweep):
        by_cell = sweep["by_cell"]
        for method in ("NORM", "GP", "GP1"):
            l2_cell = by_cell[(method, "L1+L2", "none", 0)]
            l3_cell = by_cell[(method, "L1+L2+L3", "none", 0)]
            assert l2_cell.tier_bytes_written["L2"] > 0
            assert l2_cell.tier_bytes_written["L3"] == 0
            assert l3_cell.tier_bytes_written["L3"] > 0

    def test_second_run_is_served_from_the_store(self):
        from repro.campaign.executor import get_default_campaign, reset_default_campaign

        reset_default_campaign()
        try:
            configs = storage_tier_configs(
                methods=("GP1",), policies=("L1",), failures=("none",), seeds=(0,))
            campaign = get_default_campaign()
            first = campaign.run(configs)
            store = campaign.store
            done_before = store.counts()["done"]
            second = campaign.run(configs)
            assert store.counts()["done"] == done_before
            assert first[0].metrics == second[0].metrics
        finally:
            reset_default_campaign()

    def test_calibration_feeds_the_multilevel_advisor(self, sweep):
        out = tier_cost_calibration(
            sweep["results"], crash_mtbf_s=600.0, node_loss_mtbf_s=3600.0,
            outage_mtbf_s=86400.0)
        suggestion = out["suggestion"]
        assert suggestion.intervals_s["L1"] <= suggestion.intervals_s["L2"] \
            <= suggestion.intervals_s["L3"]
        assert suggestion.multipliers["L1"] == 1
        assert suggestion.multipliers["L3"] >= suggestion.multipliers["L2"] >= 1
        args = suggestion.as_policy_args()
        policy = StoragePolicy(levels=("L1", "L2", "L3"), **args)
        assert policy.l3_every == suggestion.multipliers["L3"]


# -------------------------------------------------------------- advisor units
class TestMultiLevelAdvisor:
    def test_rarer_failures_get_sparser_levels(self):
        suggestion = suggest_multilevel_intervals(
            {"L1": 0.5, "L2": 1.0, "L3": 4.0},
            {"L1": 600.0, "L2": 7200.0, "L3": 864000.0})
        assert suggestion.multipliers["L1"] == 1
        assert suggestion.multipliers["L2"] > 1
        assert suggestion.multipliers["L3"] > suggestion.multipliers["L2"]
        assert suggestion.base_interval_s == suggestion.intervals_s["L1"]

    def test_missing_mtbf_is_an_error(self):
        with pytest.raises(ValueError):
            suggest_multilevel_intervals({"L1": 0.5, "L2": 1.0}, {"L1": 600.0})

    def test_describe_mentions_promotions(self):
        suggestion = suggest_multilevel_intervals(
            {"L1": 0.5, "L2": 1.0}, {"L1": 600.0, "L2": 7200.0})
        text = suggestion.describe()
        assert "L1 every" in text and "-th ckpt" in text


# ------------------------------------------------------------------ spare refill
class TestSpareRefill:
    def test_refilled_node_serves_a_later_failure(self):
        # two sequential crashes, one spare: without refill the second kill
        # degrades to an in-place reboot; with refill the first victim's
        # rebooted node is back in the pool and serves the second placement
        cluster = dataclasses.replace(
            GIDEON_300, n_nodes=17, nodes_per_switch=4,
            storage_policy=full_hierarchy(), name="storage-tiers")
        config = ScenarioConfig(
            workload="halo2d", n_ranks=16, method="GP1",
            schedule=periodic(2.0), cluster=cluster, seed=0,
            workload_options=dict(DEFAULT_WORKLOAD_OPTIONS),
            max_group_size=8, do_restart=False,
            failure=FailureSpec(mtbf_per_node_s=60.0, max_failures=3, seed=3,
                                n_spares=1, reboot_delay_s=1.0))
        result = run_scenario(config)
        assert result.survived
        stats = result.recovery_stats
        if stats.get("spare_migrations", 0) >= 2:
            # the pool had 1 spare; a second migration proves a refill landed
            assert stats.get("spare_refills", 0) >= 1
        assert result.spare_refills == stats.get("spare_refills", 0)
