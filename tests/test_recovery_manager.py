"""Recovery-orchestration subsystem: concurrency, supersession, spares.

Pins down the tentpole properties:

* **Concurrent disjoint recoveries** — two simultaneous failures in
  channel-independent groups recover with overlapping windows, out-of-group
  ranks execute zero extra operations, and the concurrent schedule beats the
  serialised baseline on the same failure stream.
* **Failure during recovery** — a second failure inside a recovering group
  aborts the in-flight attempt and restarts the merged scope from the new
  rollback target; the run converges with exact channel accounting.
* **Spare placement** — victims relaunch on spares (same-switch preferred),
  the pool degrades to in-place reboot on exhaustion, and with a realistic
  reboot delay the spare run never trails the in-place run.
* **Determinism** — multi-failure runs with spares and concurrent recovery
  are bit-identical across ``REPRO_SIM_FASTPATH=0/1``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ckpt.scheduler import periodic
from repro.cluster.failure import (
    FailureEvent,
    FailureInjector,
    PoissonFailureModel,
    TraceFailureModel,
)
from repro.cluster.topology import Cluster, GIDEON_300, NodeTopology
from repro.core.coordinator import CheckpointCoordinator
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.experiments.runner import build_family, build_workload, run_scenario
from repro.mpi.runtime import MpiRuntime
from repro.recovery import RecoveryManager, SparePool
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _launch(method="GP4", n=16, workload="halo2d", interval=0.3, seed=7,
            model=None, n_spares=0, reboot_delay_s=0.0, concurrent=True,
            spec=None):
    wl = build_workload(workload, n, {})
    if spec is None:
        spec = GIDEON_300.with_nodes(max(GIDEON_300.n_nodes, n))
    family = build_family(method, n, workload, spec, {}, None, None)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    runtime = MpiRuntime(sim, cluster, n, protocol_family=family,
                         rng=RandomStreams(seed))
    runtime.set_memory(wl.memory_map())
    CheckpointCoordinator(runtime, family, periodic(interval)).start()
    injector = None
    if model is not None:
        pool = SparePool(cluster, n_spares) if n_spares else None
        injector = FailureInjector(runtime, model, spare_pool=pool,
                                   reboot_delay_s=reboot_delay_s,
                                   concurrent=concurrent)
        injector.start()
    runtime.launch(wl.program_factory())
    return runtime, injector


def _channel_totals(app):
    out = {}
    for ctx in app.contexts:
        for peer in ctx.account.peers():
            out[(ctx.rank, peer, "S")] = ctx.account.sent_to(peer)
            out[(ctx.rank, peer, "Sm")] = ctx.account.messages_sent_to(peer)
            out[(ctx.rank, peer, "R")] = ctx.account.received_from(peer)
            out[(ctx.rank, peer, "Rm")] = ctx.account.messages_received_from(peer)
    return out


# ---------------------------------------------------------------- node topology
class TestNodeTopology:
    def test_switch_mapping(self):
        topo = NodeTopology(n_nodes=70, nodes_per_switch=32)
        assert topo.n_switches == 3
        assert topo.switch_of(0) == 0
        assert topo.switch_of(31) == 0
        assert topo.switch_of(32) == 1
        assert topo.same_switch(0, 31) and not topo.same_switch(31, 32)
        assert list(topo.switch_nodes(2)) == list(range(64, 70))

    def test_cluster_exposes_topology_through_network(self):
        spec = dataclasses.replace(GIDEON_300, n_nodes=40, nodes_per_switch=8)
        cluster = Cluster(Simulator(), spec)
        assert cluster.topology.n_switches == 5
        assert cluster.network.same_switch(0, 7)
        assert not cluster.network.same_switch(7, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeTopology(n_nodes=0)
        with pytest.raises(ValueError):
            NodeTopology(n_nodes=4, nodes_per_switch=0)
        with pytest.raises(ValueError):
            NodeTopology(n_nodes=4).switch_of(4)


# ------------------------------------------------------------------- spare pool
class TestSparePool:
    def _cluster(self, n_nodes=20, n_ranks=16, nodes_per_switch=10):
        spec = dataclasses.replace(GIDEON_300, n_nodes=n_nodes,
                                   nodes_per_switch=nodes_per_switch)
        cluster = Cluster(Simulator(), spec)
        cluster.place_ranks(n_ranks)
        return cluster

    def test_reserves_highest_free_nodes(self):
        cluster = self._cluster()
        pool = SparePool(cluster, 3)
        assert pool.available == [17, 18, 19]
        assert pool.remaining == 3

    def test_prefers_same_switch_then_falls_back(self):
        cluster = self._cluster()  # switches: 0-9, 10-19; spares 16..19
        pool = SparePool(cluster, 4)
        # victim on switch 1: same-switch spare (lowest id) wins
        assert pool.acquire(near_node=12, rank=12) == 16
        # victim on switch 0: no spare on switch 0, cluster-wide fallback
        assert pool.acquire(near_node=2, rank=2) == 17
        assert [p.same_switch for p in pool.placements] == [True, False]

    def test_exhaustion_and_failed_spares(self):
        cluster = self._cluster()
        pool = SparePool(cluster, 2)  # nodes 18, 19
        pool.node_failed(19)
        assert pool.lost_spares == 1
        assert pool.acquire(0, 0) == 18
        assert pool.acquire(1, 1) is None
        assert pool.exhausted_requests == 1

    def test_cannot_over_reserve(self):
        cluster = self._cluster()
        with pytest.raises(ValueError):
            SparePool(cluster, 5)  # only 4 free nodes


# ------------------------------------------------- concurrent disjoint recoveries
@pytest.fixture(scope="module")
def concurrent_pair():
    """Failure-free run, concurrent 2-failure run, serialised 2-failure run.

    halo2d on a 4×4 grid under GP4 groups rows: rows 0 (ranks 0–3) and 2
    (ranks 8–11) share no channels (neighbours wrap to rows 1 and 3), so
    their recoveries are channel-independent and may overlap.
    """
    runtime, _ = _launch()
    base = runtime.run_to_completion(limit_s=1e5)
    kill_at = base.makespan * 0.6
    nodes = (runtime.ctx(0).node_id, runtime.ctx(8).node_id)
    events = [FailureEvent(kill_at, nodes[0]), FailureEvent(kill_at, nodes[1])]
    runtime2, _ = _launch(model=TraceFailureModel(events))
    conc = runtime2.run_to_completion(limit_s=1e6)
    runtime3, _ = _launch(model=TraceFailureModel(events), concurrent=False)
    ser = runtime3.run_to_completion(limit_s=1e6)
    return base, conc, ser


class TestConcurrentRecovery:
    def test_both_groups_recover_with_overlapping_windows(self, concurrent_pair):
        _base, conc, _ser = concurrent_pair
        assert len(conc.recovery) == 2
        scopes = sorted(r.rollback_ranks for r in conc.recovery)
        assert scopes == [(0, 1, 2, 3), (8, 9, 10, 11)]
        (a, b) = conc.recovery
        # overlapping recovery windows: each starts before the other completes
        assert a.failure_time < b.completed_at
        assert b.failure_time < a.completed_at
        assert conc.recovery_stats["max_concurrent_recoveries"] == 2
        assert conc.recovery_stats["serialized_conflicts"] == 0

    def test_out_of_group_ranks_do_zero_extra_ops(self, concurrent_pair):
        base, conc, _ser = concurrent_pair
        rolled = set()
        for report in conc.recovery:
            rolled |= set(report.rollback_ranks)
        for b, f in zip(base.contexts, conc.contexts):
            if b.rank in rolled:
                assert f.stats.ops_executed > b.stats.ops_executed
            else:
                assert f.stats.ops_executed == b.stats.ops_executed

    def test_concurrent_beats_serialized_baseline(self, concurrent_pair):
        _base, conc, ser = concurrent_pair
        assert ser.recovery_stats["max_concurrent_recoveries"] == 1
        assert conc.makespan < ser.makespan

    def test_channel_totals_conserved(self, concurrent_pair):
        base, conc, ser = concurrent_pair
        assert _channel_totals(conc) == _channel_totals(base)
        assert _channel_totals(ser) == _channel_totals(base)

    def test_channel_coupled_failures_serialize(self):
        """Adjacent rows share halo channels: their recoveries must not overlap."""
        runtime, _ = _launch()
        base = runtime.run_to_completion(limit_s=1e5)
        kill_at = base.makespan * 0.6
        events = [FailureEvent(kill_at, runtime.ctx(0).node_id),
                  FailureEvent(kill_at, runtime.ctx(4).node_id)]
        runtime2, _ = _launch(model=TraceFailureModel(events))
        failed = runtime2.run_to_completion(limit_s=1e6)
        assert failed.recovery_stats["serialized_conflicts"] == 1
        assert failed.recovery_stats["max_concurrent_recoveries"] == 1
        assert len(failed.recovery) == 2
        # the queued recovery starts only after the first completes
        first, second = sorted(failed.recovery, key=lambda r: r.completed_at)
        assert second.detected_at >= first.completed_at
        assert _channel_totals(failed) == _channel_totals(base)


# ------------------------------------------------------ failure during recovery
class TestFailureDuringRecovery:
    @pytest.fixture(scope="class")
    def merged(self):
        runtime, _ = _launch()
        base = runtime.run_to_completion(limit_s=1e5)
        kill_at = base.makespan * 0.6
        events = [FailureEvent(kill_at, runtime.ctx(0).node_id),
                  FailureEvent(kill_at + 0.3, runtime.ctx(1).node_id)]
        runtime2, injector = _launch(model=TraceFailureModel(events))
        failed = runtime2.run_to_completion(limit_s=1e6)
        return base, failed, injector

    def test_converges_with_one_merged_report(self, merged):
        _base, failed, injector = merged
        assert all(ctx.finished for ctx in failed.contexts)
        assert len(injector.injected_events) == 2
        assert failed.recovery_stats["aborted_recoveries"] == 1
        assert len(failed.recovery) == 1
        report = failed.recovery[0]
        assert report.victims == (0, 1)
        assert report.rollback_ranks == (0, 1, 2, 3)
        assert report.superseded_attempts == 1

    def test_channel_accounting_stays_exact(self, merged):
        base, failed, _ = merged
        assert _channel_totals(failed) == _channel_totals(base)

    def test_out_of_group_ranks_unaffected(self, merged):
        base, failed, _ = merged
        for b, f in zip(base.contexts, failed.contexts):
            if b.rank not in (0, 1, 2, 3):
                assert f.stats.ops_executed == b.stats.ops_executed

    def test_recovery_time_spans_from_the_original_failure(self, merged):
        """Superseded attempts count as recovery time, not as a free reset.

        The merged recovery starts at the second failure, but the group was
        dead/recovering since the first one — the measured recovery window
        must be anchored at the original failure instant.
        """
        _base, failed, injector = merged
        report = failed.recovery[0]
        t1, t2 = (e.time for e in injector.injected_events)
        assert report.failure_time == pytest.approx(t1)
        for rec in report.ranks:
            assert rec.recovery_time_s == pytest.approx(report.completed_at - t1)
            assert rec.recovery_time_s > t2 - t1

    def test_lost_work_not_double_counted(self, merged):
        """Between the halt and the second failure no work was executed.

        The merged report's lost work is bounded by what could actually have
        run: every rolled-back rank lost at most (second failure time −
        restored checkpoint), and the victims of the *first* kill lost only
        up to the first kill.
        """
        _base, failed, injector = merged
        report = failed.recovery[0]
        t1 = injector.injected_events[0].time
        for rec in report.ranks:
            assert rec.lost_work_s <= t1 + 1e-9 or rec.rank != 0


# ---------------------------------------------------------------- spare placement
class TestSparePlacement:
    @pytest.fixture(scope="class")
    def runs(self):
        """Same single-failure scenario: spares on vs in-place reboot."""
        runtime, _ = _launch()
        base = runtime.run_to_completion(limit_s=1e5)
        kill_at = base.makespan * 0.6
        node0 = runtime.ctx(0).node_id
        model = lambda: TraceFailureModel([FailureEvent(kill_at, node0)])
        rt_spare, inj_spare = _launch(model=model(), n_spares=2,
                                      reboot_delay_s=20.0)
        spare = rt_spare.run_to_completion(limit_s=1e6)
        rt_place, _ = _launch(model=model(), n_spares=0, reboot_delay_s=20.0)
        inplace = rt_place.run_to_completion(limit_s=1e6)
        return base, spare, inplace, rt_spare, node0

    def test_victim_relaunches_on_spare(self, runs):
        _base, spare, _inplace, runtime, node0 = runs
        report = spare.recovery[0]
        assert len(report.placements) == 1
        rank, from_node, to_node = report.placements[0]
        assert (rank, from_node) == (0, node0)
        assert runtime.ctx(0).node_id == to_node != node0
        # placement maps were rewired: the spare hosts the rank now
        assert 0 in runtime.cluster.nodes[to_node].ranks
        assert 0 not in runtime.cluster.nodes[node0].ranks
        assert runtime.cluster.node_of(0) == to_node
        assert report.inplace_reboots == 0
        assert spare.recovery_stats["spare_migrations"] == 1

    def test_post_recovery_traffic_flows_over_the_new_nic(self, runs):
        base, spare, _inplace, runtime, _ = runs
        # the run completed with exact channel totals — every post-recovery
        # message to/from rank 0 was delivered through the spare node's NIC
        assert all(ctx.finished for ctx in spare.contexts)
        assert _channel_totals(spare) == _channel_totals(base)

    def test_spare_beats_inplace_reboot(self, runs):
        _base, spare, inplace, _runtime, _ = runs
        assert inplace.recovery[0].inplace_reboots == 1
        assert inplace.recovery[0].placements == []
        assert spare.makespan < inplace.makespan

    def test_exhausted_pool_degrades_to_inplace(self):
        runtime, _ = _launch()
        base = runtime.run_to_completion(limit_s=1e5)
        kill_at = base.makespan * 0.6
        events = [FailureEvent(kill_at, runtime.ctx(0).node_id),
                  FailureEvent(kill_at + 0.1, runtime.ctx(8).node_id)]
        runtime2, injector = _launch(model=TraceFailureModel(events),
                                     n_spares=1, reboot_delay_s=1.0)
        failed = runtime2.run_to_completion(limit_s=1e6)
        assert all(ctx.finished for ctx in failed.contexts)
        pool = injector.manager.spare_pool
        # the pool was dry when the second failure hit (in-place reboot), and
        # the first victim's abandoned node later rebooted and re-registered
        # as a spare (refill), so the pool ends refilled rather than empty
        assert pool.exhausted_requests == 1
        assert pool.refilled == 1
        assert pool.remaining == 1
        assert failed.recovery_stats["spare_refills"] == 1
        assert failed.recovery_stats["spare_migrations"] == 1
        assert sum(r.inplace_reboots for r in failed.recovery) == 1
        assert _channel_totals(failed) == _channel_totals(base)

    def test_idle_spare_death_leaves_the_pool(self):
        """A failure striking an unused spare must retire it, not be ignored."""
        spec = dataclasses.replace(GIDEON_300, n_nodes=18)
        runtime, _ = _launch(spec=spec)
        base = runtime.run_to_completion(limit_s=1e5)
        kill_at = base.makespan * 0.6
        # nodes 16/17 are the spares; kill spare 17 first, then rank 0's node
        events = [FailureEvent(kill_at - 0.5, 17),
                  FailureEvent(kill_at, runtime.ctx(0).node_id)]
        runtime2, injector = _launch(spec=spec, n_spares=2, reboot_delay_s=5.0,
                                     model=TraceFailureModel(events))
        failed = runtime2.run_to_completion(limit_s=1e6)
        pool = injector.manager.spare_pool
        assert len(injector.ignored_events) == 1
        assert pool.lost_spares == 1
        assert runtime2.cluster.nodes[17].failed
        # the victim was placed on the surviving spare, never the dead one
        (placement,) = pool.placements
        assert placement.to_node == 16
        assert all(ctx.finished for ctx in failed.contexts)

    def test_aborted_attempt_returns_unused_spare(self):
        """A spare reserved by a superseded attempt that never migrated goes back.

        The second failure lands within the detection window, before the
        first attempt's restart coroutines (and hence the migration) run:
        the reservation must be released so the merged attempt can use it,
        and the pool statistics must reflect the one migration that really
        happened.
        """
        spec = dataclasses.replace(GIDEON_300, n_nodes=18)
        runtime, _ = _launch(spec=spec)
        base = runtime.run_to_completion(limit_s=1e5)
        kill_at = base.makespan * 0.6
        events = [FailureEvent(kill_at, runtime.ctx(0).node_id),
                  FailureEvent(kill_at + 0.1, runtime.ctx(1).node_id)]
        runtime2, injector = _launch(spec=spec, n_spares=2, reboot_delay_s=5.0,
                                     model=TraceFailureModel(events))
        failed = runtime2.run_to_completion(limit_s=1e6)
        assert failed.recovery_stats["aborted_recoveries"] == 1
        report = failed.recovery[0]
        # both victims migrated in the merged attempt; no reservation leaked
        pool = injector.manager.spare_pool
        assert len(report.placements) == 2
        assert failed.recovery_stats["spare_migrations"] == 2
        assert len(pool.placements) == 2
        assert pool.remaining == 0 and pool.exhausted_requests == 0
        assert all(ctx.finished for ctx in failed.contexts)

    def test_same_switch_spare_preferred(self):
        # 20 nodes, 10 per switch: ranks 0..15, spares 16..19 live on switch 1
        spec = dataclasses.replace(GIDEON_300, n_nodes=20, nodes_per_switch=10)
        runtime, _ = _launch(spec=spec)
        base = runtime.run_to_completion(limit_s=1e5)
        kill_at = base.makespan * 0.6
        victim_node = runtime.ctx(12).node_id  # node 12, switch 1
        runtime2, injector = _launch(
            spec=spec, n_spares=2, reboot_delay_s=5.0,
            model=TraceFailureModel([FailureEvent(kill_at, victim_node)]))
        failed = runtime2.run_to_completion(limit_s=1e6)
        placement = injector.manager.spare_pool.placements[0]
        assert placement.same_switch
        assert failed.recovery_stats["spare_same_switch"] == 1
        assert failed.recovery[0].same_switch_placements == 1


# ------------------------------------------------------------------ determinism
class TestDeterminism:
    METRICS = staticmethod(lambda app: (
        app.makespan,
        app.checkpoints_completed,
        [(r.failure_time, r.node, r.victims, r.rollback_ranks, r.target_ckpt_id,
          r.total_lost_work_s, r.max_recovery_time_s, r.replayed_bytes,
          r.completed_at, tuple(r.placements), r.inplace_reboots,
          r.superseded_attempts) for r in app.recovery],
        sorted(app.recovery_stats.items()),
        sum(c.stats.skipped_bytes for c in app.contexts),
    ))

    def _multi_failure_run(self):
        model = PoissonFailureModel(rate_per_node_s=1 / 40.0,
                                    rng=RandomStreams(42), max_failures=4)
        runtime, _ = _launch(model=model, n_spares=2, reboot_delay_s=2.0)
        return runtime.run_to_completion(limit_s=1e6)

    def test_fastpath_settings_agree_bit_for_bit(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "1")
        fast = self.METRICS(self._multi_failure_run())
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        slow = self.METRICS(self._multi_failure_run())
        assert fast == slow
        assert fast[2], "the seeded model must inject at least one failure"

    def test_same_seed_reproduces_exactly(self):
        assert self.METRICS(self._multi_failure_run()) == \
            self.METRICS(self._multi_failure_run())


# ------------------------------------------------------- scenario/campaign glue
class TestScenarioIntegration:
    def test_failure_spec_spare_fields_round_trip(self):
        from repro.campaign.store import config_from_dict, config_to_dict, scenario_key

        cfg = ScenarioConfig(
            "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
            failure=FailureSpec(at_s=1.5, victim_rank=2, n_spares=3,
                                reboot_delay_s=12.5, serialize_recoveries=True))
        again = config_from_dict(config_to_dict(cfg))
        assert again == cfg
        assert scenario_key(again) == scenario_key(cfg)

    def test_default_spare_fields_keep_pre_subsystem_keys(self):
        from repro.campaign.store import config_to_dict

        cfg = ScenarioConfig(
            "halo2d", 16, "GP4", periodic(0.3), do_restart=False, seed=3,
            failure=FailureSpec(at_s=1.5))
        data = config_to_dict(cfg)
        assert "n_spares" not in data["failure"]
        assert "reboot_delay_s" not in data["failure"]
        assert "serialize_recoveries" not in data["failure"]
        assert "nodes_per_switch" not in data["cluster"]

    def test_run_scenario_wires_spares_and_payload(self):
        from repro.campaign.results import metrics_payload

        spec = dataclasses.replace(GIDEON_300, n_nodes=18)
        cfg = ScenarioConfig(
            "halo2d", 16, "GP4", periodic(0.3), cluster=spec,
            do_restart=False, seed=3,
            failure=FailureSpec(at_s=1.9, victim_rank=0, n_spares=2,
                                reboot_delay_s=10.0))
        result = run_scenario(cfg)
        assert result.failures_injected == 1
        assert result.spare_migrations == 1
        assert result.inplace_reboots == 0
        assert 0.0 < result.availability < 1.0
        assert result.recovery_rank_seconds > 0
        payload = metrics_payload(result)
        assert payload["spare_migrations"] == 1
        assert payload["availability"] == result.availability
        assert payload["max_concurrent_recoveries"] == 1


# --------------------------------------------------------- availability sweep
class TestAvailabilityExperiment:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.campaign.executor import reset_default_campaign
        from repro.experiments.availability import availability_experiment

        reset_default_campaign()
        out = availability_experiment(
            mtbf_per_node_s=(240.0, 100.0, 50.0), spare_counts=(0, 2),
            seeds=(0, 1))
        reset_default_campaign()
        return out

    def test_makespan_ordering_holds_across_rates(self, sweep):
        cells = {(c.method, c.mtbf_per_node_s, c.n_spares): c
                 for c in sweep["cells"]}
        for mtbf in (240.0, 100.0, 50.0):
            for spares in (0, 2):
                norm = cells[("NORM", mtbf, spares)].makespan_s
                gp = cells[("GP", mtbf, spares)].makespan_s
                gp1 = cells[("GP1", mtbf, spares)].makespan_s
                assert norm >= gp >= gp1, (mtbf, spares, norm, gp, gp1)

    def test_failures_were_actually_injected(self, sweep):
        by_method = {}
        for cell in sweep["cells"]:
            by_method.setdefault(cell.method, 0.0)
            by_method[cell.method] += cell.failures
        assert all(total > 0 for total in by_method.values()), by_method

    def test_spares_never_worse_than_inplace(self, sweep):
        cells = {(c.method, c.mtbf_per_node_s, c.n_spares): c
                 for c in sweep["cells"]}
        for (method, mtbf, spares), cell in cells.items():
            if spares == 0:
                continue
            inplace = cells[(method, mtbf, 0)]
            assert cell.makespan_s <= inplace.makespan_s + 1e-9, \
                (method, mtbf, cell.makespan_s, inplace.makespan_s)

    def test_availability_degrades_gracefully_for_gp(self, sweep):
        cells = {(c.method, c.mtbf_per_node_s, c.n_spares): c
                 for c in sweep["cells"]}
        # at the harshest rate, grouping beats global rollback on availability
        assert (cells[("GP", 50.0, 0)].availability
                > cells[("NORM", 50.0, 0)].availability)
        assert (cells[("GP1", 50.0, 0)].availability
                > cells[("NORM", 50.0, 0)].availability)

    def test_calibrated_interval_table(self, sweep):
        from repro.experiments.availability import calibrated_interval_table

        out = calibrated_interval_table(sweep["results"], mtbf_s=5000.0)
        for method, entry in out["suggestions"].items():
            assert entry["costs"].recovery_cost_s > 0
            assert (entry["calibrated"].interval_s
                    <= entry["analytic"].interval_s), method
