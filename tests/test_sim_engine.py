"""Tests for the discrete-event kernel (repro.sim.engine)."""

import pytest

from repro.sim.engine import Interrupt, SimProcess, SimulationError, Simulator
from repro.sim.primitives import Event


def test_initial_time_is_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_time():
    sim = Simulator()
    sim.timeout(5.0)
    assert sim.run() == 5.0


def test_run_with_until_stops_early():
    sim = Simulator()
    sim.timeout(10.0)
    assert sim.run(until=3.0) == 3.0
    assert sim.now == 3.0


def test_run_until_before_now_rejected():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=0.5)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_negative_schedule_delay_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(ValueError):
        sim.schedule(ev, delay=-0.1)


def test_step_on_empty_calendar_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_peek_empty_is_infinite():
    assert Simulator().peek() == float("inf")


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        ev = sim.timeout(delay, value=delay)
        ev.callbacks.append(lambda e: order.append(e.value))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for label in ("a", "b", "c"):
        ev = sim.timeout(1.0, value=label)
        ev.callbacks.append(lambda e: order.append(e.value))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    sim.run()
    assert ev.processed and ev.ok and ev.value == 42


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failed_event_raises_from_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_defused_failed_event_does_not_raise():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    ev.defused = True
    sim.run()
    assert ev.processed and not ev.ok


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return "done"

    p = sim.process(proc())
    value = sim.run_until_complete(p)
    assert value == "done"
    assert sim.now == 2.0


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        SimProcess(sim, lambda: None)  # type: ignore[arg-type]


def test_process_yielding_non_event_fails():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run_until_complete(p)


def test_process_exception_propagates():
    sim = Simulator()

    def boom():
        yield sim.timeout(1.0)
        raise ValueError("inner")

    p = sim.process(boom())
    with pytest.raises(ValueError, match="inner"):
        sim.run_until_complete(p)


def test_process_waits_on_event_value():
    sim = Simulator()
    ev = sim.event()
    results = []

    def waiter():
        value = yield ev
        results.append(value)

    def trigger():
        yield sim.timeout(3.0)
        ev.succeed("payload")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert results == ["payload"]


def test_process_chaining_waits_for_subprocess():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 7

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run_until_complete(sim.process(parent())) == 8


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.timeout(0.5, value="x")

    def proc():
        yield sim.timeout(1.0)  # ev is processed by now
        value = yield ev
        return value

    assert sim.run_until_complete(sim.process(proc())) == "x"
    assert sim.now == 1.0


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    ev = sim.event()  # never triggered

    def stuck():
        yield ev

    p = sim.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)


def test_run_until_complete_respects_limit():
    sim = Simulator()

    def slow():
        yield sim.timeout(100.0)

    p = sim.process(slow())
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_complete(p, limit=10.0)


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def victim():
        try:
            yield ev
        except Interrupt as exc:
            caught.append(exc.cause)
        yield sim.timeout(1.0)
        return "recovered"

    p = sim.process(victim())

    def attacker():
        yield sim.timeout(2.0)
        p.interrupt("stop")

    sim.process(attacker())
    assert sim.run_until_complete(p) == "recovered"
    assert caught == ["stop"]
    assert sim.now == 3.0


def test_interrupt_on_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)

    p = sim.process(quick())
    sim.run()
    p.interrupt("late")  # must not raise
    sim.run()
    assert p.processed


def test_all_of_collects_all_values():
    sim = Simulator()
    evs = [sim.timeout(d, value=d) for d in (1.0, 2.0, 3.0)]

    def proc():
        values = yield sim.all_of(evs)
        return sorted(values.values())

    assert sim.run_until_complete(sim.process(proc())) == [1.0, 2.0, 3.0]
    assert sim.now == 3.0


def test_any_of_fires_on_first():
    sim = Simulator()
    evs = [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")]

    def proc():
        yield sim.any_of(evs)
        return sim.now

    assert sim.run_until_complete(sim.process(proc())) == 1.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    cond = sim.all_of([])
    sim.run()
    assert cond.processed and cond.ok


def test_condition_requires_same_simulator():
    sim_a, sim_b = Simulator(), Simulator()
    ev_a = sim_a.event()
    ev_b = sim_b.event()
    with pytest.raises(ValueError):
        sim_a.all_of([ev_a, ev_b])


def test_processed_events_counter_increases():
    sim = Simulator()
    for _ in range(5):
        sim.timeout(1.0)
    sim.run()
    assert sim.processed_events == 5


def test_active_process_visible_during_step():
    sim = Simulator()
    seen = []

    def proc():
        seen.append(sim.active_process)
        yield sim.timeout(1.0)

    p = sim.process(proc())
    sim.run()
    assert seen == [p]
    assert sim.active_process is None


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def worker(name, delay):
        for i in range(3):
            yield sim.timeout(delay)
            log.append((name, sim.now))

    sim.process(worker("a", 1.0))
    sim.process(worker("b", 1.5))
    sim.run()
    assert [entry for entry in log if entry[0] == "a"] == [("a", 1.0), ("a", 2.0), ("a", 3.0)]
    assert [entry for entry in log if entry[0] == "b"] == [("b", 1.5), ("b", 3.0), ("b", 4.5)]
    assert [t for _, t in log] == sorted(t for _, t in log)


def test_context_dictionary_available():
    sim = Simulator()
    sim.context["cluster"] = "x"
    assert sim.context["cluster"] == "x"
