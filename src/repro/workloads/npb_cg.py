"""NAS Parallel Benchmarks CG — conjugate gradient communication pattern.

CG partitions its sparse matrix over a ``nprows × npcols`` logical grid
(``npcols`` is ``nprows`` or ``2·nprows`` depending on whether log2(p) is even
or odd).  Every conjugate-gradient iteration performs a sparse matrix–vector
product whose communication is:

* a sequence of **row reductions**: each process exchanges partial result
  segments with log2(npcols) partners inside its process row,
* a **transpose exchange** with the process holding the transposed block, and
* two small **global all-reduces** for the dot products / norms.

CG is the paper's example of a "communication-non-stop" application — there
is almost no compute between messages, so any process that pauses (e.g. while
frozen in a checkpoint dump) quickly stalls the whole computation.  Class C
parameters (na = 150000, ~36.7M non-zeros, 75 outer iterations) are used by
default; the many real iterations are coarsened into ``max_steps`` simulated
iterations with volumes and flops preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.mpi.ops import Allreduce, Compute, Marker, Op, SendRecv
from repro.workloads.base import Workload, coarsen_steps

_BYTES_PER_WORD = 8


def cg_grid(n_ranks: int) -> Tuple[int, int]:
    """The (nprows, npcols) layout NPB CG uses for ``n_ranks`` processes.

    ``n_ranks`` must be a power of two (as NPB requires).  For an even power
    the grid is square; for an odd power there are twice as many columns as
    rows — e.g. 32 → 4×8, 128 → 8×16.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    log2 = n_ranks.bit_length() - 1
    if 2 ** log2 != n_ranks:
        raise ValueError(f"NPB CG requires a power-of-two process count, got {n_ranks}")
    nprows = 2 ** (log2 // 2)
    npcols = n_ranks // nprows
    return nprows, npcols


@dataclass(frozen=True)
class CgParameters:
    """CG model parameters (defaults are NPB class C)."""

    na: int = 150000
    nonzer: int = 15
    outer_iterations: int = 75
    inner_iterations: int = 25
    #: effective sparse-kernel rate per rank (memory-bound, well below peak —
    #: roughly 2 flops per 12 bytes at the P4's ~0.5 GB/s sustained bandwidth)
    gflops_per_rank: float = 0.08
    max_steps: int = 24

    def __post_init__(self) -> None:
        if self.na < 1 or self.nonzer < 1:
            raise ValueError("na and nonzer must be positive")
        if self.outer_iterations < 1 or self.inner_iterations < 1:
            raise ValueError("iteration counts must be positive")
        if self.gflops_per_rank <= 0:
            raise ValueError("gflops_per_rank must be positive")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")

    @property
    def nnz(self) -> float:
        """Approximate non-zero count of the CG matrix."""
        return float(self.na) * (self.nonzer + 1) * (self.nonzer + 1)

    @property
    def total_matvecs(self) -> int:
        """Sparse matrix–vector products over the whole run."""
        return self.outer_iterations * self.inner_iterations


class CgWorkload(Workload):
    """NPB CG class C on a power-of-two process count."""

    name = "cg"

    def __init__(self, n_ranks: int, params: CgParameters = CgParameters()) -> None:
        super().__init__(n_ranks)
        self.params = params
        self.nprows, self.npcols = cg_grid(n_ranks)
        self._chunks = coarsen_steps(params.total_matvecs, params.max_steps)

    # -- geometry ----------------------------------------------------------------
    def coords(self, unit: int) -> Tuple[int, int]:
        """(proc_row, proc_col) of ``unit``; CG numbers ranks row-major."""
        self._check_unit(unit)
        return unit // self.npcols, unit % self.npcols

    def rank_of(self, proc_row: int, proc_col: int) -> int:
        """Rank at grid position (proc_row, proc_col)."""
        if not 0 <= proc_row < self.nprows or not 0 <= proc_col < self.npcols:
            raise ValueError(f"({proc_row}, {proc_col}) outside {self.nprows}x{self.npcols} grid")
        return proc_row * self.npcols + proc_col

    def row_members(self, proc_row: int) -> Tuple[int, ...]:
        """Ranks in the given process row (the reduction partners)."""
        return tuple(self.rank_of(proc_row, c) for c in range(self.npcols))

    def transpose_partner(self, rank: int) -> int:
        """The rank holding the transposed block (exchange partner).

        On a square grid this is the mirrored grid position.  On the
        rectangular (npcols = 2·nprows) grids CG uses for odd powers of two,
        each square half of the grid is transposed within itself, which keeps
        the pairing an involution (``partner(partner(r)) == r``) — a property
        the pairwise exchange relies on.
        """
        proc_row, proc_col = self.coords(rank)
        half = proc_col // self.nprows
        folded_col = proc_col % self.nprows
        return self.rank_of(folded_col, proc_row + self.nprows * half)

    # -- sizing ---------------------------------------------------------------------
    def native_memory_bytes(self, unit: int) -> int:
        """Local share of the sparse matrix (values + indices) plus vectors."""
        self._check_unit(unit)
        p = self.params
        matrix = p.nnz * (_BYTES_PER_WORD + 4) / self.n_units
        vectors = 8.0 * p.na / self.npcols * 6
        return int(matrix + vectors)

    def segment_bytes(self) -> int:
        """Bytes of one exchanged vector segment (na / npcols doubles)."""
        return int(_BYTES_PER_WORD * self.params.na / self.npcols)

    def _matvec_seconds(self) -> float:
        flops = 2.0 * self.params.nnz / self.n_units
        return flops / (self.params.gflops_per_rank * 1e9)

    # -- script ------------------------------------------------------------------------
    def _reduce_partners(self, rank: int) -> List[int]:
        """Row partners at distances 1, 2, 4, ... within the process row."""
        proc_row, proc_col = self.coords(rank)
        members = self.row_members(proc_row)
        partners = []
        stage = 1
        while stage < self.npcols:
            partners.append(members[proc_col ^ stage])
            stage *= 2
        return partners

    def native_program(self, unit: int) -> Iterator[Op]:
        """Native operation script of grid cell ``unit``."""
        self._check_unit(unit)
        rank = unit
        seg = self.segment_bytes()
        partners = self._reduce_partners(rank)
        transpose = self.transpose_partner(rank)
        matvec_s = self._matvec_seconds()

        for sim_step, real_count in enumerate(self._chunks):
            yield Marker(label=f"iter:{sim_step}")
            # local sparse matvec work for the chunk
            yield Compute(seconds=matvec_s * real_count, label="matvec")
            # row-wise reduction of partial results
            for partner in partners:
                yield SendRecv(dst=partner, send_nbytes=seg * real_count, src=partner, tag=11)
            # exchange with the transpose partner
            if transpose != rank:
                yield SendRecv(dst=transpose, send_nbytes=seg * real_count, src=transpose, tag=12)
            # global dot products / norms
            yield Allreduce(nbytes=8, tag=13)

    def describe(self) -> str:
        """One-line description for reports."""
        p = self.params
        return (
            f"NPB CG class-C-like (na={p.na}) on {self.nprows}x{self.npcols} grid "
            f"({self.n_units} ranks, {len(self._chunks)} simulated iterations)"
        )
