"""Small parametric workloads used by tests, examples and ablations.

These exercise the same runtime/protocol code paths as the HPL/NPB workloads
but with fully controllable shapes:

* :class:`RingWorkload` — each rank repeatedly exchanges with its ring
  neighbour (a single communication "community": trace analysis should keep
  neighbours together),
* :class:`Halo2DWorkload` — nearest-neighbour halo exchange on a 2-D grid,
* :class:`MasterWorkerWorkload` — rank 0 scatters work and gathers results
  (a hub pattern that should *not* force everything into one group),
* :class:`AllToAllWorkload` — every rank sends to every other rank each
  iteration (the worst case for message logging).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.mpi.ops import Compute, Marker, Op, Recv, Send, SendRecv
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SyntheticParameters:
    """Shared knobs of the synthetic workloads."""

    iterations: int = 10
    message_bytes: int = 64 * 1024
    compute_seconds: float = 0.05
    memory_bytes: int = 48 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.message_bytes < 0:
            raise ValueError("message_bytes must be non-negative")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        if self.memory_bytes < 0:
            raise ValueError("memory_bytes must be non-negative")


class _SyntheticBase(Workload):
    """Common plumbing of the synthetic workloads."""

    def __init__(self, n_ranks: int, params: SyntheticParameters = SyntheticParameters()) -> None:
        super().__init__(n_ranks)
        self.params = params

    def native_memory_bytes(self, unit: int) -> int:
        """Constant per-unit footprint."""
        self._check_unit(unit)
        return self.params.memory_bytes


class RingWorkload(_SyntheticBase):
    """Each rank exchanges with its right neighbour every iteration."""

    name = "ring"

    def native_program(self, unit: int) -> Iterator[Op]:
        """Native operation script of ring position ``unit``."""
        self._check_unit(unit)
        p = self.params
        right = (unit + 1) % self.n_units
        left = (unit - 1) % self.n_units
        compute = Compute(seconds=p.compute_seconds)
        exchange = (
            SendRecv(dst=right, send_nbytes=p.message_bytes, src=left, tag=1)
            if self.n_units > 1 else None
        )
        for it in range(p.iterations):
            yield Marker(label=f"iter:{it}")
            yield compute
            if exchange is not None:
                yield exchange


class Halo2DWorkload(_SyntheticBase):
    """Nearest-neighbour halo exchange on an (approximately square) 2-D grid."""

    name = "halo2d"

    def __init__(self, n_ranks: int, params: SyntheticParameters = SyntheticParameters()) -> None:
        super().__init__(n_ranks, params)
        self.cols = max(1, math.isqrt(n_ranks))
        while n_ranks % self.cols != 0:
            self.cols -= 1
        self.rows = n_ranks // self.cols

    def coords(self, unit: int) -> Tuple[int, int]:
        """(row, col) of tile ``unit`` on the rows×cols grid."""
        self._check_unit(unit)
        return unit // self.cols, unit % self.cols

    def native_program(self, unit: int) -> Iterator[Op]:
        """Native operation script of halo tile ``unit``."""
        self._check_unit(unit)
        p = self.params
        row, col = self.coords(unit)
        east = row * self.cols + (col + 1) % self.cols
        west = row * self.cols + (col - 1) % self.cols
        south = ((row + 1) % self.rows) * self.cols + col
        north = ((row - 1) % self.rows) * self.cols + col
        # Ops are frozen (immutable), so the per-iteration exchange pattern is
        # built once and the same instances re-yielded every iteration.
        compute = Compute(seconds=p.compute_seconds)
        exchanges = []
        if self.cols > 1:
            exchanges.append(SendRecv(dst=east, send_nbytes=p.message_bytes, src=west, tag=1))
            exchanges.append(SendRecv(dst=west, send_nbytes=p.message_bytes, src=east, tag=2))
        if self.rows > 1:
            exchanges.append(SendRecv(dst=south, send_nbytes=p.message_bytes, src=north, tag=3))
            exchanges.append(SendRecv(dst=north, send_nbytes=p.message_bytes, src=south, tag=4))
        for it in range(p.iterations):
            yield Marker(label=f"iter:{it}")
            yield compute
            yield from exchanges


class MasterWorkerWorkload(_SyntheticBase):
    """Rank 0 hands out work items and collects results."""

    name = "master-worker"

    def native_program(self, unit: int) -> Iterator[Op]:
        """Native operation script of ``unit`` (unit 0 is the master)."""
        self._check_unit(unit)
        p = self.params
        workers = list(range(1, self.n_units))
        for it in range(p.iterations):
            yield Marker(label=f"iter:{it}")
            if unit == 0:
                for w in workers:
                    yield Send(dst=w, nbytes=p.message_bytes, tag=1)
                for w in workers:
                    yield Recv(src=w, tag=2)
            else:
                yield Recv(src=0, tag=1)
                yield Compute(seconds=p.compute_seconds)
                yield Send(dst=0, nbytes=p.message_bytes // 4, tag=2)


class AllToAllWorkload(_SyntheticBase):
    """Every rank sends to every other rank each iteration (logging worst case)."""

    name = "all-to-all"

    def native_program(self, unit: int) -> Iterator[Op]:
        """Native operation script of ``unit``."""
        self._check_unit(unit)
        p = self.params
        others = [u for u in range(self.n_units) if u != unit]
        for it in range(p.iterations):
            yield Marker(label=f"iter:{it}")
            yield Compute(seconds=p.compute_seconds)
            for peer in others:
                yield Send(dst=peer, nbytes=p.message_bytes, tag=1)
            for peer in others:
                yield Recv(src=peer, tag=1)
