"""Decomposable work: domains, work units, and partitions onto ranks.

The original workload API produced "a script per fixed rank": the work a rank
executes was baked into ``program(rank)`` at construction time, so a job could
only ever restart on the rank count it started with.  This module splits that
into two independent pieces:

* a **domain** — the rank-count-independent description of the work: one
  :class:`WorkUnit` per natural decomposition element (a halo tile, an HPL
  panel column, a CG/SP row chunk) with its compute cost, resident memory and
  total point-to-point message volume, and
* a **partition** — an explicit assignment of units to ranks.

Under the *identity* partition (unit ``u`` on rank ``u``) every workload's
derived ``program(rank)`` is byte-for-byte the legacy script — that is what
keeps the determinism goldens bit-identical.  Under any other partition the
owning workload merges the units' native scripts step-by-step (see
``Workload._merge_units``), which is what elastic shrink/expand restart uses
to resume a checkpointed job on a different communicator size.

Domain totals (compute seconds, message bytes, memory bytes) are computed
from the native unit scripts and are therefore *partition-independent by
construction*: repartitioning moves work, it never creates or destroys it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class WorkUnit:
    """One indivisible element of a workload's domain decomposition.

    ``compute_seconds`` and ``message_bytes`` are the unit's *whole-script*
    totals (summed over every step of its native program); ``steps`` is the
    number of Marker-delimited simulated steps the unit executes.
    """

    uid: int
    compute_seconds: float
    memory_bytes: int
    message_bytes: int
    steps: int

    def __post_init__(self) -> None:
        if self.uid < 0:
            raise ValueError("uid must be non-negative")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        if self.memory_bytes < 0 or self.message_bytes < 0:
            raise ValueError("byte volumes must be non-negative")
        if self.steps < 0:
            raise ValueError("steps must be non-negative")


@dataclass(frozen=True)
class Domain:
    """The rank-count-independent work of one workload: a tuple of units."""

    units: Tuple[WorkUnit, ...]

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def total_compute_seconds(self) -> float:
        """Total compute over all units (conserved by any partition)."""
        return sum(u.compute_seconds for u in self.units)

    @property
    def total_message_bytes(self) -> int:
        """Total point-to-point bytes sent over all units (conserved)."""
        return sum(u.message_bytes for u in self.units)

    @property
    def total_memory_bytes(self) -> int:
        """Total resident memory over all units (conserved)."""
        return sum(u.memory_bytes for u in self.units)

    @property
    def steps(self) -> int:
        """The step count of the longest unit (units are usually uniform)."""
        return max((u.steps for u in self.units), default=0)

    def weights(self) -> Dict[int, float]:
        """uid → compute weight, the default load measure for repartitioning."""
        return {u.uid: u.compute_seconds for u in self.units}


class Partition:
    """An assignment of domain units to ranks of a communicator.

    ``owner[u]`` is the rank executing unit ``u``; ``n_ranks`` is the
    communicator size, which may be smaller (shrink), equal, or larger
    (expand — some ranks own nothing) than the unit count.  Partitions are
    immutable; repartitioning produces a new instance.
    """

    __slots__ = ("owner", "n_ranks", "_units_of")

    def __init__(self, owner: Sequence[int], n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if not owner:
            raise ValueError("a partition must cover at least one unit")
        owner = tuple(int(r) for r in owner)
        for u, rank in enumerate(owner):
            if not 0 <= rank < n_ranks:
                raise ValueError(
                    f"unit {u} assigned to rank {rank} outside [0, {n_ranks})")
        self.owner: Tuple[int, ...] = owner
        self.n_ranks = n_ranks
        buckets: List[List[int]] = [[] for _ in range(n_ranks)]
        for u, rank in enumerate(owner):
            buckets[rank].append(u)
        self._units_of: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(b) for b in buckets)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def identity(cls, n_units: int) -> "Partition":
        """Unit ``u`` on rank ``u`` — the legacy fixed-rank layout."""
        return cls(tuple(range(n_units)), n_units)

    @classmethod
    def block(cls, n_units: int, n_ranks: int) -> "Partition":
        """Contiguous blocks of units, balanced to within one unit.

        With ``n_ranks > n_units`` the trailing ranks own nothing (the
        expand case); with ``n_ranks < n_units`` ranks own multiple
        neighbouring units (locality-preserving shrink).
        """
        if n_units < 1:
            raise ValueError("n_units must be >= 1")
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        active = min(n_units, n_ranks)
        base, extra = divmod(n_units, active)
        owner: List[int] = []
        for rank in range(active):
            owner.extend([rank] * (base + (1 if rank < extra else 0)))
        return cls(owner, n_ranks)

    # -- views ----------------------------------------------------------------
    @property
    def n_units(self) -> int:
        return len(self.owner)

    @property
    def is_identity(self) -> bool:
        """True for the one-unit-per-same-rank layout (legacy scripts)."""
        return (self.n_ranks == len(self.owner)
                and all(r == u for u, r in enumerate(self.owner)))

    def units_of(self, rank: int) -> Tuple[int, ...]:
        """Units owned by ``rank``, ascending (empty for idle ranks)."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")
        return self._units_of[rank]

    def active_ranks(self) -> Tuple[int, ...]:
        """Ranks owning at least one unit, ascending."""
        return tuple(r for r in range(self.n_ranks) if self._units_of[r])

    # -- repartitioning -------------------------------------------------------
    def reassign(
        self,
        dead_ranks: Iterable[int],
        weights: Optional[Mapping[int, float]] = None,
    ) -> "Partition":
        """Redistribute dead ranks' units onto the surviving ranks.

        The communicator keeps its size (dead ranks simply own nothing
        afterwards); orphaned units go, in ascending uid order, to the
        least-loaded survivor by ``weights`` (unit compute cost; uniform when
        None), ties broken by lowest rank id — fully deterministic.
        """
        dead = set(dead_ranks)
        survivors = [r for r in range(self.n_ranks) if r not in dead]
        if not survivors:
            raise ValueError("cannot reassign: every rank is dead")
        load: Dict[int, float] = {r: 0.0 for r in survivors}
        owner = list(self.owner)
        for u, rank in enumerate(owner):
            if rank not in dead:
                load[rank] += weights.get(u, 1.0) if weights else 1.0
        for u, rank in enumerate(owner):
            if rank in dead:
                target = min(survivors, key=lambda r: (load[r], r))
                owner[u] = target
                load[target] += weights.get(u, 1.0) if weights else 1.0
        return Partition(owner, self.n_ranks)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Partition)
                and self.owner == other.owner
                and self.n_ranks == other.n_ranks)

    def __hash__(self) -> int:
        return hash((self.owner, self.n_ranks))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Partition {self.n_units} units → {self.n_ranks} ranks"
                f"{' (identity)' if self.is_identity else ''}>")


@dataclass(frozen=True)
class RepartitionPlan:
    """One elastic shrink decided by recovery: who adopts what, from where.

    ``adoptions`` lists every migrated unit as ``(unit, from_rank, to_rank)``;
    ``resume_step`` is the consistent step boundary every unit restarts from
    (the minimum per-unit progress recorded in the recovery line's images —
    conservative: units ahead of the line re-execute the difference).
    """

    failed_ranks: Tuple[int, ...]
    new_partition: Partition
    resume_step: int
    target_ckpt_id: Optional[int]
    adoptions: Tuple[Tuple[int, int, int], ...]

    @property
    def units_migrated(self) -> int:
        """Units that changed owner under the new partition."""
        return len(self.adoptions)

    @property
    def ranks_after(self) -> int:
        """Communicator size actually doing work after the shrink."""
        return len(self.new_partition.active_ranks())

    def image_ships(self) -> Tuple[Tuple[int, int], ...]:
        """Distinct ``(from_rank, to_rank)`` image transfers the shrink needs.

        Every adopter restores the domain progress of the units it takes from
        a dead rank's newest surviving checkpoint image, so each (dead rank,
        adopter) pair ships that image once over the live network.
        """
        return tuple(sorted({(src, dst) for _u, src, dst in self.adoptions}))
