"""Workload generators.

Each workload reproduces the *communication pattern*, *message sizes* and
*memory footprint* of one of the applications used in the paper's evaluation
(the quantities the checkpoint protocols actually interact with), expressed
as per-rank operation scripts for :class:`~repro.mpi.runtime.MpiRuntime`:

* :class:`~repro.workloads.hpl.HplWorkload` — High Performance Linpack on a
  P×Q process grid (row-major mapping, ring panel broadcasts, row swaps),
* :class:`~repro.workloads.npb_cg.CgWorkload` — NAS CG (transpose exchange +
  row reductions + global dot products; communication-non-stop),
* :class:`~repro.workloads.npb_sp.SpWorkload` — NAS SP (alternating-direction
  sweeps on a square process grid),
* :mod:`~repro.workloads.synthetic` — small parametric patterns used by the
  tests and examples.
"""

from repro.workloads.base import Workload
from repro.workloads.hpl import HplWorkload
from repro.workloads.npb_cg import CgWorkload
from repro.workloads.npb_sp import SpWorkload
from repro.workloads.synthetic import (
    RingWorkload,
    Halo2DWorkload,
    MasterWorkerWorkload,
    AllToAllWorkload,
)

__all__ = [
    "Workload",
    "HplWorkload",
    "CgWorkload",
    "SpWorkload",
    "RingWorkload",
    "Halo2DWorkload",
    "MasterWorkerWorkload",
    "AllToAllWorkload",
]
