"""NAS Parallel Benchmarks SP — scalar pentadiagonal solver communication pattern.

SP requires a *square* number of processes (the paper uses 64, 81, 100, 121)
arranged in a √p × √p grid; the 3-D domain is decomposed so that every
iteration performs alternating-direction implicit sweeps:

* an **x-sweep** exchanging faces with the east/west neighbours (process
  row), implemented as a multi-stage pipeline,
* a **y-sweep** exchanging faces with the north/south neighbours (process
  column),
* a **z-sweep** that is local to each process, plus the ``copy_faces`` halo
  exchange with all four neighbours at the start of each iteration.

Message sizes follow the class C problem (162³ grid, 5 solution variables);
the 400 real time steps are coarsened into ``max_steps`` simulated iterations
with total volume and flops preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.mpi.ops import Compute, Marker, Op, SendRecv
from repro.workloads.base import Workload, coarsen_steps

_BYTES_PER_WORD = 8
_N_VARIABLES = 5


@dataclass(frozen=True)
class SpParameters:
    """SP model parameters (defaults are NPB class C)."""

    grid_points: int = 162
    time_steps: int = 400
    #: effective per-rank rate of the stencil/solver kernels
    gflops_per_rank: float = 0.45
    #: flops per grid point per time step (ADI sweeps + RHS)
    flops_per_point: float = 900.0
    max_steps: int = 20

    def __post_init__(self) -> None:
        if self.grid_points < 1 or self.time_steps < 1:
            raise ValueError("grid_points and time_steps must be positive")
        if self.gflops_per_rank <= 0 or self.flops_per_point <= 0:
            raise ValueError("rates must be positive")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")


class SpWorkload(Workload):
    """NPB SP class C on a square process grid."""

    name = "sp"

    def __init__(self, n_ranks: int, params: SpParameters = SpParameters()) -> None:
        super().__init__(n_ranks)
        side = math.isqrt(n_ranks)
        if side * side != n_ranks:
            raise ValueError(f"NPB SP requires a square process count, got {n_ranks}")
        self.side = side
        self.params = params
        self._chunks = coarsen_steps(params.time_steps, params.max_steps)

    # -- geometry -----------------------------------------------------------------
    def coords(self, unit: int) -> Tuple[int, int]:
        """(row, col) on the √p × √p grid."""
        self._check_unit(unit)
        return unit // self.side, unit % self.side

    def rank_of(self, row: int, col: int) -> int:
        """Rank at (row, col), with wrap-around (the sweeps are cyclic pipelines)."""
        return (row % self.side) * self.side + (col % self.side)

    def neighbours(self, rank: int) -> Tuple[int, int, int, int]:
        """(east, west, north, south) neighbours of ``rank``."""
        row, col = self.coords(rank)
        return (
            self.rank_of(row, col + 1),
            self.rank_of(row, col - 1),
            self.rank_of(row - 1, col),
            self.rank_of(row + 1, col),
        )

    # -- sizing -----------------------------------------------------------------------
    def native_memory_bytes(self, unit: int) -> int:
        """Local share of the 162³×5-variable state (about 15 arrays of that size)."""
        self._check_unit(unit)
        g = self.params.grid_points
        per_rank_points = g * g * g / self.n_units
        return int(per_rank_points * _N_VARIABLES * _BYTES_PER_WORD * 3.0)

    def face_bytes(self) -> int:
        """Bytes of one exchanged face (local cross-section × 5 variables)."""
        g = self.params.grid_points
        local_side = g / self.side
        return int(local_side * g * _N_VARIABLES * _BYTES_PER_WORD)

    def _step_compute_seconds(self) -> float:
        g = self.params.grid_points
        flops = g * g * g * self.params.flops_per_point / self.n_units
        return flops / (self.params.gflops_per_rank * 1e9)

    # -- script ---------------------------------------------------------------------------
    def native_program(self, unit: int) -> Iterator[Op]:
        """Native operation script of grid cell ``unit``."""
        self._check_unit(unit)
        east, west, north, south = self.neighbours(unit)
        face = self.face_bytes()
        compute_s = self._step_compute_seconds()

        for sim_step, real_count in enumerate(self._chunks):
            yield Marker(label=f"iter:{sim_step}")
            face_bytes = face * real_count

            # copy_faces: halo exchange with all four neighbours
            if self.side > 1:
                yield SendRecv(dst=east, send_nbytes=face_bytes // 2, src=west, tag=21)
                yield SendRecv(dst=west, send_nbytes=face_bytes // 2, src=east, tag=22)
                yield SendRecv(dst=south, send_nbytes=face_bytes // 2, src=north, tag=23)
                yield SendRecv(dst=north, send_nbytes=face_bytes // 2, src=south, tag=24)

            # RHS + x-sweep compute, then x-direction pipeline exchange
            yield Compute(seconds=compute_s * real_count * 0.4, label="rhs+x")
            if self.side > 1:
                yield SendRecv(dst=east, send_nbytes=face_bytes, src=west, tag=25)

            # y-sweep compute, then y-direction pipeline exchange
            yield Compute(seconds=compute_s * real_count * 0.3, label="y-sweep")
            if self.side > 1:
                yield SendRecv(dst=south, send_nbytes=face_bytes, src=north, tag=26)

            # z-sweep is local
            yield Compute(seconds=compute_s * real_count * 0.3, label="z-sweep")

    def describe(self) -> str:
        """One-line description for reports."""
        p = self.params
        return (
            f"NPB SP class-C-like ({p.grid_points}^3) on {self.side}x{self.side} grid "
            f"({self.n_units} ranks, {len(self._chunks)} simulated iterations)"
        )
