"""High Performance Linpack (HPL) communication-pattern workload.

The paper runs HPL 1.0a with problem size N = 20000, block size NB = 120, on
process grids with P fixed at 8 and Q = n/8, mapped in row-major order
(Section 5.1).  The Figure 10 experiment uses N = 56000 on 128 processes.

The protocol-relevant structure of HPL's main loop, reproduced here per panel
step ``k`` (trailing matrix size ``m = N − k·NB``):

1. **Panel factorisation** inside the process *column* owning panel ``k``:
   pivot search/exchange and panel updates circulate within that column
   (modelled as a small number of ring exchanges of the panel slice).
2. **Panel broadcast** along every process *row*: the column owning the panel
   sends it rightwards and each rank forwards it (HPL's increasing-ring
   broadcast).
3. **Row swaps (pdlaswp) + U broadcast** inside every process column: the
   pivoted rows of the trailing matrix, of local width ``m/Q``, are exchanged
   along the column.
4. **Trailing-matrix update**: ``2·m²·NB/(P·Q)`` flops of DGEMM per rank.

Calibration notes (documented because the exact byte counts matter for group
formation): the per-step volume exchanged along a *column* pair exceeds the
volume along a *row* pair, which is what makes the trace analysis of Section
5.1 group the process columns together (Table 1).  The split factors below
(``swap_fraction`` > ``bcast_fraction · Q/P``) encode that property while
keeping total communication volume at the right order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.mpi.ops import Compute, Marker, Op, Recv, Send, SendRecv
from repro.workloads.base import Workload, coarsen_steps

_BYTES_PER_WORD = 8


@dataclass(frozen=True)
class HplParameters:
    """Tunable HPL model parameters (defaults match the paper's Section 5.1 runs)."""

    problem_size: int = 20000
    block_size: int = 120
    grid_rows: int = 8
    gflops_per_rank: float = 1.1
    #: fraction of the full panel volume carried by one panel-broadcast hop
    bcast_fraction: float = 0.40
    #: fraction of the full row-swap volume carried along a column per step
    swap_fraction: float = 1.0
    #: ring exchanges used for panel factorisation within the owning column
    factorization_exchanges: int = 2
    #: cap on the number of simulated panel steps (real steps are coarsened)
    max_steps: int = 48
    #: panel broadcast along the rows: ``"ring"`` is HPL's increasing-ring
    #: (every row channel used in ONE direction only — the RR piggyback can
    #: never garbage-collect sender logs on this workload); ``"bidirectional"``
    #: splits the panel and circulates the halves both ways around the row
    #: ring (HPL's split-ring/2-ring broadcast variants), so every row
    #: channel carries traffic in both directions and log GC stays live.
    row_bcast: str = "ring"

    def __post_init__(self) -> None:
        if self.problem_size < 1 or self.block_size < 1:
            raise ValueError("problem_size and block_size must be positive")
        if self.grid_rows < 1:
            raise ValueError("grid_rows must be >= 1")
        if self.gflops_per_rank <= 0:
            raise ValueError("gflops_per_rank must be positive")
        if self.bcast_fraction < 0 or self.swap_fraction < 0:
            raise ValueError("fractions must be non-negative")
        if self.factorization_exchanges < 0:
            raise ValueError("factorization_exchanges must be non-negative")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.row_bcast not in ("ring", "bidirectional"):
            raise ValueError(
                f"unknown row_bcast {self.row_bcast!r}; expected 'ring' or 'bidirectional'")


class HplWorkload(Workload):
    """HPL on a P×Q grid with row-major rank mapping."""

    name = "hpl"

    def __init__(self, n_ranks: int, params: HplParameters = HplParameters()) -> None:
        super().__init__(n_ranks)
        if n_ranks % params.grid_rows != 0:
            raise ValueError(
                f"n_ranks={n_ranks} must be a multiple of grid_rows P={params.grid_rows}"
            )
        self.params = params
        self.P = params.grid_rows
        self.Q = n_ranks // params.grid_rows
        natural_steps = max(1, params.problem_size // params.block_size)
        self._chunks = coarsen_steps(natural_steps, params.max_steps)

    # -- grid geometry (row-major mapping, as in the paper) -----------------------
    def coords(self, unit: int) -> Tuple[int, int]:
        """(row, col) of ``unit`` on the P×Q grid under row-major mapping."""
        self._check_unit(unit)
        return unit // self.Q, unit % self.Q

    def rank_of(self, row: int, col: int) -> int:
        """Rank at grid position (row, col)."""
        if not 0 <= row < self.P or not 0 <= col < self.Q:
            raise ValueError(f"({row}, {col}) outside {self.P}x{self.Q} grid")
        return row * self.Q + col

    def column_members(self, col: int) -> Tuple[int, ...]:
        """Ranks in process column ``col`` (the natural checkpoint group)."""
        return tuple(self.rank_of(r, col) for r in range(self.P))

    def row_members(self, row: int) -> Tuple[int, ...]:
        """Ranks in process row ``row``."""
        return tuple(self.rank_of(row, c) for c in range(self.Q))

    # -- sizing ------------------------------------------------------------------
    def native_memory_bytes(self, unit: int) -> int:
        """Local share of the N×N matrix plus ~10% workspace."""
        self._check_unit(unit)
        n = self.params.problem_size
        local = _BYTES_PER_WORD * n * n / (self.P * self.Q)
        return int(local * 1.10)

    def total_flops(self) -> float:
        """Total LU factorisation work, 2/3 · N³."""
        n = float(self.params.problem_size)
        return (2.0 / 3.0) * n ** 3

    def estimated_compute_seconds(self) -> float:
        """Compute-only lower bound on execution time."""
        rate = self.params.gflops_per_rank * 1e9 * self.n_units
        return self.total_flops() / rate

    # -- per-step byte counts --------------------------------------------------------
    def _panel_bytes(self, trailing: int) -> int:
        """Bytes of one panel slice held by a single rank (NB columns × m/P rows)."""
        return int(_BYTES_PER_WORD * self.params.block_size * max(trailing, 1) / self.P)

    def _swap_bytes(self, trailing: int) -> int:
        """Bytes of pivoted rows exchanged along a column (NB rows × m/Q local width)."""
        return int(_BYTES_PER_WORD * self.params.block_size * max(trailing, 1) / self.Q)

    def _step_compute_seconds(self, trailing: int, real_steps: int) -> float:
        flops = 2.0 * trailing * trailing * self.params.block_size / (self.P * self.Q)
        return real_steps * flops / (self.params.gflops_per_rank * 1e9)

    # -- script ----------------------------------------------------------------------
    def native_program(self, unit: int) -> Iterator[Op]:
        """Native operation script of grid cell ``unit``."""
        self._check_unit(unit)
        rank = unit
        p = self.params
        row, col = self.coords(rank)
        col_members = self.column_members(col)
        row_members = self.row_members(row)
        my_col_pos = col_members.index(rank)
        my_row_pos = row_members.index(rank)
        col_next = col_members[(my_col_pos + 1) % len(col_members)]
        col_prev = col_members[(my_col_pos - 1) % len(col_members)]

        # The broadcast ring depends only on the owning column, which cycles
        # mod Q: precompute the Q distinct (ring, my position) pairs once
        # instead of rebuilding the list (two .index scans) every panel step.
        rings = []
        for oc in range(self.Q):
            start = row_members.index(self.rank_of(row, oc))
            ring = [row_members[(start + i) % self.Q] for i in range(self.Q)]
            rings.append((ring, ring.index(rank)))

        real_step = 0
        for sim_step, real_count in enumerate(self._chunks):
            mid_step = real_step + real_count // 2
            trailing = max(p.problem_size - mid_step * p.block_size, p.block_size)
            owner_col = sim_step % self.Q
            panel = int(self._panel_bytes(trailing) * p.bcast_fraction) * real_count
            swap = int(self._swap_bytes(trailing) * p.swap_fraction) * real_count

            yield Marker(label=f"step:{sim_step}", data={"trailing": trailing})

            # 1. panel factorisation within the owning column
            if col == owner_col and self.P > 1 and p.factorization_exchanges > 0:
                fact_bytes = max(1, panel // p.factorization_exchanges)
                for _ in range(p.factorization_exchanges):
                    yield SendRecv(dst=col_next, send_nbytes=fact_bytes, src=col_prev, tag=1)
                yield Compute(seconds=self._step_compute_seconds(trailing, real_count) * 0.08,
                              label="panel-fact")

            # 2. panel broadcast along the row (increasing ring, starting at owner_col)
            if self.Q > 1 and panel > 0:
                ring, pos = rings[owner_col]
                if p.row_bcast == "ring":
                    if pos == 0:
                        yield Send(dst=ring[1], nbytes=panel, tag=2)
                    else:
                        yield Recv(src=ring[pos - 1], tag=2)
                        if pos + 1 < self.Q:
                            yield Send(dst=ring[pos + 1], nbytes=panel, tag=2)
                else:
                    # Split-ring ("2-ring") broadcast: the ring is cut into a
                    # forward and a backward arc and the *full* panel travels
                    # along each, so every receiver still gets the whole
                    # panel and total row volume stays (Q-1)×panel — exactly
                    # the increasing ring's.  As the owning column rotates
                    # with the step, every row channel ends up carrying
                    # traffic in both directions — which is what keeps the
                    # RR-piggyback log GC alive on this workload.
                    h_fwd = self.Q // 2
                    h_bwd = (self.Q - 1) // 2
                    right = ring[(pos + 1) % self.Q]
                    left = ring[(pos - 1) % self.Q]
                    if pos == 0:
                        yield Send(dst=right, nbytes=panel, tag=2)
                        if h_bwd > 0:
                            yield Send(dst=left, nbytes=panel, tag=4)
                    elif pos <= h_fwd:
                        yield Recv(src=left, tag=2)
                        if pos < h_fwd:
                            yield Send(dst=right, nbytes=panel, tag=2)
                    else:  # backward arc: positions Q-1 down to Q-h_bwd
                        yield Recv(src=right, tag=4)
                        if pos > self.Q - h_bwd:
                            yield Send(dst=left, nbytes=panel, tag=4)

            # 3. row swaps + U broadcast along every column
            if self.P > 1 and swap > 0:
                yield SendRecv(dst=col_next, send_nbytes=swap, src=col_prev, tag=3)

            # 4. trailing matrix update
            yield Compute(seconds=self._step_compute_seconds(trailing, real_count),
                          label="update")

            real_step += real_count

    def describe(self) -> str:
        """One-line description for reports."""
        p = self.params
        bcast = "" if p.row_bcast == "ring" else f", {p.row_bcast} row bcast"
        return (
            f"HPL N={p.problem_size} NB={p.block_size} on {self.P}x{self.Q} grid "
            f"({self.n_units} ranks, {len(self._chunks)} simulated steps{bcast})"
        )
