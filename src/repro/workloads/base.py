"""Workload interface.

A workload knows, for every rank, (a) the operation script it executes and
(b) the resident memory it uses (which determines the checkpoint image size).
Workloads are deterministic: the same parameters always produce the same
scripts, so experiment repeats differ only through the runtime's seeded noise
streams.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List

from repro.mpi.ops import Op


class Workload:
    """Base class of all workload generators."""

    #: short name used in reports ("hpl", "cg", "sp", ...)
    name: str = "workload"

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.n_ranks = n_ranks

    # -- interface ------------------------------------------------------------
    def program(self, rank: int) -> Iterator[Op]:
        """The operation script executed by ``rank``."""
        raise NotImplementedError  # pragma: no cover - interface

    def memory_bytes(self, rank: int) -> int:
        """Resident set of the application on ``rank`` (bytes)."""
        raise NotImplementedError  # pragma: no cover - interface

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name

    # -- helpers ----------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")

    def program_factory(self) -> Callable[[int], Iterable[Op]]:
        """Factory usable directly by :meth:`repro.mpi.runtime.MpiRuntime.launch`."""
        return self.program

    def memory_map(self) -> List[int]:
        """Memory per rank, indexable by rank (for :meth:`MpiRuntime.set_memory`)."""
        return [self.memory_bytes(rank) for rank in range(self.n_ranks)]

    def total_operations(self, rank: int) -> int:
        """Number of operations in one rank's script (materialises the script)."""
        return sum(1 for _ in self.program(rank))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n_ranks={self.n_ranks}>"


def coarsen_steps(natural_steps: int, max_steps: int) -> List[int]:
    """Partition ``natural_steps`` algorithm steps into at most ``max_steps`` chunks.

    Long-running applications (HPL has N/NB panel steps, NPB runs hundreds of
    iterations) are coarsened so that the simulation executes a bounded number
    of *simulated* steps, each representing a contiguous chunk of real steps.
    Message volumes and compute times are summed over the chunk, so end-to-end
    totals are preserved; only the interleaving granularity is reduced.

    Returns a list whose i-th element is the number of real steps represented
    by simulated step i (non-empty, sums to ``natural_steps``).
    """
    if natural_steps < 1:
        raise ValueError("natural_steps must be >= 1")
    if max_steps < 1:
        raise ValueError("max_steps must be >= 1")
    n_sim = min(natural_steps, max_steps)
    base = natural_steps // n_sim
    extra = natural_steps % n_sim
    return [base + (1 if i < extra else 0) for i in range(n_sim)]
