"""Workload interface: decomposable work + an explicit partition.

A workload describes a rank-count-independent *domain* of work units (see
:mod:`repro.workloads.domain`) — one unit per natural decomposition element,
with its native operation script and resident memory — plus a
:class:`~repro.workloads.domain.Partition` mapping units onto the ranks of
the communicator actually running.  ``program(rank)`` and
``memory_bytes(rank)`` are *derived views* of that pair:

* under the identity partition (the default) rank ``r``'s program **is** unit
  ``r``'s native script, byte-for-byte — existing runs, goldens and
  experiment keys are unaffected by the refactor;
* under any other partition a rank's program is the step-wise merge of its
  units' native scripts with peer references remapped through the partition
  (see :meth:`Workload._merge_units`), which is what elastic shrink/expand
  restart runs on.

Workloads are deterministic: the same parameters always produce the same
scripts, so experiment repeats differ only through the runtime's seeded noise
streams.

Subclasses implement :meth:`native_program` / :meth:`native_memory_bytes`
(the per-unit views).  Legacy subclasses that override :meth:`program` /
:meth:`memory_bytes` directly keep working — they simply never support
non-identity partitions.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.mpi.ops import (
    Allgather,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Isend,
    Marker,
    Op,
    Recv,
    Reduce,
    Send,
    SendRecv,
)
from repro.workloads.domain import Domain, Partition, WorkUnit

_COLLECTIVES = (Allreduce, Allgather, Barrier, Bcast, Reduce)


class _StepStream:
    """Pulls one Marker-delimited step at a time from a native script."""

    __slots__ = ("_it", "_pending", "_done")

    def __init__(self, ops: Iterable[Op]) -> None:
        self._it = iter(ops)
        self._pending: Optional[Op] = None
        self._done = False

    def next_step(self) -> Optional[List[Op]]:
        """The next step's ops (leading Marker included), None when exhausted."""
        if self._done and self._pending is None:
            return None
        step: List[Op] = []
        if self._pending is not None:
            step.append(self._pending)
            self._pending = None
        for op in self._it:
            if isinstance(op, Marker) and step:
                self._pending = op
                return step
            step.append(op)
        self._done = True
        return step if step else None


class Workload:
    """Base class of all workload generators."""

    #: short name used in reports ("hpl", "cg", "sp", ...)
    name: str = "workload"

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        #: number of domain units — fixed at construction, partition-invariant
        self.n_units = n_ranks
        #: communicator size of the current partition (== n_units by default)
        self.n_ranks = n_ranks
        self._partition: Optional[Partition] = None
        self._start_step = 0
        self._domain: Optional[Domain] = None
        #: rank → operation count of the derived script (satellite: programs
        #: are derived views now, so the count is materialised at most once)
        self._total_ops: Dict[int, int] = {}
        #: rank → (step-boundary op indices, script length) of the derived
        #: script, for mapping an op cursor to completed steps
        self._step_layout: Dict[int, Tuple[Tuple[int, ...], int]] = {}

    # -- per-unit interface (implemented by subclasses) -------------------------
    def native_program(self, unit: int) -> Iterator[Op]:
        """The native operation script of domain unit ``unit``."""
        raise NotImplementedError  # pragma: no cover - interface

    def native_memory_bytes(self, unit: int) -> int:
        """Resident set of domain unit ``unit`` (bytes)."""
        raise NotImplementedError  # pragma: no cover - interface

    # -- derived views ----------------------------------------------------------
    def program(self, rank: int) -> Iterator[Op]:
        """The operation script executed by ``rank`` under the partition."""
        part = self._partition
        if part is None or (part.is_identity and self._start_step == 0):
            return self.native_program(rank)
        self._check_rank(rank)
        return self._merge_units(part.units_of(rank), part)

    def memory_bytes(self, rank: int) -> int:
        """Resident set of the application on ``rank`` (bytes)."""
        part = self._partition
        if part is None:
            return self.native_memory_bytes(rank)
        self._check_rank(rank)
        return sum(self.native_memory_bytes(u) for u in part.units_of(rank))

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name

    # -- partition management ---------------------------------------------------
    @property
    def partition(self) -> Partition:
        """The current unit → rank assignment (identity unless set)."""
        if self._partition is None:
            self._partition = Partition.identity(self.n_units)
        return self._partition

    @property
    def start_step(self) -> int:
        """First simulated step the derived programs execute (elastic resume)."""
        return self._start_step

    def set_partition(self, partition: Partition, start_step: int = 0) -> None:
        """Install a new unit → rank assignment (and optional resume step).

        Changes every derived view: ``program``/``memory_bytes`` re-derive
        from the new layout, ``n_ranks`` becomes the partition's communicator
        size, and all materialised caches are dropped.  ``start_step`` makes
        every unit skip its first ``start_step`` steps — the elastic-restart
        resume point (progress up to there lives in the restored images).
        """
        if partition.n_units != self.n_units:
            raise ValueError(
                f"partition covers {partition.n_units} units, "
                f"workload has {self.n_units}")
        if start_step < 0:
            raise ValueError("start_step must be non-negative")
        self._partition = partition
        self._start_step = start_step
        self.n_ranks = partition.n_ranks
        self._total_ops.clear()
        self._step_layout.clear()

    def domain(self) -> Domain:
        """The rank-count-independent work description (scanned once).

        Unit totals are derived from the native scripts, so any partition of
        the same domain conserves them by construction.
        """
        if self._domain is None:
            units = []
            for uid in range(self.n_units):
                compute = 0.0
                msg_bytes = 0
                steps = 0
                for op in self.native_program(uid):
                    if isinstance(op, Compute):
                        compute += op.seconds
                    elif isinstance(op, (Send, Isend)):
                        msg_bytes += op.nbytes
                    elif isinstance(op, SendRecv):
                        msg_bytes += op.send_nbytes
                    elif isinstance(op, Marker):
                        steps += 1
                units.append(WorkUnit(
                    uid=uid,
                    compute_seconds=compute,
                    memory_bytes=self.native_memory_bytes(uid),
                    message_bytes=msg_bytes,
                    steps=steps,
                ))
            self._domain = Domain(tuple(units))
        return self._domain

    def domain_progress(self, rank: int, op_index: int) -> Dict[int, int]:
        """Completed steps per unit owned by ``rank`` at op cursor ``op_index``.

        This is the ``domain_state`` payload checkpoint images carry: the
        merged derived program keeps a rank's units step-aligned, so every
        owned unit shares the rank's completed-step count.  Steps already
        skipped via ``start_step`` count as completed (their effects live in
        the restored image the resume came from).
        """
        boundaries, length = self._layout(rank)
        completed = bisect_right(boundaries, min(op_index, length))
        return {u: self._start_step + completed
                for u in self.partition.units_of(rank)}

    def _layout(self, rank: int) -> Tuple[Tuple[int, ...], int]:
        """Step-end op indices and total length of ``rank``'s derived script."""
        cached = self._step_layout.get(rank)
        if cached is not None:
            return cached
        marker_at: List[int] = []
        length = 0
        for i, op in enumerate(self.program(rank)):
            if isinstance(op, Marker):
                marker_at.append(i)
            length = i + 1
        # step k spans [marker_k, marker_{k+1}); the last step ends at the
        # script end.  A script without markers is one single step.
        if marker_at:
            boundaries = tuple(marker_at[1:]) + (length,)
        else:
            boundaries = (length,) if length else ()
        self._total_ops.setdefault(rank, length)
        self._step_layout[rank] = (boundaries, length)
        return boundaries, length

    # -- step-merged derived programs -------------------------------------------
    def _merge_units(
        self, units: Tuple[int, ...], part: Partition
    ) -> Iterator[Op]:
        """Merge the units' native scripts into one deadlock-free rank script.

        Step-by-step (Marker-delimited), each merged step emits one marker,
        then every unit's compute, then every send, then every receive — all
        peer references remapped through the partition.  Phasing all sends
        before all receives keeps arbitrary unit co-location deadlock-free
        (a blocking ``Send`` never waits on its receiver in this runtime);
        exchanges between co-located units become self-sends, so message
        totals are conserved exactly.  Collectives shared by every unit
        (e.g. CG's allreduce) are deduplicated to one per rank per step over
        the partition's active ranks.
        """
        owner = part.owner
        active = part.active_ranks()
        streams = [_StepStream(self.native_program(u)) for u in units]
        skip = self._start_step
        while True:
            steps = [s.next_step() for s in streams]
            live = [st for st in steps if st is not None]
            if not live:
                return
            if skip > 0:
                skip -= 1
                continue
            marker = next((op for st in live for op in st
                           if isinstance(op, Marker)), None)
            if marker is not None:
                yield marker
            sends: List[Op] = []
            recvs: List[Op] = []
            collectives: List[Op] = []
            for st in live:
                for op in st:
                    if isinstance(op, Marker):
                        continue
                    if isinstance(op, Send):
                        sends.append(replace(op, dst=owner[op.dst]))
                    elif isinstance(op, Isend):
                        sends.append(replace(op, dst=owner[op.dst]))
                    elif isinstance(op, SendRecv):
                        sends.append(Isend(dst=owner[op.dst],
                                           nbytes=op.send_nbytes, tag=op.tag))
                        recvs.append(Recv(
                            src=owner[op.src] if op.src is not None else None,
                            tag=op.tag))
                    elif isinstance(op, Recv):
                        recvs.append(replace(
                            op,
                            src=owner[op.src] if op.src is not None else None))
                    elif isinstance(op, _COLLECTIVES):
                        collectives.append(op)
                    else:
                        # Compute, Wait, and any local op: emitted up front
                        yield op
            yield from sends
            yield from recvs
            seen: List[Op] = []
            for op in collectives:
                if op in seen:
                    continue
                seen.append(op)
                yield replace(op, participants=active)

    # -- helpers ----------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")

    def _check_unit(self, unit: int) -> None:
        if not 0 <= unit < self.n_units:
            raise ValueError(f"unit {unit} outside [0, {self.n_units})")

    def program_factory(self) -> Callable[[int], Iterable[Op]]:
        """Factory usable directly by :meth:`repro.mpi.runtime.MpiRuntime.launch`."""
        return self.program

    def memory_map(self) -> List[int]:
        """Memory per rank, indexable by rank (for :meth:`MpiRuntime.set_memory`)."""
        return [self.memory_bytes(rank) for rank in range(self.n_ranks)]

    def total_operations(self, rank: int) -> int:
        """Number of operations in one rank's script (materialised once)."""
        cached = self._total_ops.get(rank)
        if cached is None:
            cached = self._total_ops[rank] = sum(1 for _ in self.program(rank))
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n_ranks={self.n_ranks}>"


def coarsen_steps(natural_steps: int, max_steps: int) -> List[int]:
    """Partition ``natural_steps`` algorithm steps into at most ``max_steps`` chunks.

    Long-running applications (HPL has N/NB panel steps, NPB runs hundreds of
    iterations) are coarsened so that the simulation executes a bounded number
    of *simulated* steps, each representing a contiguous chunk of real steps.
    Message volumes and compute times are summed over the chunk, so end-to-end
    totals are preserved; only the interleaving granularity is reduced.

    Returns a list whose i-th element is the number of real steps represented
    by simulated step i (non-empty, sums to ``natural_steps``).
    """
    if natural_steps < 1:
        raise ValueError("natural_steps must be >= 1")
    if max_steps < 1:
        raise ValueError("max_steps must be >= 1")
    n_sim = min(natural_steps, max_steps)
    base = natural_steps // n_sim
    extra = natural_steps % n_sim
    return [base + (1 if i < extra else 0) for i in range(n_sim)]
