"""Group-based checkpoint/restart — the paper's primary contribution.

* :mod:`repro.core.groups` — group definitions (:class:`GroupSet`) and the
  standard configurations used in the evaluation (NORM, GP1, GP4, GP),
* :mod:`repro.core.protocol` — Algorithm 1: coordinated checkpointing within
  a group combined with sender-based logging of inter-group messages,
  piggybacked garbage collection, and the per-group checkpoint procedure,
* :mod:`repro.core.formation` — Algorithm 2: trace-assisted group formation,
* :mod:`repro.core.coordinator` — the mpirun-style checkpoint coordinator
  that propagates checkpoint requests to groups,
* :mod:`repro.core.restart` — restart orchestration: image restore, exchange
  of S/R volumes with out-of-group processes, message replay/skip.
"""

from repro.core.groups import GroupSet
from repro.core.protocol import GroupProtocolFamily, GroupRankProtocol
from repro.core.formation import form_groups, FormationResult, grouping_quality
from repro.core.coordinator import CheckpointCoordinator
from repro.core.restart import simulate_restart, RestartResult, replay_volumes

__all__ = [
    "GroupSet",
    "GroupProtocolFamily",
    "GroupRankProtocol",
    "form_groups",
    "FormationResult",
    "grouping_quality",
    "CheckpointCoordinator",
    "simulate_restart",
    "RestartResult",
    "replay_volumes",
]
