"""Algorithm 2 — trace-assisted group formation.

The algorithm takes the send records of an MPI trace, aggregates them per
unordered process pair, sorts the pairs by total size (then message count)
in descending order, and greedily merges pairs into groups subject to a
maximum group size ``G`` (default ⌈√n⌉).  Unrelated processes are never
forced into the same group, so the resulting groups may be smaller than
``G`` and of unequal sizes — exactly the behaviour the paper describes.

The merge rules are implemented verbatim from the paper's pseudocode:

* neither endpoint grouped yet → the pair becomes a new group,
* one endpoint grouped → merge the pair into that group if the size allows,
* both endpoints in the same group → nothing to do (traffic is accounted),
* both endpoints in different groups → merge the two groups if the combined
  size allows, otherwise the tuple is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.groups import GroupSet, default_max_group_size, intra_group_traffic_fraction
from repro.mpi.trace import TraceLog


@dataclass
class _WorkingGroup:
    """Mutable group accumulator used while the algorithm runs."""

    members: set = field(default_factory=set)
    messages: int = 0
    bytes: int = 0


@dataclass(frozen=True)
class FormationResult:
    """Outcome of a group-formation run.

    Attributes
    ----------
    groupset:
        The resulting partition (every rank covered; unmatched ranks are
        singletons).
    max_group_size:
        The ``G`` bound that was applied.
    intra_fraction:
        Fraction of traced bytes that stay within a group (higher = fewer
        logged messages).
    pair_count:
        Number of distinct communicating pairs seen in the trace.
    merged_pairs / skipped_pairs:
        How many pairs were absorbed into groups vs skipped because merging
        would have exceeded ``G``.
    """

    groupset: GroupSet
    max_group_size: int
    intra_fraction: float
    pair_count: int
    merged_pairs: int
    skipped_pairs: int

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.groupset.describe()}; G={self.max_group_size}, "
            f"intra-group traffic {100.0 * self.intra_fraction:.1f}%"
        )


def form_groups(
    trace: TraceLog,
    max_group_size: Optional[int] = None,
    n_ranks: Optional[int] = None,
) -> FormationResult:
    """Run Algorithm 2 on ``trace`` and return the suggested group formation.

    Parameters
    ----------
    trace:
        MPI trace containing the send records.
    max_group_size:
        Upper bound ``G`` on the group size.  Defaults to ⌈√n⌉ as in the
        paper; it can be raised on faster networks or lowered on slow ones.
    n_ranks:
        Total number of processes ``n``; defaults to the number of ranks
        observed in the trace.
    """
    n = n_ranks if n_ranks is not None else trace.n_ranks
    if n < 1:
        raise ValueError("cannot form groups for an empty trace; pass n_ranks explicitly")
    G = max_group_size if max_group_size is not None else default_max_group_size(n)
    if G < 1:
        raise ValueError("max_group_size must be >= 1")

    # Preprocessing: aggregate send records per unordered pair, then sort the
    # tuple list descending by size, then by count, then by ranks (for
    # deterministic tie-breaking).
    totals = trace.pair_totals()
    pairs: List[Tuple[Tuple[int, int], int, int]] = [
        (pair, count, size) for pair, (count, size) in totals.items() if pair[0] != pair[1]
    ]
    pairs.sort(key=lambda item: (-item[2], -item[1], item[0]))

    groups: List[_WorkingGroup] = []
    index_of: Dict[int, _WorkingGroup] = {}
    merged = 0
    skipped = 0

    def find(rank: int) -> Optional[_WorkingGroup]:
        return index_of.get(rank)

    for (p1, p2), count, size in pairs:
        r1 = find(p1)
        r2 = find(p2)
        if r1 is None and r2 is None:
            if G < 2:
                # a group-size bound below two degenerates to no grouping at all
                skipped += 1
                continue
            group = _WorkingGroup(members={p1, p2}, messages=count, bytes=size)
            groups.append(group)
            index_of[p1] = group
            index_of[p2] = group
            merged += 1
        elif r2 is None and r1 is not None:
            if len(r1.members | {p2}) <= G:
                r1.members.add(p2)
                r1.messages += count
                r1.bytes += size
                index_of[p2] = r1
                merged += 1
            else:
                skipped += 1
        elif r1 is None and r2 is not None:
            if len(r2.members | {p1}) <= G:
                r2.members.add(p1)
                r2.messages += count
                r2.bytes += size
                index_of[p1] = r2
                merged += 1
            else:
                skipped += 1
        elif r1 is r2:
            assert r1 is not None
            r1.messages += count
            r1.bytes += size
            merged += 1
        else:
            assert r1 is not None and r2 is not None
            if len(r1.members | r2.members) <= G:
                r1.members |= r2.members
                r1.messages += r2.messages + count
                r1.bytes += r2.bytes + size
                for rank in r2.members:
                    index_of[rank] = r1
                groups.remove(r2)
                merged += 1
            else:
                skipped += 1

    groupset = GroupSet.from_lists([sorted(g.members) for g in groups], n_ranks=n)
    pair_bytes = {pair: size for pair, (_, size) in totals.items()}
    intra = intra_group_traffic_fraction(groupset, pair_bytes)
    return FormationResult(
        groupset=groupset,
        max_group_size=G,
        intra_fraction=intra,
        pair_count=len(pairs),
        merged_pairs=merged,
        skipped_pairs=skipped,
    )


def grouping_quality(groupset: GroupSet, trace: TraceLog) -> Dict[str, float]:
    """Quality metrics of an arbitrary grouping against a trace.

    Returns a dictionary with:

    * ``intra_fraction`` — fraction of bytes kept inside groups,
    * ``logged_bytes`` — bytes that would be logged (inter-group traffic),
    * ``logged_messages`` — messages that would be logged,
    * ``max_group_size`` / ``mean_group_size`` — size statistics.
    """
    pair_totals = trace.pair_totals()
    logged_bytes = 0
    logged_msgs = 0
    for (a, b), (count, size) in pair_totals.items():
        if a == b:
            continue
        if not groupset.same_group(a, b):
            logged_bytes += size
            logged_msgs += count
    pair_bytes = {pair: size for pair, (_, size) in pair_totals.items()}
    return {
        "intra_fraction": intra_group_traffic_fraction(groupset, pair_bytes),
        "logged_bytes": float(logged_bytes),
        "logged_messages": float(logged_msgs),
        "max_group_size": float(groupset.max_group_size),
        "mean_group_size": float(groupset.mean_group_size),
    }


def phased_group_formation(
    trace: TraceLog,
    n_phases: int,
    max_group_size: Optional[int] = None,
    n_ranks: Optional[int] = None,
) -> List[FormationResult]:
    """Form groups separately for successive phases of the execution.

    The paper's future-work section notes that the communication pattern can
    change between application stages, suggesting per-phase group formations.
    This helper splits the trace into ``n_phases`` equal time windows and
    runs Algorithm 2 on each, so the change in suggested grouping over time
    can be inspected.
    """
    if n_phases < 1:
        raise ValueError("n_phases must be >= 1")
    if len(trace) == 0:
        raise ValueError("cannot split an empty trace into phases")
    t_start = min(r.timestamp for r in trace)
    t_end = max(r.timestamp for r in trace)
    span = max(t_end - t_start, 1e-9)
    results: List[FormationResult] = []
    for i in range(n_phases):
        lo = t_start + span * i / n_phases
        hi = t_start + span * (i + 1) / n_phases
        if i == n_phases - 1:
            hi = t_end + 1e-9
        window = trace.time_window(lo, hi)
        if len(window) == 0:
            # An idle phase keeps the previous suggestion (or singletons if first).
            if results:
                results.append(results[-1])
            continue
        results.append(form_groups(window, max_group_size=max_group_size, n_ranks=n_ranks or trace.n_ranks))
    return results
