"""The mpirun-style checkpoint coordinator.

In the paper, ``mpirun`` receives checkpoint requests from the system or the
user and propagates them to the MPI processes; for the group-based scheme it
reads a *checkpoint target file* naming the group(s) to checkpoint and spawns
one child per group so that request propagation and completion tracking stay
per-group.  After all groups finish, mpirun checkpoints itself (not timed by
the paper, and not timed here either).

:class:`CheckpointCoordinator` reproduces that control flow as a simulation
process: at every scheduled request time it snapshots the still-running ranks,
splits them into groups according to the protocol family, and delivers one
:class:`~repro.ckpt.base.CheckpointRequest` per rank.  Requests carry a small
per-member stagger that models the sequential propagation inside a group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.ckpt.base import CheckpointRequest
from repro.ckpt.scheduler import CheckpointSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ckpt.base import ProtocolFamily
    from repro.mpi.runtime import MpiRuntime
    from repro.sim.primitives import Event


@dataclass
class IssuedCheckpoint:
    """Book-keeping entry for one issued checkpoint request wave."""

    ckpt_id: int
    requested_at: float
    target_ranks: Tuple[int, ...]
    groups: Tuple[Tuple[int, ...], ...]


@dataclass
class CoordinatorReport:
    """Summary of the coordinator's activity over a run."""

    issued: List[IssuedCheckpoint] = field(default_factory=list)
    skipped_waves: int = 0
    deferred_waves: int = 0
    #: colliding periodic ticks held back and issued once the wave cleared
    #: (``dispatch_policy="queue"`` only)
    queued_waves: int = 0
    #: per-group ticks dropped because that group was mid-recovery — the
    #: rest of the wave proceeded instead of queueing behind the recovery
    skipped_in_recovery: int = 0

    @property
    def checkpoints_requested(self) -> int:
        """Number of checkpoint waves issued."""
        return len(self.issued)


class CheckpointCoordinator:
    """Delivers checkpoint requests to ranks according to a schedule."""

    def __init__(
        self,
        runtime: "MpiRuntime",
        family: "ProtocolFamily",
        schedule: CheckpointSchedule,
        propagation_delay_s: float = 0.012,
        group_spawn_delay_s: float = 0.015,
        target_groups: Optional[Sequence[int]] = None,
        back_pressure: bool = True,
        dispatch_policy: str = "drop",
    ) -> None:
        """
        Parameters
        ----------
        runtime:
            The MPI runtime whose ranks will receive the requests.
        family:
            Protocol family (defines which ranks coordinate together).
        schedule:
            When to issue checkpoint requests.
        propagation_delay_s:
            Per-member propagation delay inside a group (the request reaches
            the *i*-th member of its group ``i * propagation_delay_s`` later).
        group_spawn_delay_s:
            Delay between mpirun spawning the propagation child of successive
            groups.  With many groups (GP1 has one per rank) the request wave
            is noticeably staggered, which is what lets early-notified ranks
            checkpoint while late ones are still sending — the source of the
            replay volumes measured in Figures 7/8.
        target_groups:
            Optional subset of group ids to checkpoint (the "checkpoint target
            file" of the paper); None means every group.
        back_pressure:
            Don't start a new wave while a previous one is still in flight
            (some rank checkpointing or holding an unconsumed request), as a
            real dispatcher would.  Without it, a periodic interval below the
            wave duration piles requests onto the ranks, the application is
            starved of compute time and its makespan diverges — the sweep
            effectively never terminates.  *Periodic* ticks that collide are
            dropped (counted in ``report.skipped_waves``); *explicitly
            scheduled* times (``schedule.times``) are deferred until the wave
            clears and then issued (counted in ``report.deferred_waves``), so
            forced-equal-count schedules — the Figure 13/14 fairness setup —
            never lose a checkpoint.
        dispatch_policy:
            What a *periodic* tick does when it collides with an in-flight
            wave under back-pressure.  ``"drop"`` (default, the behaviour the
            seed suite calibrated QUICK intervals against) discards the tick;
            ``"queue"`` holds it back and issues it as soon as the wave
            clears, so no requested wave is ever lost — the alternative
            dispatcher policy for Figure 10-style checkpoint-frequency
            comparisons.  Queued ticks count in ``report.queued_waves``.
            With an unbounded periodic schedule whose interval is below the
            wave duration, ``"queue"`` back-to-backs waves and starves the
            application exactly like ``back_pressure=False`` would — bound
            the schedule (``max_checkpoints``) when using it.
        """
        if propagation_delay_s < 0:
            raise ValueError("propagation_delay_s must be non-negative")
        if group_spawn_delay_s < 0:
            raise ValueError("group_spawn_delay_s must be non-negative")
        if dispatch_policy not in ("drop", "queue"):
            raise ValueError(f"unknown dispatch_policy {dispatch_policy!r}; "
                             "expected 'drop' or 'queue'")
        self.runtime = runtime
        # Ranks only need to watch for checkpoint signals while blocked in a
        # receive when a request source exists; telling the runtime up front
        # lets signal-free runs elide the per-receive wake condition.
        runtime.attach_checkpoint_source()
        self.family = family
        self.schedule = schedule
        self.propagation_delay_s = propagation_delay_s
        self.group_spawn_delay_s = group_spawn_delay_s
        self.target_groups = set(target_groups) if target_groups is not None else None
        self.back_pressure = back_pressure
        self.dispatch_policy = dispatch_policy
        self.report = CoordinatorReport()
        self._next_ckpt_id = 0
        self._process = None

    # -- one wave -----------------------------------------------------------------
    def issue_wave(self) -> Optional[IssuedCheckpoint]:
        """Issue one checkpoint request wave right now.

        Returns the book-keeping entry, or None if no rank is eligible
        (everything finished or filtered out by ``target_groups``).
        """
        running = self.runtime.running_ranks()
        if not running:
            self.report.skipped_waves += 1
            return None

        # Partition the running ranks into coordination groups.
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for rank in running:
            if self.target_groups is not None:
                if self.family.group_id_of(rank) not in self.target_groups:
                    continue
            participants = self.family.participants_for(rank, running)
            groups.setdefault(participants, []).append(rank)
        # Recovery-aware scheduling: a group that is mid-recovery (some member
        # killed, rolled back or not yet relaunched) skips *its own* tick —
        # mpirun does not ask a group to checkpoint while restoring it — and
        # the rest of the wave proceeds instead of queueing behind it.
        recovering = [
            participants for participants in groups
            if any(self.runtime.ctx(r).in_recovery or self.runtime.ctx(r).failed
                   for r in participants)
        ]
        for participants in recovering:
            del groups[participants]
            self.report.skipped_in_recovery += 1
        if not groups:
            self.report.skipped_waves += 1
            return None

        ckpt_id = self._next_ckpt_id
        self._next_ckpt_id += 1
        now = self.runtime.now
        issued_groups: List[Tuple[int, ...]] = []
        target_ranks: List[int] = []
        max_stagger = 0.0
        ordered_groups = sorted(groups.items(), key=lambda item: item[0])
        for group_idx, (participants, members) in enumerate(ordered_groups):
            issued_groups.append(participants)
            spawn_offset = group_idx * self.group_spawn_delay_s
            for idx, rank in enumerate(sorted(members)):
                stagger = spawn_offset + idx * self.propagation_delay_s
                if stagger > max_stagger:
                    max_stagger = stagger
                request = CheckpointRequest(
                    ckpt_id=ckpt_id,
                    group_id=self.family.group_id_of(rank),
                    participants=participants,
                    issued_at=now,
                    stagger_s=stagger,
                )
                self.runtime.ctx(rank).deliver_request(request)
                target_ranks.append(rank)

        entry = IssuedCheckpoint(
            ckpt_id=ckpt_id,
            requested_at=now,
            target_ranks=tuple(sorted(target_ranks)),
            groups=tuple(issued_groups),
        )
        self.report.issued.append(entry)
        if self.runtime.telemetry_tracing:
            # the request fan-out window: issuance → last staggered delivery
            self.runtime.telemetry.tracer.add(
                "wave_request", start=now, end=now + max_stagger,
                track="coordinator", category="ckpt",
                ckpt_id=ckpt_id, groups=len(issued_groups),
                ranks=len(target_ranks))
        return entry

    def wave_in_flight(self) -> bool:
        """True while any running rank is still busy with an earlier request.

        A group that is merely mid-recovery does *not* hold the wave back:
        :meth:`issue_wave` skips that group's tick (counted in
        ``report.skipped_in_recovery``) and checkpoints everyone else, so a
        long recovery no longer starves the healthy groups of checkpoints.
        """
        for rank in self.runtime.running_ranks():
            ctx = self.runtime.ctx(rank)
            if ctx.in_checkpoint or ctx.has_pending_request():
                return True
        return False

    # -- scheduled operation ---------------------------------------------------------
    _DEFER_POLL_S = 0.05

    def _run(self) -> Generator["Event", None, None]:
        explicit_times = set(self.schedule.times)
        for t in self.schedule.iterate():
            delay = t - self.runtime.now
            if delay > 0:
                yield self.runtime.sim.timeout(delay)
            if not self.runtime.running_ranks():
                break
            if self.back_pressure and self.wave_in_flight():
                if t in explicit_times or self.dispatch_policy == "queue":
                    # Explicit request times must all land (equal-checkpoint-
                    # count comparisons depend on it), and the queue policy
                    # extends the same guarantee to periodic ticks: wait the
                    # wave out, then issue.
                    if t in explicit_times:
                        self.report.deferred_waves += 1
                    else:
                        self.report.queued_waves += 1
                    while self.wave_in_flight():
                        yield self.runtime.sim.timeout(self._DEFER_POLL_S)
                        if not self.runtime.running_ranks():
                            return
                else:
                    self.report.skipped_waves += 1
                    continue
            self.issue_wave()

    def start(self) -> None:
        """Register the coordinator as a simulation process (call before running)."""
        if self._process is not None:
            raise RuntimeError("coordinator already started")
        self._process = self.runtime.sim.process(self._run(), name="mpirun-coordinator")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CheckpointCoordinator family={self.family.name!r} "
            f"issued={self.report.checkpoints_requested}>"
        )
