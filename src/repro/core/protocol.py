"""Algorithm 1 — the group-based checkpoint/restart protocol.

Per-rank behaviour, following the paper's pseudocode verbatim:

* **At process start** the rank reads the group definition and identifies its
  own group members.
* **On sending to P**: if P is outside the group, the message is logged
  asynchronously by the sender; if it is the first message to P after a
  checkpoint, the recorded ``RR_P`` value is piggybacked so P can garbage
  collect its own log for this channel.  ``S_P`` is updated either way.
* **On receiving from P**: ``R_P`` is updated; a piggybacked value triggers
  garbage collection of the log kept for P.
* **On a group checkpoint request**: message logs are synchronised (flushed),
  ``RR_Q`` is recorded for every out-of-group process Q, the group coordinates
  (bookmark exchange + drain of intra-group in-transit messages + barrier),
  every member writes its image, and members wait for each other before
  resuming.
* **On restart** (orchestrated by :mod:`repro.core.restart`): out-of-group
  pairs exchange ``R``/``S`` volumes and messages are replayed or skipped.

The NORM, GP1 and GP4 configurations of the paper's evaluation are this same
protocol with different :class:`~repro.core.groups.GroupSet`\\ s (one global
group, singletons, and four contiguous blocks respectively).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Set, Tuple, TYPE_CHECKING

from repro.ckpt.base import (
    STAGE_CHECKPOINT,
    STAGE_COORDINATION,
    STAGE_FINALIZE,
    STAGE_LOCK_MPI,
    CheckpointRecord,
    CheckpointRequest,
    CheckpointSnapshot,
    ProtocolConfig,
    ProtocolFamily,
    RankProtocol,
)
from repro.ckpt.blcr import BlcrModel
from repro.ckpt.logstore import SenderLog
from repro.core.groups import GroupSet
from repro.mpi.runtime import CONTROL_TAG_BASE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.messages import Message
    from repro.mpi.runtime import MpiRuntime, RankContext
    from repro.sim.primitives import Event


# Control-message tag layout: one block of tags per checkpoint id.
_TAGS_PER_CKPT = 8
_TAG_BOOKMARK = 1
_TAG_READY = 2
_TAG_GO = 3
_TAG_DONE = 4
_TAG_RESUME = 5


def _ctrl_tag(ckpt_id: int, which: int) -> int:
    return CONTROL_TAG_BASE + ckpt_id * _TAGS_PER_CKPT + which


class GroupRankProtocol(RankProtocol):
    """Per-rank instance of the group-based protocol."""

    name = "group"

    def __init__(
        self,
        family: "GroupProtocolFamily",
        ctx: "RankContext",
        runtime: "MpiRuntime",
    ) -> None:
        super().__init__(family, ctx, runtime)
        self.groups: GroupSet = family.groups
        self.group_members: Tuple[int, ...] = self.groups.members(ctx.rank)
        self.group_id: int = self.groups.group_index_of(ctx.rank)
        self.config: ProtocolConfig = family.config
        self.blcr: BlcrModel = family.blcr
        self.log = SenderLog(ctx.rank)
        #: RR values recorded at the latest *safe* checkpoint (per out-of-group
        #: peer) — the values piggybacked for the peers' log GC.  A checkpoint
        #: only becomes the GC point once the storage hierarchy reports all of
        #: its copies materialised (immediately for single-tier configs).
        self.rr_recorded: Dict[int, int] = {}
        #: checkpoint epoch counter and the epoch at which each peer last got a piggyback
        self._ckpt_epoch = 0
        self._piggyback_epoch: Dict[int, int] = {}
        #: newest checkpoint id adopted as the GC point, and the rollback
        #: generation (a pending adoption from before a rollback is void)
        self._gc_ckpt_id = -1
        self._rollback_gen = 0
        #: counts for reporting
        self.logged_messages = 0
        self.piggybacks_sent = 0
        self.gc_invocations = 0

    # -- membership helpers ---------------------------------------------------
    def in_group(self, rank: int) -> bool:
        """True if ``rank`` is in this process's checkpoint group."""
        return rank in self.group_members

    def out_of_group_peers(self) -> Set[int]:
        """Out-of-group processes this rank has exchanged data with."""
        return {p for p in self.ctx.account.peers() if not self.in_group(p)}

    # -- send / receive hooks ---------------------------------------------------
    def on_send(self, dst: int, nbytes: int, tag: int) -> Tuple[float, Optional[Dict[str, Any]]]:
        """Log inter-group messages and piggyback RR on the first post-checkpoint send."""
        if self.in_group(dst):
            return 0.0, None
        end_offset = self.ctx.account.sent_to(dst) + nbytes
        self.log.append(dst, nbytes, end_offset, self.runtime.now, tag=tag)
        self.logged_messages += 1
        extra = nbytes / self.config.log_copy_bandwidth + self.config.log_entry_overhead_s
        piggyback: Optional[Dict[str, Any]] = None
        if self._piggyback_epoch.get(dst, -1) < self._ckpt_epoch and self._ckpt_epoch > 0:
            piggyback = {"rr": self.rr_recorded.get(dst, 0)}
            self._piggyback_epoch[dst] = self._ckpt_epoch
            self.piggybacks_sent += 1
        return extra, piggyback

    def on_arrival(self, message: "Message") -> None:
        """Garbage-collect the log for the sender using a piggybacked RR value."""
        piggyback = message.piggyback
        if piggyback is not None and "rr" in piggyback:
            self.log.garbage_collect(message.src, int(piggyback["rr"]))
            self.gc_invocations += 1

    # -- checkpoint procedure ----------------------------------------------------
    def _group_barrier(
        self, participants: Tuple[int, ...], ready_tag: int, go_tag: int
    ) -> Generator["Event", Any, None]:
        """A leader-based barrier over ``participants`` using control messages."""
        rank = self.ctx.rank
        others = [p for p in participants if p != rank]
        if not others:
            return
        leader = min(participants)
        if rank == leader:
            for _ in others:
                yield from self.runtime.control_recv(self.ctx, tag=ready_tag)
            for peer in others:
                yield from self.runtime.control_send(self.ctx, peer, tag=go_tag)
        else:
            yield from self.runtime.control_send(self.ctx, leader, tag=ready_tag)
            yield from self.runtime.control_recv(self.ctx, src=leader, tag=go_tag)

    def checkpoint(self, request: CheckpointRequest) -> Generator["Event", Any, CheckpointRecord]:
        """Run the group-coordinated checkpoint (Algorithm 1, checkpoint part)."""
        runtime = self.runtime
        ctx = self.ctx
        cfg = self.config
        rng = runtime.rng
        participants = tuple(sorted(request.participants))
        others = [p for p in participants if p != ctx.rank]
        stages: Dict[str, float] = {}
        start = runtime.now

        # ----- Lock MPI: library quiesce (the propagation delay already elapsed
        # before the request became visible to this rank) ------------------------
        t0 = runtime.now
        if cfg.lock_mpi_s > 0:
            yield runtime.sim.timeout(cfg.lock_mpi_s)
        stages[STAGE_LOCK_MPI] = runtime.now - t0

        # ----- Coordination: flush logs, bookmarks, drain, entry barrier --------
        # Logging is asynchronous, so only the unflushed tail (bounded by the
        # in-memory log buffer) needs a synchronous flush here.
        t0 = runtime.now
        flushed = min(self.log.mark_flushed(), cfg.log_flush_buffer_bytes)
        if flushed > 0:
            yield from runtime.storage_write(ctx, flushed)

        # Bookmark exchange: tell every group member how much we sent to them.
        bookmark_tag = _ctrl_tag(request.ckpt_id, _TAG_BOOKMARK)
        for peer in others:
            yield from runtime.control_send(
                ctx, peer, tag=bookmark_tag, payload=ctx.account.sent_to(peer)
            )

        # Per-channel quiesce work (crtcp bookmark handling, TCP drain) and the
        # occasional stall — the term that makes global coordination expensive.
        quiesce = len(others) * cfg.per_channel_quiesce_s
        for peer in others:
            if cfg.channel_stall_probability > 0 and rng.bernoulli(
                f"ckpt-stall:rank{ctx.rank}", cfg.channel_stall_probability
            ):
                quiesce += rng.exponential(f"ckpt-stall-len:rank{ctx.rank}", cfg.channel_stall_s)
        if cfg.unexpected_delay_probability > 0 and rng.bernoulli(
            f"ckpt-delay:rank{ctx.rank}", cfg.unexpected_delay_probability
        ):
            quiesce += rng.exponential(f"ckpt-delay-len:rank{ctx.rank}", cfg.unexpected_delay_s)
        if quiesce > 0:
            yield runtime.sim.timeout(quiesce)

        # Receive every member's bookmark and drain in-transit intra-group data.
        for _ in others:
            msg = yield from runtime.control_recv(ctx, tag=bookmark_tag)
            announced = int(msg.payload or 0)
            yield ctx.wait_for_received(msg.src, announced)

        # Entry barrier: all members ready to dump.
        yield from self._group_barrier(
            participants,
            _ctrl_tag(request.ckpt_id, _TAG_READY),
            _ctrl_tag(request.ckpt_id, _TAG_GO),
        )
        stages[STAGE_COORDINATION] = runtime.now - t0

        # ----- Checkpoint: record RR/SS and dump the image ------------------------
        t0 = runtime.now
        rr = ctx.account.snapshot_received()
        ss = ctx.account.snapshot_sent()
        resume = runtime.capture_resume(ctx)
        new_rr_recorded = {p: rr.get(p, 0) for p in self.out_of_group_peers()}
        image_bytes = self.blcr.image_bytes(ctx.memory_bytes)
        if self.blcr.dump_fork_s > 0:
            yield runtime.sim.timeout(self.blcr.dump_fork_s)
        tiers = yield from runtime.checkpoint_image_write(ctx, request.ckpt_id, image_bytes)
        if resume is not None:
            resume.protocol_state = {
                "rr_recorded": dict(new_rr_recorded),
                "ckpt_epoch": self._ckpt_epoch + 1,
                "piggyback_epoch": dict(self._piggyback_epoch),
            }
        self._record_snapshot(CheckpointSnapshot(
            rank=ctx.rank,
            ckpt_id=request.ckpt_id,
            time=runtime.now,
            group_id=self.group_id,
            group_members=self.group_members,
            ss=ss,
            rr=rr,
            logged_bytes=self.log.bytes_by_destination(),
            logged_messages=self.log.messages_by_destination(),
            image_bytes=image_bytes,
            resume=resume,
            tiers=tiers,
        ))
        # This checkpoint becomes the peers' log-GC point only once every
        # scheduled copy of its image exists (immediately when nothing is
        # async): until the partner replica has drained, a failure still
        # rolls back to the *previous* checkpoint, whose replay bytes the
        # peers must therefore keep.
        runtime.cluster.hierarchy.on_image_safe(
            ctx.rank, request.ckpt_id,
            _GcAdoption(self, request.ckpt_id, new_rr_recorded,
                        self._rollback_gen))
        stages[STAGE_CHECKPOINT] = runtime.now - t0

        # ----- Finalize: exit barrier and resume --------------------------------
        t0 = runtime.now
        yield from self._group_barrier(
            participants,
            _ctrl_tag(request.ckpt_id, _TAG_DONE),
            _ctrl_tag(request.ckpt_id, _TAG_RESUME),
        )
        if cfg.finalize_s > 0:
            yield runtime.sim.timeout(cfg.finalize_s)
        stages[STAGE_FINALIZE] = runtime.now - t0

        return CheckpointRecord(
            rank=ctx.rank,
            ckpt_id=request.ckpt_id,
            group_id=request.group_id,
            start=start,
            end=runtime.now,
            stages=stages,
            image_bytes=image_bytes,
            log_bytes_flushed=flushed,
            group_size=len(participants),
        )

    # -- GC-point adoption --------------------------------------------------------
    def _adopt_gc_point(self, ckpt_id: int, rr_recorded: Dict[int, int],
                        rollback_gen: int) -> None:
        """Make checkpoint ``ckpt_id`` the log-GC point (its image is safe).

        Ignored when a rollback happened since the adoption was registered
        (the checkpoint belongs to a discarded timeline) or when a newer
        checkpoint already adopted.
        """
        if rollback_gen != self._rollback_gen or ckpt_id <= self._gc_ckpt_id:
            return
        self._gc_ckpt_id = ckpt_id
        self.rr_recorded = rr_recorded
        self._ckpt_epoch += 1

    # -- restart support ----------------------------------------------------------
    def rollback_to(self, snapshot: Optional[CheckpointSnapshot]) -> None:
        """Restore protocol state to ``snapshot`` (None = back to process start)."""
        self._rollback_gen += 1
        if snapshot is None:
            self.log.clear()
            self.rr_recorded = {}
            self._ckpt_epoch = 0
            self._piggyback_epoch = {}
            self._gc_ckpt_id = -1
            self._restore_snapshot(None)
            return
        resume = snapshot.resume
        if resume is None:
            raise ValueError(
                f"snapshot {snapshot.ckpt_id} of rank {snapshot.rank} carries no "
                "resume point; was the failure injector attached before the run?"
            )
        self.log.rollback_to(resume.ss)
        state = resume.protocol_state
        self.rr_recorded = dict(state.get("rr_recorded", {}))
        self._ckpt_epoch = state.get("ckpt_epoch", 0)
        self._piggyback_epoch = dict(state.get("piggyback_epoch", {}))
        self._gc_ckpt_id = snapshot.ckpt_id
        self._restore_snapshot(snapshot)

    @property
    def logged_bytes_total(self) -> int:
        """Bytes currently retained in this rank's sender-side log."""
        return self.log.retained_bytes


class _GcAdoption:
    """Deferred adoption of a checkpoint as the log-GC point (one slotted obj)."""

    __slots__ = ("protocol", "ckpt_id", "rr_recorded", "rollback_gen")

    def __init__(self, protocol: GroupRankProtocol, ckpt_id: int,
                 rr_recorded: Dict[int, int], rollback_gen: int) -> None:
        self.protocol = protocol
        self.ckpt_id = ckpt_id
        self.rr_recorded = rr_recorded
        self.rollback_gen = rollback_gen

    def __call__(self) -> None:
        self.protocol._adopt_gc_point(self.ckpt_id, self.rr_recorded,
                                      self.rollback_gen)


class GroupProtocolFamily(ProtocolFamily):
    """Factory for :class:`GroupRankProtocol` instances sharing one group set.

    The paper's four evaluated configurations are presets over this class:

    >>> GroupProtocolFamily(GroupSet.single(32), name="NORM")        # doctest: +SKIP
    >>> GroupProtocolFamily(GroupSet.singletons(32), name="GP1")     # doctest: +SKIP
    >>> GroupProtocolFamily(GroupSet.contiguous(32, 4), name="GP4")  # doctest: +SKIP
    >>> GroupProtocolFamily(form_groups(trace).groupset, name="GP")  # doctest: +SKIP
    """

    def __init__(
        self,
        groups: GroupSet,
        config: Optional[ProtocolConfig] = None,
        blcr: Optional[BlcrModel] = None,
        name: str = "GP",
    ) -> None:
        super().__init__(config)
        self.groups = groups
        self.blcr = blcr if blcr is not None else BlcrModel()
        self.name = name

    def create(self, ctx: "RankContext", runtime: "MpiRuntime") -> GroupRankProtocol:
        """Instantiate the per-rank protocol object."""
        return GroupRankProtocol(self, ctx, runtime)

    def participants_for(self, rank: int, running_ranks: Tuple[int, ...]) -> Tuple[int, ...]:
        """Group members of ``rank`` that are still running (always includes ``rank``)."""
        running = set(running_ranks) | {rank}
        return tuple(sorted(p for p in self.groups.members(rank) if p in running))

    def group_id_of(self, rank: int) -> int:
        """Index of the group containing ``rank``."""
        return self.groups.group_index_of(rank)

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return f"{self.name}: {self.groups.describe()}"
