"""Restart orchestration — Algorithm 1, restart part.

The paper measures restart time per process "from the recreation of the
process to its return to normal execution".  Under the group-based scheme a
restarting process must:

1. load its checkpoint image (BLCR restore),
2. rebuild the MPI library's internal structures,
3. for every out-of-group process, exchange the recorded ``R``/``S`` volumes
   to decide what to *replay* (messages the peer logged that this process had
   not yet received at its checkpoint) and what to *skip* (messages this
   process had already delivered to the peer before the peer's checkpoint),
4. replay the required logged messages over the network, and
5. wait until all group members finish preparing the restart.

Because checkpoints within a group are coordinated, intra-group channels never
need replay; under NORM nothing needs replay at all; under GP1 every channel
may need replay — which is exactly the ordering of Figures 6b, 7 and 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ckpt.base import ProtocolConfig, RestartRecord
from repro.ckpt.blcr import BlcrModel
from repro.cluster.topology import Cluster, ClusterSpec
from repro.mpi.runtime import ApplicationResult
from repro.sim.engine import Simulator
from repro.sim.primitives import Event


@dataclass(frozen=True)
class ReplayChannel:
    """One inter-group channel that needs log replay during restart."""

    src: int
    dst: int
    nbytes: int
    n_messages: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("ranks must be non-negative")
        if self.nbytes < 0 or self.n_messages < 0:
            raise ValueError("volumes must be non-negative")


@dataclass
class RestartResult:
    """Outcome of a simulated whole-application restart."""

    records: List[RestartRecord] = field(default_factory=list)
    channels: List[ReplayChannel] = field(default_factory=list)

    @property
    def aggregate_restart_time(self) -> float:
        """Sum of per-process restart times (Figure 6b / 11b / 12b metric)."""
        return sum(rec.duration for rec in self.records)

    @property
    def max_restart_time(self) -> float:
        """Slowest process's restart time."""
        return max((rec.duration for rec in self.records), default=0.0)

    @property
    def total_replay_bytes(self) -> int:
        """Total data volume resent during the restart (Figure 7 metric)."""
        return sum(ch.nbytes for ch in self.channels)

    @property
    def total_resend_operations(self) -> int:
        """Total number of resend operations performed (Figure 8 metric)."""
        return sum(ch.n_messages for ch in self.channels)


def replay_volumes(result: ApplicationResult) -> List[ReplayChannel]:
    """Compute, per directed inter-group channel, the volume to replay.

    For sender ``q`` and receiver ``p`` in different groups the replayed bytes
    are the part of ``q``'s log that ``p`` had not yet received at its own
    checkpoint and that ``q`` had already sent (hence logged) by *its*
    checkpoint: ``max(0, SS_q[p] − RR_p[q])``, realised from the retained log
    entries when the sender's log is available.
    """
    snapshots = result.snapshots()
    channels: List[ReplayChannel] = []
    for q, snap_q in snapshots.items():
        ctx_q = result.contexts[q]
        log = getattr(ctx_q.protocol, "log", None)
        for p, sent_at_ckpt in snap_q.ss.items():
            if p == q or p in snap_q.group_members:
                continue
            snap_p = snapshots.get(p)
            received_at_ckpt = snap_p.rr.get(q, 0) if snap_p is not None else 0
            volume = max(0, sent_at_ckpt - received_at_ckpt)
            if volume <= 0:
                continue
            if log is not None:
                entries = [
                    e
                    for e in log.entries_for(p)
                    if received_at_ckpt < e.end_offset <= sent_at_ckpt
                ]
                nbytes = sum(e.nbytes for e in entries)
                n_messages = len(entries)
                # The log may retain *more* than strictly required if garbage
                # collection lagged; the replay only covers the required range.
                if nbytes < volume:
                    nbytes = volume
                    n_messages = max(n_messages, 1)
            else:
                avg = snap_q.logged_bytes.get(p, 0) / max(1, snap_q.logged_messages.get(p, 0))
                n_messages = max(1, math.ceil(volume / max(avg, 1.0)))
                nbytes = volume
            channels.append(ReplayChannel(src=q, dst=p, nbytes=nbytes, n_messages=n_messages))
    return channels


def skip_volumes(result: ApplicationResult) -> Dict[Tuple[int, int], int]:
    """Bytes that restarting senders must *skip* resending on each channel.

    ``p`` had received ``RR_p[q]`` bytes from ``q`` before ``p``'s checkpoint;
    if ``q`` rolls back to a point where it had sent only ``SS_q[p]`` of them,
    the re-executed sends up to ``RR_p[q]`` would be duplicates and are
    suppressed.  The skip volume is ``max(0, RR_p[q] − SS_q[p])`` — non-zero
    when the receiver checkpointed *after* the sender.
    """
    snapshots = result.snapshots()
    out: Dict[Tuple[int, int], int] = {}
    for q, snap_q in snapshots.items():
        for p, sent_at_ckpt in snap_q.ss.items():
            if p == q or p in snap_q.group_members:
                continue
            snap_p = snapshots.get(p)
            if snap_p is None:
                continue
            received_at_ckpt = snap_p.rr.get(q, 0)
            skip = max(0, received_at_ckpt - sent_at_ckpt)
            if skip > 0:
                out[(q, p)] = skip
    return out


def simulate_restart(
    result: ApplicationResult,
    cluster_spec: ClusterSpec,
    blcr: Optional[BlcrModel] = None,
    config: Optional[ProtocolConfig] = None,
    barrier_cost_s: float = 0.02,
) -> RestartResult:
    """Simulate restarting the whole application from its latest checkpoints.

    A fresh simulator and cluster (same spec as the original run) are used, so
    restart I/O and replay traffic see the same storage and network contention
    the original system would.
    """
    if barrier_cost_s < 0:
        raise ValueError("barrier_cost_s must be non-negative")
    blcr = blcr if blcr is not None else BlcrModel()
    config = config if config is not None else ProtocolConfig()
    n_ranks = result.n_ranks
    snapshots = result.snapshots()
    if not snapshots:
        raise ValueError("no checkpoints were taken; nothing to restart from")

    sim = Simulator()
    cluster = Cluster(sim, cluster_spec)
    placement = cluster.place_ranks(n_ranks)
    network = cluster.network
    storage = cluster.checkpoint_storage

    channels = replay_volumes(result)
    incoming: Dict[int, List[ReplayChannel]] = {}
    outgoing: Dict[int, List[ReplayChannel]] = {}
    for ch in channels:
        incoming.setdefault(ch.dst, []).append(ch)
        outgoing.setdefault(ch.src, []).append(ch)

    prepared_time: Dict[int, float] = {}
    prepared_event: Dict[int, Event] = {r: Event(sim, name=f"prepared:{r}") for r in range(n_ranks)}
    incoming_remaining: Dict[int, int] = {r: len(incoming.get(r, [])) for r in range(n_ranks)}
    incoming_done: Dict[int, Event] = {r: Event(sim, name=f"replayed:{r}") for r in range(n_ranks)}
    for r in range(n_ranks):
        if incoming_remaining[r] == 0:
            incoming_done[r].succeed(0)
    stage_times: Dict[int, Dict[str, float]] = {r: {} for r in range(n_ranks)}
    replay_received: Dict[int, int] = {r: 0 for r in range(n_ranks)}
    replay_sent: Dict[int, int] = {r: 0 for r in range(n_ranks)}
    resend_ops: Dict[int, int] = {r: 0 for r in range(n_ranks)}
    skip_by_sender: Dict[int, int] = {}
    for (q, _p), nbytes in skip_volumes(result).items():
        skip_by_sender[q] = skip_by_sender.get(q, 0) + nbytes

    def rank_restart(rank: int):
        node = placement[rank]
        snap = snapshots.get(rank)
        ctx = result.contexts[rank]
        image_bytes = snap.image_bytes if snap is not None else blcr.image_bytes(ctx.memory_bytes)

        # 1. restore the process image
        t0 = sim.now
        yield from storage.read(node, image_bytes)
        yield sim.timeout(blcr.restore_exec_s)
        stage_times[rank]["image"] = sim.now - t0

        # 2. rebuild MPI internal structures
        t0 = sim.now
        yield sim.timeout(config.restart_rebuild_s)
        stage_times[rank]["rebuild"] = sim.now - t0

        # 3. exchange R/S volumes with out-of-group peers (one round trip each)
        t0 = sim.now
        out_peers: set[int] = set()
        if snap is not None:
            out_peers = {
                p
                for p in (set(snap.ss) | set(snap.rr))
                if p != rank and p not in snap.group_members
            }
        rtt = 2 * (network.spec.latency_s + network.spec.per_message_overhead_s)
        if out_peers:
            yield sim.timeout(len(out_peers) * rtt)
        stage_times[rank]["exchange"] = sim.now - t0

        # 4. replay logged messages this rank owes to out-of-group peers
        t0 = sim.now
        for ch in outgoing.get(rank, []):
            # the flushed log is read back from checkpoint storage, then resent
            yield from storage.read(node, ch.nbytes)
            yield from network.transfer(node, placement[ch.dst], ch.nbytes)
            replay_sent[rank] += ch.nbytes
            resend_ops[rank] += ch.n_messages
            replay_received[ch.dst] += ch.nbytes
            incoming_remaining[ch.dst] -= 1
            if incoming_remaining[ch.dst] == 0 and not incoming_done[ch.dst].triggered:
                incoming_done[ch.dst].succeed(sim.now)
        # ... and wait for every replay destined to this rank
        yield incoming_done[rank]
        stage_times[rank]["replay"] = sim.now - t0

        prepared_time[rank] = sim.now
        prepared_event[rank].succeed(sim.now)

    for rank in range(n_ranks):
        sim.process(rank_restart(rank), name=f"restart:{rank}")
    sim.run()

    if len(prepared_time) != n_ranks:
        missing = sorted(set(range(n_ranks)) - set(prepared_time))
        raise RuntimeError(f"restart deadlocked; ranks never prepared: {missing[:8]}")

    # 5. wait until all group members finish preparing (computed post-hoc)
    out = RestartResult(channels=channels)
    for rank in range(n_ranks):
        snap = snapshots.get(rank)
        members = snap.group_members if snap is not None else (rank,)
        group_ready = max(prepared_time.get(m, prepared_time[rank]) for m in members)
        end = group_ready + barrier_cost_s
        stage_times[rank]["barrier"] = end - prepared_time[rank]
        image_bytes = snap.image_bytes if snap is not None else 0
        out.records.append(
            RestartRecord(
                rank=rank,
                start=0.0,
                end=end,
                image_bytes=image_bytes,
                replay_bytes_sent=replay_sent[rank],
                replay_bytes_received=replay_received[rank],
                resend_operations=resend_ops[rank],
                skip_bytes=skip_by_sender.get(rank, 0),
                stages=stage_times[rank],
            )
        )
    return out
