"""Restart orchestration — Algorithm 1, restart part.

The paper measures restart time per process "from the recreation of the
process to its return to normal execution".  Under the group-based scheme a
restarting process must:

1. load its checkpoint image (BLCR restore),
2. rebuild the MPI library's internal structures,
3. for every out-of-group process, exchange the recorded ``R``/``S`` volumes
   to decide what to *replay* (messages the peer logged that this process had
   not yet received at its checkpoint) and what to *skip* (messages this
   process had already delivered to the peer before the peer's checkpoint),
4. replay the required logged messages over the network, and
5. wait until all group members finish preparing the restart.

Because checkpoints within a group are coordinated, intra-group channels never
need replay; under NORM nothing needs replay at all; under GP1 every channel
may need replay — which is exactly the ordering of Figures 6b, 7 and 8.

Two orchestrators share that stage structure:

* :func:`simulate_restart` — the *post-hoc* whole-application restart used by
  the paper's Figures 6b/7/8 (a fresh simulator, every rank restarts from its
  latest checkpoint), and
* :class:`LiveRecovery` — the *in-flight* recovery run inside the original
  simulation when a failure injector kills a rank mid-run: only the victim's
  group rolls back (to the newest checkpoint every member completed), peers
  replay their logged messages over the live network while out-of-group ranks
  keep executing, and the rolled-back scripts re-execute from their resume
  points.  This is the measured counterpart of the analytic
  ``expected_lost_work`` model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.ckpt.base import CheckpointSnapshot, ProtocolConfig, RestartRecord
from repro.ckpt.blcr import BlcrModel
from repro.cluster.topology import Cluster, ClusterSpec
from repro.mpi.runtime import ApplicationResult
from repro.sim.engine import Interrupt, Simulator
from repro.sim.primitives import Event
from repro.workloads.domain import RepartitionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.runtime import MpiRuntime
    from repro.workloads.base import Workload


@dataclass(frozen=True)
class ReplayChannel:
    """One inter-group channel that needs log replay during restart."""

    src: int
    dst: int
    nbytes: int
    n_messages: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("ranks must be non-negative")
        if self.nbytes < 0 or self.n_messages < 0:
            raise ValueError("volumes must be non-negative")


@dataclass
class RestartResult:
    """Outcome of a simulated whole-application restart."""

    records: List[RestartRecord] = field(default_factory=list)
    channels: List[ReplayChannel] = field(default_factory=list)

    @property
    def aggregate_restart_time(self) -> float:
        """Sum of per-process restart times (Figure 6b / 11b / 12b metric)."""
        return sum(rec.duration for rec in self.records)

    @property
    def max_restart_time(self) -> float:
        """Slowest process's restart time."""
        return max((rec.duration for rec in self.records), default=0.0)

    @property
    def total_replay_bytes(self) -> int:
        """Total data volume resent during the restart (Figure 7 metric)."""
        return sum(ch.nbytes for ch in self.channels)

    @property
    def total_resend_operations(self) -> int:
        """Total number of resend operations performed (Figure 8 metric)."""
        return sum(ch.n_messages for ch in self.channels)


def replay_volumes(result: ApplicationResult) -> List[ReplayChannel]:
    """Compute, per directed inter-group channel, the volume to replay.

    For sender ``q`` and receiver ``p`` in different groups the replayed bytes
    are the part of ``q``'s log that ``p`` had not yet received at its own
    checkpoint and that ``q`` had already sent (hence logged) by *its*
    checkpoint: ``max(0, SS_q[p] − RR_p[q])``, realised from the retained log
    entries when the sender's log is available.
    """
    snapshots = result.snapshots()
    channels: List[ReplayChannel] = []
    for q, snap_q in snapshots.items():
        ctx_q = result.contexts[q]
        log = getattr(ctx_q.protocol, "log", None)
        for p, sent_at_ckpt in snap_q.ss.items():
            if p == q or p in snap_q.group_members:
                continue
            snap_p = snapshots.get(p)
            received_at_ckpt = snap_p.rr.get(q, 0) if snap_p is not None else 0
            volume = max(0, sent_at_ckpt - received_at_ckpt)
            if volume <= 0:
                continue
            if log is not None:
                entries = [
                    e
                    for e in log.entries_for(p)
                    if received_at_ckpt < e.end_offset <= sent_at_ckpt
                ]
                nbytes = sum(e.nbytes for e in entries)
                n_messages = len(entries)
                # The log may retain *more* than strictly required if garbage
                # collection lagged; the replay only covers the required range.
                if nbytes < volume:
                    nbytes = volume
                    n_messages = max(n_messages, 1)
            else:
                avg = snap_q.logged_bytes.get(p, 0) / max(1, snap_q.logged_messages.get(p, 0))
                n_messages = max(1, math.ceil(volume / max(avg, 1.0)))
                nbytes = volume
            channels.append(ReplayChannel(src=q, dst=p, nbytes=nbytes, n_messages=n_messages))
    return channels


def skip_volumes(result: ApplicationResult) -> Dict[Tuple[int, int], int]:
    """Bytes that restarting senders must *skip* resending on each channel.

    ``p`` had received ``RR_p[q]`` bytes from ``q`` before ``p``'s checkpoint;
    if ``q`` rolls back to a point where it had sent only ``SS_q[p]`` of them,
    the re-executed sends up to ``RR_p[q]`` would be duplicates and are
    suppressed.  The skip volume is ``max(0, RR_p[q] − SS_q[p])`` — non-zero
    when the receiver checkpointed *after* the sender.
    """
    snapshots = result.snapshots()
    out: Dict[Tuple[int, int], int] = {}
    for q, snap_q in snapshots.items():
        for p, sent_at_ckpt in snap_q.ss.items():
            if p == q or p in snap_q.group_members:
                continue
            snap_p = snapshots.get(p)
            if snap_p is None:
                continue
            received_at_ckpt = snap_p.rr.get(q, 0)
            skip = max(0, received_at_ckpt - sent_at_ckpt)
            if skip > 0:
                out[(q, p)] = skip
    return out


def simulate_restart(
    result: ApplicationResult,
    cluster_spec: ClusterSpec,
    blcr: Optional[BlcrModel] = None,
    config: Optional[ProtocolConfig] = None,
    barrier_cost_s: float = 0.02,
) -> RestartResult:
    """Simulate restarting the whole application from its latest checkpoints.

    A fresh simulator and cluster (same spec as the original run) are used, so
    restart I/O and replay traffic see the same storage and network contention
    the original system would.
    """
    if barrier_cost_s < 0:
        raise ValueError("barrier_cost_s must be non-negative")
    blcr = blcr if blcr is not None else BlcrModel()
    config = config if config is not None else ProtocolConfig()
    n_ranks = result.n_ranks
    snapshots = result.snapshots()
    if not snapshots:
        raise ValueError("no checkpoints were taken; nothing to restart from")

    sim = Simulator()
    cluster = Cluster(sim, cluster_spec)
    placement = cluster.place_ranks(n_ranks)
    network = cluster.network
    # All restart I/O goes through the storage hierarchy's tier API; for
    # single-tier specs it delegates verbatim to the configured storage.
    storage = cluster.hierarchy

    channels = replay_volumes(result)
    incoming: Dict[int, List[ReplayChannel]] = {}
    outgoing: Dict[int, List[ReplayChannel]] = {}
    for ch in channels:
        incoming.setdefault(ch.dst, []).append(ch)
        outgoing.setdefault(ch.src, []).append(ch)

    prepared_time: Dict[int, float] = {}
    prepared_event: Dict[int, Event] = {r: Event(sim, name=f"prepared:{r}") for r in range(n_ranks)}
    incoming_remaining: Dict[int, int] = {r: len(incoming.get(r, [])) for r in range(n_ranks)}
    incoming_done: Dict[int, Event] = {r: Event(sim, name=f"replayed:{r}") for r in range(n_ranks)}
    for r in range(n_ranks):
        if incoming_remaining[r] == 0:
            incoming_done[r].succeed(0)
    stage_times: Dict[int, Dict[str, float]] = {r: {} for r in range(n_ranks)}
    replay_received: Dict[int, int] = {r: 0 for r in range(n_ranks)}
    replay_sent: Dict[int, int] = {r: 0 for r in range(n_ranks)}
    resend_ops: Dict[int, int] = {r: 0 for r in range(n_ranks)}
    skip_by_sender: Dict[int, int] = {}
    for (q, _p), nbytes in skip_volumes(result).items():
        skip_by_sender[q] = skip_by_sender.get(q, 0) + nbytes

    def rank_restart(rank: int):
        node = placement[rank]
        snap = snapshots.get(rank)
        ctx = result.contexts[rank]
        image_bytes = snap.image_bytes if snap is not None else blcr.image_bytes(ctx.memory_bytes)

        # 1. restore the process image
        t0 = sim.now
        yield from storage.read(node, image_bytes)
        yield sim.timeout(blcr.restore_exec_s)
        stage_times[rank]["image"] = sim.now - t0

        # 2. rebuild MPI internal structures
        t0 = sim.now
        yield sim.timeout(config.restart_rebuild_s)
        stage_times[rank]["rebuild"] = sim.now - t0

        # 3. exchange R/S volumes with out-of-group peers (one round trip each)
        t0 = sim.now
        out_peers: set[int] = set()
        if snap is not None:
            out_peers = {
                p
                for p in (set(snap.ss) | set(snap.rr))
                if p != rank and p not in snap.group_members
            }
        rtt = 2 * (network.spec.latency_s + network.spec.per_message_overhead_s)
        if out_peers:
            yield sim.timeout(len(out_peers) * rtt)
        stage_times[rank]["exchange"] = sim.now - t0

        # 4. replay logged messages this rank owes to out-of-group peers
        t0 = sim.now
        for ch in outgoing.get(rank, []):
            # the flushed log is read back from checkpoint storage, then resent
            yield from storage.read(node, ch.nbytes)
            yield from network.transfer(node, placement[ch.dst], ch.nbytes)
            replay_sent[rank] += ch.nbytes
            resend_ops[rank] += ch.n_messages
            replay_received[ch.dst] += ch.nbytes
            incoming_remaining[ch.dst] -= 1
            if incoming_remaining[ch.dst] == 0 and not incoming_done[ch.dst].triggered:
                incoming_done[ch.dst].succeed(sim.now)
        # ... and wait for every replay destined to this rank
        yield incoming_done[rank]
        stage_times[rank]["replay"] = sim.now - t0

        prepared_time[rank] = sim.now
        prepared_event[rank].succeed(sim.now)

    for rank in range(n_ranks):
        sim.process(rank_restart(rank), name=f"restart:{rank}")
    sim.run()

    if len(prepared_time) != n_ranks:
        missing = sorted(set(range(n_ranks)) - set(prepared_time))
        raise RuntimeError(f"restart deadlocked; ranks never prepared: {missing[:8]}")

    # 5. wait until all group members finish preparing (computed post-hoc)
    out = RestartResult(channels=channels)
    for rank in range(n_ranks):
        snap = snapshots.get(rank)
        members = snap.group_members if snap is not None else (rank,)
        group_ready = max(prepared_time.get(m, prepared_time[rank]) for m in members)
        end = group_ready + barrier_cost_s
        stage_times[rank]["barrier"] = end - prepared_time[rank]
        image_bytes = snap.image_bytes if snap is not None else 0
        out.records.append(
            RestartRecord(
                rank=rank,
                start=0.0,
                end=end,
                image_bytes=image_bytes,
                replay_bytes_sent=replay_sent[rank],
                replay_bytes_received=replay_received[rank],
                resend_operations=resend_ops[rank],
                skip_bytes=skip_by_sender.get(rank, 0),
                stages=stage_times[rank],
            )
        )
    return out


# --------------------------------------------------------------------- live recovery
@dataclass
class RankRecovery:
    """Measured outcome of one rank's in-flight rollback and restart."""

    rank: int
    #: work discarded by the rollback: time from the restored checkpoint's
    #: completion (or process start) to the instant the script last executed
    lost_work_s: float
    #: simulation time at which the re-created script resumed execution
    resumed_at: float
    #: failure instant → resumption (detection, restore, replay, barrier)
    recovery_time_s: float
    resume_op_index: int
    image_bytes: int
    #: node the rank resumed on (== its original node unless migrated)
    restart_node: int = -1
    #: node the rank ran on before a spare-pool migration (None = in place)
    migrated_from: Optional[int] = None


@dataclass
class RecoveryReport:
    """Everything measured about one injected failure's recovery."""

    failure_time: float
    node: int
    victims: Tuple[int, ...]
    rollback_ranks: Tuple[int, ...]
    #: checkpoint id the group rolled back to (None = restart from scratch)
    target_ckpt_id: Optional[int]
    detected_at: float = 0.0
    completed_at: float = 0.0
    ranks: List[RankRecovery] = field(default_factory=list)
    #: channels actually replayed, with measured bytes/messages
    channels: List[ReplayChannel] = field(default_factory=list)
    #: (rank, from_node, to_node) spare-pool migrations performed
    placements: List[Tuple[int, int, int]] = field(default_factory=list)
    #: victim ranks that restarted in place on a rebooted dead node
    inplace_reboots: int = 0
    #: migrations that landed on the victim's own edge switch
    same_switch_placements: int = 0
    #: earlier recovery attempts of this scope aborted by a failure landing
    #: mid-recovery (this report covers the attempt that converged)
    superseded_attempts: int = 0
    #: failure cause ("crash" node death, "switch-outage" correlated event)
    cause: str = "crash"
    #: True when no surviving storage tier held a required image — the run
    #: was declared failed instead of restored
    unsurvivable: bool = False
    #: storage level each rank's image was actually restored from
    #: (rank → "L1"/"L2"/"L3"; empty for from-scratch restarts)
    restore_tiers: Dict[int, str] = field(default_factory=dict)
    #: True when this recovery shrank the job onto the survivors (elastic
    #: restart) instead of restoring the original rank count
    shrink: bool = False
    #: ranks actively computing after this recovery (None = unchanged)
    ranks_after: Optional[int] = None
    #: work units that changed owner under the shrink's repartition
    units_migrated: int = 0
    #: checkpoint-image bytes shipped dead rank → adopter over the network
    repartition_bytes_shipped: int = 0

    @property
    def replayed_bytes(self) -> int:
        """Total bytes resent from sender logs during this recovery."""
        return sum(ch.nbytes for ch in self.channels)

    @property
    def replayed_messages(self) -> int:
        """Total log entries resent during this recovery."""
        return sum(ch.n_messages for ch in self.channels)

    @property
    def total_lost_work_s(self) -> float:
        """Sum of per-rank discarded work (the measured Figure-10 quantity)."""
        return sum(r.lost_work_s for r in self.ranks)

    @property
    def max_recovery_time_s(self) -> float:
        """Slowest rank's failure-to-resumption time."""
        return max((r.recovery_time_s for r in self.ranks), default=0.0)

    @property
    def recovery_rank_seconds(self) -> float:
        """Sum of per-rank failure-to-resumption times (unavailability cost)."""
        return sum(r.recovery_time_s for r in self.ranks)


def rollback_scope(runtime: "MpiRuntime", victims: Sequence[int]) -> Set[int]:
    """Ranks that must roll back when ``victims`` die: their whole groups.

    Group membership is the protocol's static definition (finished ranks
    included — a finished group member whose peer rolls back must re-execute
    its tail so re-generated intra-group traffic lines up).
    """
    out: Set[int] = set()
    for victim in victims:
        proto = runtime.ctx(victim).protocol
        members = getattr(proto, "group_members", None)
        if members is None:
            # VCL (and any global protocol): every rank coordinates together.
            members = range(runtime.n_ranks)
        out.update(members)
        out.add(victim)
    return out


def common_checkpoint_ids(runtime: "MpiRuntime", members: Sequence[int]) -> List[int]:
    """Checkpoint ids *every* member holds a snapshot for, newest first.

    Empty means at least one member never checkpointed — the group can only
    restart from scratch.
    """
    common: Optional[Set[int]] = None
    for rank in members:
        proto = runtime.ctx(rank).protocol
        ids = {snap.ckpt_id for snap in proto.snapshot_history()} if proto else set()
        common = ids if common is None else (common & ids)
        if not common:
            return []
    return sorted(common or (), reverse=True)


def common_checkpoint_id(runtime: "MpiRuntime", members: Sequence[int]) -> Optional[int]:
    """Newest checkpoint id that *every* member holds a snapshot for.

    A failure can hit mid-wave, leaving some members with a newer snapshot
    than others; the recovery line is the newest checkpoint all of them
    completed dumping.  None means at least one member never checkpointed —
    the group restarts from scratch.
    """
    ids = common_checkpoint_ids(runtime, members)
    return ids[0] if ids else None


class LiveRecovery:
    """In-flight group rollback + replay after an injected failure.

    Runs *inside* the application's simulation (unlike
    :func:`simulate_restart`): the victim's group rolls back to its newest
    common checkpoint, restores channel accounting and sender logs from the
    snapshots' resume points, replays logged inter-group messages over the
    live (contended) network, and re-creates the rank scripts at their resume
    operation indices while out-of-group ranks keep executing.  Produces a
    :class:`RecoveryReport` appended to ``runtime.recovery_reports``.
    """

    def __init__(
        self,
        runtime: "MpiRuntime",
        victims: Sequence[int],
        detection_delay_s: float = 0.25,
        barrier_cost_s: float = 0.02,
        blcr: Optional[BlcrModel] = None,
        config: Optional[ProtocolConfig] = None,
        node: int = -1,
        placements: Optional[Dict[int, int]] = None,
        dead_nodes: Sequence[int] = (),
        reboot_delay_s: float = 0.0,
        superseded_attempts: int = 0,
        origin_time: Optional[float] = None,
        cause: str = "crash",
        spare_pool: Optional[Any] = None,
    ) -> None:
        if detection_delay_s < 0:
            raise ValueError("detection_delay_s must be non-negative")
        if barrier_cost_s < 0:
            raise ValueError("barrier_cost_s must be non-negative")
        if reboot_delay_s < 0:
            raise ValueError("reboot_delay_s must be non-negative")
        self.runtime = runtime
        self.victims = tuple(sorted(victims))
        if not self.victims:
            raise ValueError("victims must not be empty")
        self.detection_delay_s = detection_delay_s
        self.barrier_cost_s = barrier_cost_s
        family = runtime.protocol_family
        self.blcr = blcr if blcr is not None else getattr(family, "blcr", None) or BlcrModel()
        self.config = config if config is not None else getattr(family, "config", None) or ProtocolConfig()
        self.node = node
        #: rank → replacement node decided by the spare pool (empty = in place)
        self.placements: Dict[int, int] = dict(placements or {})
        #: crashed nodes: a rank restarting in place on one must wait out the
        #: node reboot before its image can be restored (tier selection may
        #: add to this set when it cancels a spare placement)
        self.dead_nodes = set(dead_nodes)
        self.reboot_delay_s = reboot_delay_s
        self.superseded_attempts = superseded_attempts
        self.cause = cause
        #: pool to hand a reserved spare back to when tier selection cancels
        #: a placement (the only surviving image copy is on the dead node)
        self.spare_pool = spare_pool
        #: time of the earliest failure this recovery covers.  A merged or
        #: queued recovery starts later than the failure that triggered it;
        #: the *measured* recovery time must span from the original failure
        #: (the group was already dead/recovering in between), not from this
        #: attempt's start.  None = this attempt starts at the failure.
        self.origin_time = origin_time
        #: processes spawned by :meth:`run` (restart + replay coroutines);
        #: an abort interrupts them alongside the orchestration itself
        self._children: List["Event"] = []
        #: telemetry capture (populated only when the runtime traces): the
        #: in-progress report plus per-rank restart windows and stage marks,
        #: so the span tree can be emitted from the *report* itself — the
        #: exported trace matches the RecoveryReport by construction
        self._report: Optional[RecoveryReport] = None
        self._rank_windows: Dict[int, Tuple[float, float]] = {}
        self._stage_marks: Dict[int, List[Tuple[str, float, float]]] = {}
        self._trace_emitted = False

    # -- orchestration --------------------------------------------------------
    def abort(self) -> None:
        """Cancel this in-flight recovery (a newer failure superseded it).

        Interrupts the restart/replay coroutines it spawned; the orchestration
        process itself is interrupted by the caller (the recovery manager).
        In-flight replayed messages die by rollback-epoch mismatch once the
        superseding recovery re-rolls the group, so channel accounting stays
        exact.
        """
        for child in self._children:
            if child.is_alive:
                child.interrupt("recovery-superseded")
        del self._children[:]

    def run(self) -> Generator[Event, None, Optional[RecoveryReport]]:
        """The recovery coroutine (registered as a process by the manager).

        Returns the completed :class:`RecoveryReport`, or None when the
        recovery was aborted mid-flight by a superseding failure (the
        manager restarts the affected scope from its new rollback target).
        """
        try:
            report = yield from self._run_body()
        except Interrupt:
            self.abort()
            # a superseding failure cut this attempt short: close its trace
            # as an aborted recovery span so the timeline shows the attempt
            self._emit_trace(aborted=True)
            return None
        self._emit_trace()
        return report

    def _emit_trace(self, aborted: bool = False) -> None:
        """Retro-emit this recovery's span tree from its report (once).

        The root ``recovery`` span carries the report's measured window
        (failure → resumption) and rollback ranks as attributes; children are
        the detection delay, one ``rank_restart`` span per recovered rank
        (with reboot/image_restore/rebuild/exchange/replay stage sub-spans
        timed live), and the resume barrier.  Because everything is derived
        from the :class:`RecoveryReport` and timestamps captured alongside
        it, the exported tree cannot disagree with the report.
        """
        runtime = self.runtime
        report = self._report
        if not runtime.telemetry_tracing or report is None or self._trace_emitted:
            return
        self._trace_emitted = True
        tracer = runtime.telemetry.tracer
        now = runtime.sim.now
        end = report.completed_at if report.completed_at is not None else now
        root = tracer.add(
            "recovery", start=report.failure_time, end=end,
            track="recovery", category="recovery",
            aborted=aborted or report.unsurvivable,
            node=report.node, cause=report.cause,
            victims=list(report.victims),
            rollback_ranks=list(report.rollback_ranks),
            target_ckpt_id=report.target_ckpt_id,
            unsurvivable=report.unsurvivable,
        )
        if report.detected_at is not None:
            tracer.add("detection", start=report.failure_time,
                       end=report.detected_at, track="recovery",
                       category="recovery", parent=root)
        for rr in report.ranks:
            window = self._rank_windows.get(rr.rank)
            if window is None:
                continue
            rspan = tracer.add(
                "rank_restart", start=window[0], end=window[1],
                track="recovery", category="recovery", parent=root,
                rank=rr.rank, restart_node=rr.restart_node,
                migrated_from=rr.migrated_from, image_bytes=rr.image_bytes)
            for name, t0, t1 in self._stage_marks.get(rr.rank, ()):
                tracer.add(name, start=t0, end=t1, track="recovery",
                           category="recovery.stage", parent=rspan)
        if report.ranks and report.completed_at is not None:
            windows = [self._rank_windows[rr.rank] for rr in report.ranks
                       if rr.rank in self._rank_windows]
            if windows:
                tracer.add("barrier", start=max(w[1] for w in windows),
                           end=report.completed_at, track="recovery",
                           category="recovery", parent=root)

    def _run_body(self) -> Generator[Event, None, RecoveryReport]:
        runtime = self.runtime
        sim = runtime.sim
        #: this attempt's start (bounds lost-work horizons: work executed up
        #: to the instant each rank actually halted, never past this attempt)
        t_attempt = sim.now
        #: the original failure instant — recovery time is measured from here,
        #: so superseded attempts and queue waits count as recovery time
        t_fail = self.origin_time if self.origin_time is not None else t_attempt
        report = RecoveryReport(
            failure_time=t_fail, node=self.node, victims=self.victims,
            rollback_ranks=(), target_ckpt_id=None,
            superseded_attempts=self.superseded_attempts,
            cause=self.cause,
        )
        self._report = report
        tracing = runtime.telemetry_tracing

        # mpirun notices the dead node only after the detection delay; the
        # victim's processes stopped at t_fail, everyone else keeps running.
        if self.detection_delay_s > 0:
            yield sim.timeout(self.detection_delay_s)
        report.detected_at = sim.now

        rollback = sorted(rollback_scope(runtime, self.victims))
        report.rollback_ranks = tuple(rollback)

        # Where each rank will restart, and which dead nodes come back in
        # place — the storage-tier selection needs both.
        hierarchy = runtime.cluster.hierarchy
        final_node: Dict[int, int] = {
            rank: self.placements.get(rank, runtime.ctx(rank).node_id)
            for rank in rollback
        }
        assume_rebooted = set(self.dead_nodes)

        # Partition the rollback set into its checkpoint groups and pick each
        # group's recovery line (they are usually one and the same group).
        # With a storage hierarchy configured, the recovery line is the newest
        # common checkpoint whose every image still has a *surviving* copy on
        # some tier; losing the newest one degrades to an older checkpoint,
        # and losing them all makes the failure unsurvivable.  Legacy mode
        # keeps the pre-hierarchy rule (newest common checkpoint, dead nodes'
        # disks assumed readable) bit-for-bit.
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for rank in rollback:
            proto = runtime.ctx(rank).protocol
            members = tuple(sorted(getattr(proto, "group_members", None)
                                   or range(runtime.n_ranks)))
            groups.setdefault(members, []).append(rank)
        target_by_rank: Dict[int, Optional[CheckpointSnapshot]] = {}
        target_ids: List[int] = []
        scope_set = set(rollback)

        def replay_covered(rank: int, cid: int) -> bool:
            """Do the out-of-scope senders' logs still cover ``cid``'s gap?

            Rolling ``rank`` back to checkpoint ``cid`` re-opens the byte
            range between its recorded R counters and the live frontier;
            bytes from senders outside the rollback scope must come from
            their retained logs (in-scope senders re-execute instead).  The
            deferred GC-point rule makes this hold for every *safe*
            checkpoint, but a copy destroyed after adoption can force an
            older target — this check turns that into an explicit
            unsurvivable verdict instead of a blocked receive.
            """
            proto = runtime.ctx(rank).protocol
            snap = next((s for s in proto.snapshot_history()
                         if s.ckpt_id == cid), None)
            resume = snap.resume if snap is not None else None
            if resume is None:
                return True
            for src_ctx in runtime.contexts:
                q = src_ctx.rank
                if q == rank or q in scope_set:
                    continue
                restored = resume.rr.get(q, 0)
                if src_ctx.account.sent_to(rank) <= restored:
                    continue
                log = getattr(src_ctx.protocol, "log", None)
                if log is None:
                    return False
                entries = log.entries_for(rank)
                if not entries:
                    return False
                first = entries[0]
                if first.end_offset - first.nbytes > restored:
                    return False
            return True

        def feasible(ranks: List[int], cid: int) -> Optional[Set[int]]:
            """Can every rank restore checkpoint ``cid``?

            Returns the set of spare placements that must be *cancelled* for
            it (the only surviving copy sits on the dead node's intact disk,
            so the rank reboots in place instead of migrating), or None when
            some rank has no surviving copy anywhere or some replay byte is
            no longer retained.
            """
            cancels: Set[int] = set()
            for rank in ranks:
                plan = hierarchy.restore_plan(
                    rank, cid, final_node[rank], assume_rebooted)
                if plan is None and rank in self.placements:
                    home = runtime.ctx(rank).node_id
                    plan = hierarchy.restore_plan(
                        rank, cid, home, assume_rebooted | {home})
                    if plan is not None:
                        cancels.add(rank)
                if plan is None or not replay_covered(rank, cid):
                    return None
            return cancels

        for members, ranks in groups.items():
            candidates = common_checkpoint_ids(runtime, members)
            if hierarchy.legacy:
                target_id = candidates[0] if candidates else None
            else:
                target_id = None
                for cid in candidates:
                    cancels = feasible(ranks, cid)
                    if cancels is None:
                        continue
                    target_id = cid
                    for rank in cancels:
                        # The spare cannot reach the image; restart in place
                        # on the (rebooting) dead node and return the spare.
                        spare = self.placements.pop(rank)
                        home = runtime.ctx(rank).node_id
                        self.dead_nodes.add(home)
                        assume_rebooted.add(home)
                        final_node[rank] = home
                        if self.spare_pool is not None:
                            self.spare_pool.release(spare, rank)
                    break
                if target_id is None and candidates:
                    # Checkpoints exist but no retrievable set survives: a
                    # real restart has nothing to restore these ranks from.
                    reason = (f"no surviving copy of checkpoint images for "
                              f"ranks {sorted(ranks)[:8]} "
                              f"({self.cause} at t={t_fail:.3f})")
                    report.unsurvivable = True
                    report.completed_at = sim.now
                    runtime.recovery_reports.append(report)
                    runtime.abort_application(reason)
                    return report
            if target_id is not None:
                target_ids.append(target_id)
            for rank in ranks:
                snap = None
                if target_id is not None:
                    proto = runtime.ctx(rank).protocol
                    snap = next(s for s in proto.snapshot_history()
                                if s.ckpt_id == target_id)
                target_by_rank[rank] = snap
        report.target_ckpt_id = max(target_ids) if target_ids else None

        # Roll every member back *now*: scripts interrupted, accounting and
        # sender logs restored, inboxes replaced (stale in-flight messages
        # die by epoch mismatch at delivery).
        resume_index: Dict[int, int] = {}
        lost_work: Dict[int, float] = {}
        for rank in rollback:
            ctx = runtime.ctx(rank)
            snap = target_by_rank[rank]
            since = snap.time if snap is not None else ctx.stats.started_at
            horizon = t_attempt
            if ctx.halted_at is not None and ctx.halted_at < horizon:
                # the script stopped before this failure (killed or rolled
                # back by a superseded recovery attempt): no work was done
                # (hence none lost) between the halt and now
                horizon = ctx.halted_at
            if ctx.stats.finished_at is not None and ctx.stats.finished_at < horizon:
                horizon = ctx.stats.finished_at  # it had already finished
            lost_work[rank] = max(horizon - since, 0.0)
            resume_index[rank] = runtime.rollback_rank(rank, snap)

        # Replay plans, computed after every rollback so truncated logs and
        # restored R counters are in effect.  A channel needs replay when an
        # endpoint rolled back: data beyond the receiver's restored R was on
        # connections the failure reset (or was logged before the sender's
        # own rollback) and will not be re-sent live.
        rollback_set = set(rollback)
        plans: List[Tuple[int, int, List]] = []
        for ctx in runtime.contexts:
            log = getattr(ctx.protocol, "log", None)
            if log is None:
                continue
            src = ctx.rank
            for dst in log.destinations():
                if src not in rollback_set and dst not in rollback_set:
                    continue
                received = runtime.ctx(dst).account.received_from(src)
                entries = log.replay_plan(dst, received)
                if entries:
                    plans.append((src, dst, entries))

        out_by_src: Dict[int, List[Tuple[int, List]]] = {}
        alive_plans: List[Tuple[int, int, List]] = []
        incoming_remaining: Dict[int, int] = {r: 0 for r in rollback}
        for src, dst, entries in plans:
            if src in rollback_set:
                out_by_src.setdefault(src, []).append((dst, entries))
            else:
                alive_plans.append((src, dst, entries))
            if dst in rollback_set:
                incoming_remaining[dst] += 1
        incoming_done: Dict[int, Event] = {
            r: Event(sim, name="replayed") for r in rollback
        }
        for rank in rollback:
            if incoming_remaining[rank] == 0:
                incoming_done[rank].succeed(0)

        measured: List[ReplayChannel] = []

        def channel_done(src: int, dst: int, nbytes: int, count: int) -> None:
            measured.append(ReplayChannel(src=src, dst=dst, nbytes=nbytes,
                                          n_messages=count))
            if dst in rollback_set:
                incoming_remaining[dst] -= 1
                if incoming_remaining[dst] == 0 and not incoming_done[dst].triggered:
                    incoming_done[dst].succeed(sim.now)

        rtt = 2 * (runtime.cluster.network.spec.latency_s
                   + runtime.cluster.network.spec.per_message_overhead_s)

        remote_storage = runtime.cluster.spec.checkpoint_storage == "remote"
        migrated_from: Dict[int, int] = {}
        rebooted: List[int] = []

        def alive_replay(src: int, dst: int, entries: List):
            # An out-of-group survivor serves replay from its in-memory log
            # in the background while its own script keeps running.
            try:
                nbytes, count = yield from runtime.replay_channel(src, dst, entries, False)
            except Interrupt:
                return  # recovery superseded; accounting is epoch-protected
            channel_done(src, dst, nbytes, count)

        def rank_restart(rank: int):
            # stage marks feed the recovery span tree; None when not tracing
            marks = self._stage_marks.setdefault(rank, []) if tracing else None
            entered_at = sim.now
            try:
                ctx = runtime.ctx(rank)
                snap = target_by_rank[rank]
                new_node = self.placements.get(rank)
                t0 = sim.now
                if new_node is not None and new_node != ctx.node_id:
                    # 0. relaunch on a spare node: every later step (image
                    # fetch, replay, application traffic) uses the spare's NIC
                    migrated_from[rank] = runtime.migrate_rank(rank, new_node)
                elif ctx.node_id in self.dead_nodes:
                    # in-place restart on the crashed node: wait out its reboot
                    rebooted.append(rank)
                    if self.reboot_delay_s > 0:
                        yield sim.timeout(self.reboot_delay_s)
                    runtime.cluster.nodes[ctx.node_id].mark_rebooted()
                    if marks is not None:
                        marks.append(("reboot", t0, sim.now))
                # 1. re-create the process and restore its image
                image_bytes = snap.image_bytes if snap is not None else 0
                t0 = sim.now
                if image_bytes > 0:
                    if hierarchy.legacy:
                        old = migrated_from.get(rank)
                        if old is not None and not remote_storage:
                            # legacy local storage: the image sits on the dead
                            # node's (surviving) disk — read it there and ship
                            # it to the spare over the network
                            yield from hierarchy.read(old, image_bytes)
                            yield from runtime.cluster.network.transfer(
                                old, ctx.node_id, image_bytes)
                        else:
                            # local disk in place, or checkpoint servers that
                            # stream the image straight to wherever the rank is
                            yield from hierarchy.read(ctx.node_id, image_bytes)
                    else:
                        # tier selection: cheapest copy that *still* survives
                        # (re-resolved here — a correlated failure may have
                        # taken the planned source since the target was picked;
                        # an in-place node has rebooted by now)
                        plan = hierarchy.restore_plan(
                            rank, snap.ckpt_id, ctx.node_id)
                        if plan is None:
                            report.unsurvivable = True
                            report.completed_at = sim.now
                            runtime.recovery_reports.append(report)
                            runtime.abort_application(
                                f"image of rank {rank} ckpt {snap.ckpt_id} lost "
                                f"mid-recovery ({self.cause})")
                            return
                        report.restore_tiers[rank] = plan.level
                        yield from hierarchy.perform_restore(
                            plan, ctx.node_id, image_bytes)
                    yield sim.timeout(self.blcr.restore_exec_s)
                if marks is not None:
                    marks.append(("image_restore", t0, sim.now))
                # 2. rebuild MPI internal structures
                t0 = sim.now
                yield sim.timeout(self.config.restart_rebuild_s)
                if marks is not None:
                    marks.append(("rebuild", t0, sim.now))
                # 3. R/S exchange with peers outside the rollback set
                t0 = sim.now
                out_peers = {p for p in ctx.account.peers() if p not in rollback_set}
                if out_peers:
                    yield sim.timeout(len(out_peers) * rtt)
                if marks is not None:
                    marks.append(("exchange", t0, sim.now))
                # 4. replay this rank's own logged messages (flushed log read back)
                t0 = sim.now
                for dst, entries in out_by_src.get(rank, []):
                    nbytes, count = yield from runtime.replay_channel(rank, dst, entries, True)
                    channel_done(rank, dst, nbytes, count)
                # ... and wait for everything owed to this rank
                yield incoming_done[rank]
                if marks is not None:
                    marks.append(("replay", t0, sim.now))
                    self._rank_windows[rank] = (entered_at, sim.now)
            except Interrupt:
                return  # recovery superseded; the new attempt re-rolls us

        prepared = [sim.process(rank_restart(rank), name=f"recover:{rank}")
                    for rank in rollback]
        self._children.extend(prepared)
        for src, dst, entries in alive_plans:
            self._children.append(
                sim.process(alive_replay(src, dst, entries), name="replay"))

        yield sim.all_of(prepared)
        # 5. group members resume together
        if self.barrier_cost_s > 0:
            yield sim.timeout(self.barrier_cost_s)

        resumed_at = sim.now
        network = runtime.cluster.network
        for rank in rollback:
            snap = target_by_rank[rank]
            ctx = runtime.ctx(rank)
            runtime.relaunch_rank(rank, resume_index[rank])
            report.ranks.append(RankRecovery(
                rank=rank,
                lost_work_s=lost_work[rank],
                resumed_at=resumed_at,
                recovery_time_s=resumed_at - t_fail,
                resume_op_index=resume_index[rank],
                image_bytes=snap.image_bytes if snap is not None else 0,
                restart_node=ctx.node_id,
                migrated_from=migrated_from.get(rank),
            ))
        report.completed_at = resumed_at
        report.channels = measured
        report.placements = [(rank, old, runtime.ctx(rank).node_id)
                             for rank, old in sorted(migrated_from.items())]
        report.same_switch_placements = sum(
            1 for _rank, old, new in report.placements
            if network.same_switch(old, new))
        report.inplace_reboots = len(rebooted)
        runtime.recovery_reports.append(report)
        del self._children[:]
        return report


# --------------------------------------------------------------------- elastic restart
def plan_repartition(
    runtime: "MpiRuntime",
    workload: "Workload",
    failed_ranks: Sequence[int],
) -> RepartitionPlan:
    """Decide how the survivors absorb the failed ranks' work units.

    Permanently dead ranks are ``failed_ranks`` plus every rank currently
    placed on a failed node (a previously retired rank must never adopt new
    units).  The orphaned units go to the least compute-loaded survivors;
    the recovery line is the newest checkpoint id held by every unit-owning
    rank whose images are *all* still reachable — the survivors' own copies
    from their own nodes, the dead ranks' copies from their adopters' nodes
    (the image has to ship over the live network; a copy stranded on a dead
    node's local disk does not qualify).  ``resume_step`` is the minimum
    per-unit domain progress recorded with those images; when no retrievable
    line exists the plan restarts from scratch (``target_ckpt_id=None``,
    ``resume_step=0``) — always survivable because the scripts simply
    re-execute everything.

    Raises ``ValueError`` when every rank is dead (nothing can adopt).
    """
    part = workload.partition
    nodes = runtime.cluster.nodes
    dead = set(failed_ranks)
    dead.update(r for r in range(runtime.n_ranks)
                if nodes[runtime.ctx(r).node_id].failed)
    new_part = part.reassign(sorted(dead), workload.domain().weights())
    adoptions = tuple(
        (u, part.owner[u], new_part.owner[u])
        for u in range(part.n_units)
        if part.owner[u] != new_part.owner[u]
    )

    hierarchy = runtime.cluster.hierarchy
    owners = sorted(part.active_ranks())
    candidates = common_checkpoint_ids(runtime, owners) if owners else []

    def snapshot_at(rank: int, cid: int) -> Optional[CheckpointSnapshot]:
        proto = runtime.ctx(rank).protocol
        if proto is None:
            return None
        return next((s for s in proto.snapshot_history() if s.ckpt_id == cid),
                    None)

    def feasible(cid: int) -> bool:
        for rank in owners:
            if rank in dead:
                record = hierarchy.catalog.get((rank, cid))
                if record is None:
                    return False
                adopters = {dst for u, src, dst in adoptions if src == rank}
                for adopter in adopters:
                    reader = runtime.ctx(adopter).node_id
                    if hierarchy.restore_plan(rank, cid, reader) is None:
                        return False
            else:
                reader = runtime.ctx(rank).node_id
                if hierarchy.restore_plan(rank, cid, reader) is None:
                    return False
        return True

    for cid in candidates:
        if not feasible(cid):
            continue
        progress: List[int] = []
        for u in range(part.n_units):
            old_owner = part.owner[u]
            if old_owner in dead:
                record = hierarchy.catalog.get((old_owner, cid))
                state = record.domain_state if record is not None else None
            else:
                snap = snapshot_at(old_owner, cid)
                state = (snap.resume.domain_state
                         if snap is not None and snap.resume is not None
                         else None)
            progress.append(state.get(u, 0) if state else 0)
        return RepartitionPlan(
            failed_ranks=tuple(sorted(dead)),
            new_partition=new_part,
            resume_step=min(progress) if progress else 0,
            target_ckpt_id=cid,
            adoptions=adoptions,
        )
    return RepartitionPlan(
        failed_ranks=tuple(sorted(dead)),
        new_partition=new_part,
        resume_step=0,
        target_ckpt_id=None,
        adoptions=adoptions,
    )


class ElasticRestart:
    """Shrink the job onto the surviving ranks when spares are exhausted.

    The alternative to :class:`LiveRecovery`'s wait-for-reboot path: the
    :class:`~repro.recovery.manager.RecoveryManager` diverts here (elastic
    mode) when a victim cannot be replaced.  The whole application resets to
    a *globally consistent* line: every rank rolls back to process start
    (channel accounting zeroed on both sides — exactly-once delivery is
    preserved by construction), the dead ranks' work units are redistributed
    over the survivors (:func:`plan_repartition`), the dead ranks' newest
    retrievable checkpoint images are shipped to their adopters over the
    live network, and the survivors relaunch with *repartitioned* scripts
    that resume at the recovery line's common domain step.  Dead ranks keep
    their rank ids but own nothing and are marked finished — no rank
    renumbering, no further traffic touches them.
    """

    def __init__(
        self,
        runtime: "MpiRuntime",
        victims: Sequence[int],
        workload: "Workload",
        detection_delay_s: float = 0.25,
        barrier_cost_s: float = 0.02,
        blcr: Optional[BlcrModel] = None,
        config: Optional[ProtocolConfig] = None,
        node: int = -1,
        superseded_attempts: int = 0,
        origin_time: Optional[float] = None,
        cause: str = "crash",
    ) -> None:
        if detection_delay_s < 0:
            raise ValueError("detection_delay_s must be non-negative")
        if barrier_cost_s < 0:
            raise ValueError("barrier_cost_s must be non-negative")
        self.runtime = runtime
        self.victims = tuple(sorted(victims))
        if not self.victims:
            raise ValueError("victims must not be empty")
        self.workload = workload
        self.detection_delay_s = detection_delay_s
        self.barrier_cost_s = barrier_cost_s
        family = runtime.protocol_family
        self.blcr = blcr if blcr is not None else getattr(family, "blcr", None) or BlcrModel()
        self.config = config if config is not None else getattr(family, "config", None) or ProtocolConfig()
        self.node = node
        self.superseded_attempts = superseded_attempts
        self.origin_time = origin_time
        self.cause = cause
        #: manager-API compatibility: an elastic restart never reserves spares
        self.placements: Dict[int, int] = {}
        self._children: List[Event] = []

    def abort(self) -> None:
        """Cancel this in-flight shrink (a newer failure superseded it)."""
        for child in self._children:
            if child.is_alive:
                child.interrupt("recovery-superseded")
        del self._children[:]

    def run(self) -> Generator[Event, None, Optional[RecoveryReport]]:
        """The shrink-restart coroutine (registered as a process by the manager)."""
        try:
            report = yield from self._run_body()
        except Interrupt:
            self.abort()
            return None
        return report

    def _run_body(self) -> Generator[Event, None, RecoveryReport]:
        runtime = self.runtime
        sim = runtime.sim
        wl = self.workload
        t_attempt = sim.now
        t_fail = self.origin_time if self.origin_time is not None else t_attempt
        report = RecoveryReport(
            failure_time=t_fail, node=self.node, victims=self.victims,
            rollback_ranks=(), target_ckpt_id=None,
            superseded_attempts=self.superseded_attempts,
            cause=self.cause, shrink=True,
        )

        if self.detection_delay_s > 0:
            yield sim.timeout(self.detection_delay_s)
        report.detected_at = sim.now

        try:
            plan = plan_repartition(runtime, wl, self.victims)
        except ValueError:
            report.unsurvivable = True
            report.completed_at = sim.now
            runtime.recovery_reports.append(report)
            runtime.abort_application(
                f"elastic restart impossible: every rank is dead "
                f"({self.cause} at t={t_fail:.3f})")
            return report

        hierarchy = runtime.cluster.hierarchy
        all_ranks = range(runtime.n_ranks)
        cid = plan.target_ckpt_id
        report.rollback_ranks = tuple(all_ranks)
        report.target_ckpt_id = cid
        report.ranks_after = plan.ranks_after
        report.units_migrated = plan.units_migrated

        # Lost work is measured against the recovery line each rank's state
        # actually comes from (its snapshot at the target checkpoint), read
        # *before* the global rollback clears the histories.
        line_time: Dict[int, float] = {}
        if cid is not None:
            for rank in all_ranks:
                proto = runtime.ctx(rank).protocol
                snap = (next((s for s in proto.snapshot_history()
                              if s.ckpt_id == cid), None)
                        if proto is not None else None)
                if snap is not None:
                    line_time[rank] = snap.time

        # Global reset: every rank (survivor, victim, already-retired) rolls
        # back to process start.  Channel accounting zeroes on both sides and
        # every in-flight message dies by rollback-epoch mismatch, so the
        # relaunched repartitioned scripts see exactly-once delivery on a
        # clean communicator.
        lost_work: Dict[int, float] = {}
        for rank in all_ranks:
            ctx = runtime.ctx(rank)
            since = line_time.get(rank, ctx.stats.started_at)
            horizon = t_attempt
            if ctx.halted_at is not None and ctx.halted_at < horizon:
                horizon = ctx.halted_at
            if ctx.stats.finished_at is not None and ctx.stats.finished_at < horizon:
                horizon = ctx.stats.finished_at
            lost_work[rank] = max(horizon - since, 0.0)
            runtime.rollback_rank(rank, None)

        # Retire the dead ranks: they keep their ids, own nothing under the
        # new partition, and count as finished from here on (the coordinator
        # skips finished ranks, so no further checkpoint requests reach them).
        for rank in plan.failed_ranks:
            ctx = runtime.ctx(rank)
            ctx.in_recovery = False
            ctx.finished = True
            ctx.stats.finished_at = sim.now
            if runtime.sampler is not None:
                runtime.sampler.note_phase(rank, "finished", sim.now)

        # Install the new layout: derived programs and memory re-derive from
        # the repartitioned domain, resuming at the recovery line's step.
        wl.set_partition(plan.new_partition, start_step=plan.resume_step)
        for rank in all_ranks:
            runtime.ctx(rank).memory_bytes = wl.memory_bytes(rank)

        survivors = plan.new_partition.active_ranks()
        shipped = [0]
        restored_bytes: Dict[int, int] = {}
        ships_to: Dict[int, List[int]] = {}
        for src, dst in plan.image_ships():
            ships_to.setdefault(dst, []).append(src)

        def rank_restart(rank: int):
            try:
                ctx = runtime.ctx(rank)
                if cid is not None:
                    # 1. restore this survivor's own image from its cheapest
                    # surviving tier
                    own = hierarchy.catalog.get((rank, cid))
                    if own is not None:
                        rplan = hierarchy.restore_plan(rank, cid, ctx.node_id)
                        if rplan is not None:
                            report.restore_tiers[rank] = rplan.level
                            yield from hierarchy.perform_restore(
                                rplan, ctx.node_id, own.nbytes)
                            restored_bytes[rank] = own.nbytes
                    # 2. adopt: ship each dead donor's newest image here over
                    # the live network (the adopted units' progress)
                    for src in ships_to.get(rank, ()):
                        record = hierarchy.catalog.get((src, cid))
                        if record is None:
                            continue
                        splan = hierarchy.restore_plan(src, cid, ctx.node_id)
                        if splan is None:
                            report.unsurvivable = True
                            report.completed_at = sim.now
                            runtime.recovery_reports.append(report)
                            runtime.abort_application(
                                f"image of dead rank {src} ckpt {cid} lost "
                                f"mid-shrink ({self.cause})")
                            return
                        yield from hierarchy.perform_restore(
                            splan, ctx.node_id, record.nbytes)
                        shipped[0] += record.nbytes
                    yield sim.timeout(self.blcr.restore_exec_s)
                # 3. rebuild MPI structures for the shrunk communicator
                yield sim.timeout(self.config.restart_rebuild_s)
            except Interrupt:
                return  # superseded; the new attempt re-rolls everything

        procs = [sim.process(rank_restart(rank), name=f"shrink:{rank}")
                 for rank in survivors]
        self._children.extend(procs)
        yield sim.all_of(procs)
        if runtime.aborted is not None:
            return report
        if self.barrier_cost_s > 0:
            yield sim.timeout(self.barrier_cost_s)

        resumed_at = sim.now
        report.repartition_bytes_shipped = shipped[0]
        for rank in survivors:
            runtime.relaunch_rank(rank, 0, program=wl.program(rank))
        for rank in all_ranks:
            report.ranks.append(RankRecovery(
                rank=rank,
                lost_work_s=lost_work[rank],
                resumed_at=resumed_at,
                recovery_time_s=resumed_at - t_fail,
                resume_op_index=0,
                image_bytes=restored_bytes.get(rank, 0),
                restart_node=runtime.ctx(rank).node_id,
            ))
        report.completed_at = resumed_at
        if runtime.telemetry_tracing:
            runtime.telemetry.tracer.add(
                "recovery", start=t_fail, end=resumed_at,
                track="recovery", category="recovery",
                node=report.node, cause=report.cause, shrink=True,
                victims=list(report.victims),
                ranks_after=report.ranks_after,
                units_migrated=report.units_migrated,
                target_ckpt_id=cid)
        runtime.recovery_reports.append(report)
        del self._children[:]
        return report
