"""Group definitions.

A :class:`GroupSet` partitions the MPI ranks into disjoint checkpoint groups.
Checkpoints are coordinated *within* a group; messages crossing group
boundaries are logged by their sender.  The paper evaluates four
configurations, all expressible as group sets:

* ``NORM`` — a single group containing every rank (the original LAM/MPI
  global coordinated checkpoint),
* ``GP1`` — one rank per group (uncoordinated checkpointing with message
  logging),
* ``GP4`` — four groups of sequential ranks (an ad-hoc grouping),
* ``GP``  — groups produced by analysing the MPI trace (Algorithm 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class GroupSet:
    """A disjoint partition of ranks into checkpoint groups.

    Ranks not mentioned in any group are treated as singleton groups, which
    keeps the object usable even when the trace only covered a subset of the
    ranks.
    """

    groups: Tuple[Tuple[int, ...], ...]
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        seen: set[int] = set()
        for group in self.groups:
            if not group:
                raise ValueError("groups must not be empty")
            for rank in group:
                if rank < 0 or rank >= self.n_ranks:
                    raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")
                if rank in seen:
                    raise ValueError(f"rank {rank} appears in more than one group")
                seen.add(rank)
            if list(group) != sorted(group):
                raise ValueError("group members must be sorted")

    # -- construction helpers --------------------------------------------------
    @classmethod
    def from_lists(cls, groups: Iterable[Sequence[int]], n_ranks: int) -> "GroupSet":
        """Build from any iterable of rank collections (sorted internally)."""
        normalised = tuple(tuple(sorted(set(g))) for g in groups if len(g) > 0)
        return cls(groups=normalised, n_ranks=n_ranks)

    @classmethod
    def single(cls, n_ranks: int) -> "GroupSet":
        """One global group — the NORM configuration."""
        return cls(groups=(tuple(range(n_ranks)),), n_ranks=n_ranks)

    @classmethod
    def singletons(cls, n_ranks: int) -> "GroupSet":
        """One group per rank — the GP1 configuration."""
        return cls(groups=tuple((r,) for r in range(n_ranks)), n_ranks=n_ranks)

    @classmethod
    def contiguous(cls, n_ranks: int, n_groups: int) -> "GroupSet":
        """``n_groups`` blocks of sequential ranks — the GP4 configuration uses 4."""
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if n_groups > n_ranks:
            raise ValueError("cannot have more groups than ranks")
        base = n_ranks // n_groups
        extra = n_ranks % n_groups
        groups: List[Tuple[int, ...]] = []
        start = 0
        for i in range(n_groups):
            size = base + (1 if i < extra else 0)
            groups.append(tuple(range(start, start + size)))
            start += size
        return cls(groups=tuple(groups), n_ranks=n_ranks)

    @classmethod
    def round_robin(cls, n_ranks: int, n_groups: int) -> "GroupSet":
        """``n_groups`` groups assigning rank r to group ``r % n_groups``.

        For a row-major P×Q process grid this puts each process *column* in
        its own group — the layout Table 1 reports for HPL.
        """
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if n_groups > n_ranks:
            raise ValueError("cannot have more groups than ranks")
        groups = [tuple(range(g, n_ranks, n_groups)) for g in range(n_groups)]
        return cls(groups=tuple(groups), n_ranks=n_ranks)

    # -- queries -----------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of explicit groups (ranks not listed count as implicit singletons)."""
        return len(self.groups)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self.groups)

    def group_index_of(self, rank: int) -> int:
        """Index of the group containing ``rank``.

        Ranks not covered by any explicit group get a unique index past the
        explicit ones (their implicit singleton group).
        """
        self._check_rank(rank)
        for idx, group in enumerate(self.groups):
            if rank in group:
                return idx
        return len(self.groups) + rank

    def members(self, rank: int) -> Tuple[int, ...]:
        """Members of the group containing ``rank`` (including ``rank`` itself)."""
        self._check_rank(rank)
        for group in self.groups:
            if rank in group:
                return group
        return (rank,)

    def same_group(self, a: int, b: int) -> bool:
        """True if ranks ``a`` and ``b`` checkpoint together."""
        return self.group_index_of(a) == self.group_index_of(b)

    def covered_ranks(self) -> set[int]:
        """Ranks that appear in an explicit group."""
        return {rank for group in self.groups for rank in group}

    def all_groups(self) -> List[Tuple[int, ...]]:
        """Explicit groups plus implicit singletons, covering every rank."""
        covered = self.covered_ranks()
        out = list(self.groups)
        out.extend((r,) for r in range(self.n_ranks) if r not in covered)
        return out

    @property
    def max_group_size(self) -> int:
        """Largest group size."""
        return max((len(g) for g in self.all_groups()), default=1)

    @property
    def mean_group_size(self) -> float:
        """Average group size over all groups (including implicit singletons)."""
        groups = self.all_groups()
        return sum(len(g) for g in groups) / len(groups)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")

    def describe(self) -> str:
        """Short human-readable summary."""
        groups = self.all_groups()
        sizes = sorted((len(g) for g in groups), reverse=True)
        return f"{len(groups)} groups over {self.n_ranks} ranks (sizes {sizes[:8]}{'...' if len(sizes) > 8 else ''})"


def default_max_group_size(n_ranks: int) -> int:
    """The paper's default upper bound on group size: ⌈√n⌉."""
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    return max(1, math.isqrt(n_ranks) + (0 if math.isqrt(n_ranks) ** 2 == n_ranks else 1))


def intra_group_traffic_fraction(groupset: GroupSet, pair_bytes: Dict[Tuple[int, int], int]) -> float:
    """Fraction of communicated bytes that stay inside a group.

    ``pair_bytes`` maps unordered rank pairs to total bytes (as produced by
    :meth:`repro.mpi.trace.TraceLog.pair_totals`, taking the size element).
    A higher fraction means fewer messages need to be logged — the quantity
    the trace-assisted group formation tries to maximise.
    """
    total = 0
    intra = 0
    for (a, b), nbytes in pair_bytes.items():
        if nbytes < 0:
            raise ValueError("byte totals must be non-negative")
        if a == b:
            continue
        total += nbytes
        if groupset.same_group(a, b):
            intra += nbytes
    if total == 0:
        return 1.0
    return intra / total
