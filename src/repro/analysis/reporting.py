"""Tiny report/series builders used by the experiment harness and benches.

The benchmark harness prints, for every figure and table of the paper, the
same rows/series the paper reports.  :class:`Series` holds one named line of
a figure (x values + y values), :class:`Table` a small labelled grid, and
:func:`format_table` renders either as monospace text for the bench output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]


@dataclass
class Series:
    """One named data series (a line in a figure)."""

    name: str
    x: List[Number] = field(default_factory=list)
    y: List[Number] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have the same length")

    def append(self, x: Number, y: Number) -> None:
        """Add one point."""
        self.x.append(x)
        self.y.append(y)

    def as_dict(self) -> Dict[Number, Number]:
        """Mapping x → y (x values must be unique)."""
        return dict(zip(self.x, self.y))

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class Table:
    """A labelled grid of values (rows × columns)."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the number of columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[object]:
        """All values of one named column."""
        try:
            idx = self.columns.index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[idx] for row in self.rows]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(table: Table) -> str:
    """Render a :class:`Table` as monospace text."""
    header = [table.columns]
    body = [[_fmt(v) for v in row] for row in table.rows]
    widths = [
        max(len(str(row[i])) for row in header + body) for i in range(len(table.columns))
    ]
    lines = [table.title, "-" * len(table.title)]
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(table.columns, widths)))
    for row in body:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def table_to_dict(table: Table) -> Dict[str, object]:
    """JSON-safe rendering of a :class:`Table` (the observatory's table API)."""
    return {
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
    }


def phase_time_table(phase_times: Dict[str, object],
                     title: str = "Phase-attributed time") -> Table:
    """Render a ``phase_times`` mapping (the metrics-registry harvest) as a Table.

    ``phase_times`` is the shape produced by :func:`repro.obs.phase_times`
    and stored in payload v6: per phase (checkpoint/restart/recovery) a
    record count and per-stage total seconds.  This is the one source of
    truth for the overhead tables — totals come from the registry's phase
    histograms, not re-derived from ``ApplicationResult`` fields.
    """
    table = Table(title=title,
                  columns=["phase", "stage", "total (s)", "records", "mean (s)"])
    for phase in sorted(phase_times):
        entry = phase_times[phase] or {}
        count = entry.get("records", entry.get("reports", 0)) or 0
        for stage, total in (entry.get("stages") or {}).items():
            table.add_row(phase, stage, total, count,
                          total / count if count else 0.0)
    return table


def series_table(title: str, series: Sequence[Series], x_label: str = "x") -> Table:
    """Merge several series (sharing x values) into one table for printing."""
    xs: List[Number] = []
    for s in series:
        for x in s.x:
            if x not in xs:
                xs.append(x)
    xs.sort()
    table = Table(title=title, columns=[x_label] + [s.name for s in series])
    for x in xs:
        row: List[object] = [x]
        for s in series:
            row.append(s.as_dict().get(x, ""))
        table.add_row(*row)
    return table
