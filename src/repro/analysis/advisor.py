"""Checkpoint-interval advisor.

The paper's future-work section suggests using the communication trace (and
the measured per-checkpoint cost) to pick a good fixed checkpoint interval.
This module implements the classic first-order optimum (Young's
approximation) plus two refinements:

* the extra steady-state overhead message logging adds under the group-based
  scheme (``logging_overhead_fraction``), and
* a *measured* per-failure recovery cost (from live failure injection /
  availability runs): time spent in rollback-and-replay is time the
  application makes no progress, so the mean time between failures *in
  useful-work time* is ``MTBF − R`` and the optimum shifts to slightly more
  frequent checkpoints.  :func:`measured_costs` extracts the calibration
  from a measured run's payload in place of the analytic guesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class IntervalSuggestion:
    """Suggested checkpoint interval and the quantities behind it."""

    interval_s: float
    checkpoint_cost_s: float
    mtbf_s: float
    expected_checkpoints_per_failure: float
    #: measured per-failure recovery cost the suggestion was calibrated with
    #: (0 = analytic-only suggestion)
    recovery_cost_s: float = 0.0

    def describe(self) -> str:
        """One-line summary."""
        out = (
            f"checkpoint every {self.interval_s:.0f}s "
            f"(cost {self.checkpoint_cost_s:.1f}s, MTBF {self.mtbf_s:.0f}s"
        )
        if self.recovery_cost_s > 0:
            out += f", measured recovery {self.recovery_cost_s:.1f}s/failure"
        return out + ")"


@dataclass(frozen=True)
class MeasuredCosts:
    """Calibration quantities extracted from a measured failure run.

    Built by :func:`measured_costs` from a
    :class:`~repro.experiments.runner.ScenarioResult`, a
    :class:`~repro.campaign.results.StoredResult` or a raw payload dict —
    anything carrying the v3+ measured failure metrics.
    """

    #: mean per-process checkpoint duration (the cost term of the optimum)
    checkpoint_cost_s: float
    #: mean wall-clock recovery cost per failure (failure → group resumed)
    recovery_cost_s: float
    #: mean discarded work per failure, summed over the rolled-back ranks
    lost_work_per_failure_s: float
    #: failures the measurements were averaged over
    n_failures: int


def measured_costs(result) -> MeasuredCosts:
    """Extract advisor calibration from a measured failure run.

    ``result`` may be any object exposing the measured metric properties
    (``mean_checkpoint_duration``, ``recovery_rank_seconds``,
    ``rollback_ranks_total``, ``measured_lost_work_s``,
    ``failures_injected``) or a plain payload dict with those keys.  The
    per-failure recovery cost is the average per-rank failure→resumption
    time — group members resume together, so this approximates the wall
    clock each failure stalls its group for.
    """
    if isinstance(result, dict):
        get = result.get
    else:
        def get(name, default=0):
            return getattr(result, name, default)
    failures = int(get("failures_injected", 0))
    if failures < 1:
        raise ValueError("no failures were injected; nothing to calibrate from "
                         "(run with a FailureSpec first)")
    rolled = int(get("rollback_ranks_total", 0))
    recovery_rank_seconds = float(get("recovery_rank_seconds", 0.0))
    return MeasuredCosts(
        checkpoint_cost_s=float(get("mean_checkpoint_duration", 0.0)),
        recovery_cost_s=recovery_rank_seconds / max(rolled, 1),
        lost_work_per_failure_s=float(get("measured_lost_work_s", 0.0)) / failures,
        n_failures=failures,
    )


def young_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's approximation: T_opt = sqrt(2 · C · MTBF)."""
    if checkpoint_cost_s <= 0:
        raise ValueError("checkpoint_cost_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def suggest_checkpoint_interval(
    checkpoint_cost_s: float,
    mtbf_s: float,
    logging_overhead_fraction: float = 0.0,
    min_interval_s: Optional[float] = None,
    recovery_cost_s: float = 0.0,
    measured: Optional[MeasuredCosts] = None,
) -> IntervalSuggestion:
    """Suggest a fixed checkpoint interval.

    Parameters
    ----------
    checkpoint_cost_s:
        Average per-checkpoint wall-clock cost for the chosen grouping method
        (e.g. from :func:`repro.analysis.metrics.mean_checkpoint_duration`).
    mtbf_s:
        System mean time between failures (see
        :meth:`repro.cluster.failure.ExponentialFailureModel.system_mtbf`).
    logging_overhead_fraction:
        Steady-state slowdown caused by message logging (0.02 = 2%).  Logging
        makes *work* slightly more expensive but checkpoints cheaper, shifting
        the optimum towards more frequent checkpoints; the refinement scales
        the cost term accordingly.
    min_interval_s:
        Optional floor (a checkpoint cannot be scheduled more often than it
        takes to complete).
    recovery_cost_s:
        Measured per-failure recovery cost (rollback + replay + relaunch,
        from :class:`~repro.core.restart.RecoveryReport` metrics).  Recovery
        time does no useful work, so the mean time between failures *in
        work time* shrinks to ``mtbf_s − recovery_cost_s`` and the optimum
        moves toward more frequent checkpoints.
    measured:
        A :class:`MeasuredCosts` calibration; overrides ``checkpoint_cost_s``
        and ``recovery_cost_s`` with the measured values (pass the original
        analytic guesses for comparison tables).
    """
    if not 0.0 <= logging_overhead_fraction < 1.0:
        raise ValueError("logging_overhead_fraction must be in [0, 1)")
    if recovery_cost_s < 0:
        raise ValueError("recovery_cost_s must be non-negative")
    if measured is not None:
        if measured.checkpoint_cost_s > 0:
            checkpoint_cost_s = measured.checkpoint_cost_s
        recovery_cost_s = measured.recovery_cost_s
    # Recovery stalls the application: of every `mtbf_s` between failures
    # only `mtbf_s − recovery_cost_s` is forward progress, so that is the
    # horizon a checkpoint interval actually protects.
    effective_mtbf = max(mtbf_s - recovery_cost_s, checkpoint_cost_s, 1e-9)
    effective_cost = checkpoint_cost_s * (1.0 - logging_overhead_fraction)
    interval = young_interval(max(effective_cost, 1e-9), effective_mtbf)
    floor = max(min_interval_s or 0.0, checkpoint_cost_s)
    interval = max(interval, floor)
    return IntervalSuggestion(
        interval_s=interval,
        checkpoint_cost_s=checkpoint_cost_s,
        mtbf_s=mtbf_s,
        expected_checkpoints_per_failure=mtbf_s / interval if interval > 0 else 0.0,
        recovery_cost_s=recovery_cost_s,
    )


def expected_overhead_fraction(
    interval_s: float,
    checkpoint_cost_s: float,
    mtbf_s: float,
    restart_cost_s: float = 0.0,
) -> float:
    """First-order expected overhead of periodic checkpointing.

    Overhead = time spent checkpointing + expected rework after a failure +
    restart cost, as a fraction of useful work.  Used by the ablation bench to
    compare grouping methods end to end.
    """
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    if checkpoint_cost_s < 0 or restart_cost_s < 0:
        raise ValueError("costs must be non-negative")
    checkpoint_term = checkpoint_cost_s / interval_s
    rework_term = (interval_s / 2.0 + restart_cost_s) / mtbf_s
    return checkpoint_term + rework_term
