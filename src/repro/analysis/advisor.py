"""Checkpoint-interval advisor.

The paper's future-work section suggests using the communication trace (and
the measured per-checkpoint cost) to pick a good fixed checkpoint interval.
This module implements the classic first-order optimum (Young's
approximation) plus a small refinement that accounts for the extra steady-
state overhead message logging adds under the group-based scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class IntervalSuggestion:
    """Suggested checkpoint interval and the quantities behind it."""

    interval_s: float
    checkpoint_cost_s: float
    mtbf_s: float
    expected_checkpoints_per_failure: float

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"checkpoint every {self.interval_s:.0f}s "
            f"(cost {self.checkpoint_cost_s:.1f}s, MTBF {self.mtbf_s:.0f}s)"
        )


def young_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's approximation: T_opt = sqrt(2 · C · MTBF)."""
    if checkpoint_cost_s <= 0:
        raise ValueError("checkpoint_cost_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def suggest_checkpoint_interval(
    checkpoint_cost_s: float,
    mtbf_s: float,
    logging_overhead_fraction: float = 0.0,
    min_interval_s: Optional[float] = None,
) -> IntervalSuggestion:
    """Suggest a fixed checkpoint interval.

    Parameters
    ----------
    checkpoint_cost_s:
        Average per-checkpoint wall-clock cost for the chosen grouping method
        (e.g. from :func:`repro.analysis.metrics.mean_checkpoint_duration`).
    mtbf_s:
        System mean time between failures (see
        :meth:`repro.cluster.failure.ExponentialFailureModel.system_mtbf`).
    logging_overhead_fraction:
        Steady-state slowdown caused by message logging (0.02 = 2%).  Logging
        makes *work* slightly more expensive but checkpoints cheaper, shifting
        the optimum towards more frequent checkpoints; the refinement scales
        the cost term accordingly.
    min_interval_s:
        Optional floor (a checkpoint cannot be scheduled more often than it
        takes to complete).
    """
    if not 0.0 <= logging_overhead_fraction < 1.0:
        raise ValueError("logging_overhead_fraction must be in [0, 1)")
    effective_cost = checkpoint_cost_s * (1.0 - logging_overhead_fraction)
    interval = young_interval(max(effective_cost, 1e-9), mtbf_s)
    floor = max(min_interval_s or 0.0, checkpoint_cost_s)
    interval = max(interval, floor)
    return IntervalSuggestion(
        interval_s=interval,
        checkpoint_cost_s=checkpoint_cost_s,
        mtbf_s=mtbf_s,
        expected_checkpoints_per_failure=mtbf_s / interval if interval > 0 else 0.0,
    )


def expected_overhead_fraction(
    interval_s: float,
    checkpoint_cost_s: float,
    mtbf_s: float,
    restart_cost_s: float = 0.0,
) -> float:
    """First-order expected overhead of periodic checkpointing.

    Overhead = time spent checkpointing + expected rework after a failure +
    restart cost, as a fraction of useful work.  Used by the ablation bench to
    compare grouping methods end to end.
    """
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    if checkpoint_cost_s < 0 or restart_cost_s < 0:
        raise ValueError("costs must be non-negative")
    checkpoint_term = checkpoint_cost_s / interval_s
    rework_term = (interval_s / 2.0 + restart_cost_s) / mtbf_s
    return checkpoint_term + rework_term
