"""Checkpoint-interval advisor.

The paper's future-work section suggests using the communication trace (and
the measured per-checkpoint cost) to pick a good fixed checkpoint interval.
This module implements the classic first-order optimum (Young's
approximation) plus two refinements:

* the extra steady-state overhead message logging adds under the group-based
  scheme (``logging_overhead_fraction``), and
* a *measured* per-failure recovery cost (from live failure injection /
  availability runs): time spent in rollback-and-replay is time the
  application makes no progress, so the mean time between failures *in
  useful-work time* is ``MTBF − R`` and the optimum shifts to slightly more
  frequent checkpoints.  :func:`measured_costs` extracts the calibration
  from a measured run's payload in place of the analytic guesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class IntervalSuggestion:
    """Suggested checkpoint interval and the quantities behind it."""

    interval_s: float
    checkpoint_cost_s: float
    mtbf_s: float
    expected_checkpoints_per_failure: float
    #: measured per-failure recovery cost the suggestion was calibrated with
    #: (0 = analytic-only suggestion)
    recovery_cost_s: float = 0.0

    def describe(self) -> str:
        """One-line summary."""
        out = (
            f"checkpoint every {self.interval_s:.0f}s "
            f"(cost {self.checkpoint_cost_s:.1f}s, MTBF {self.mtbf_s:.0f}s"
        )
        if self.recovery_cost_s > 0:
            out += f", measured recovery {self.recovery_cost_s:.1f}s/failure"
        return out + ")"


@dataclass(frozen=True)
class MeasuredCosts:
    """Calibration quantities extracted from a measured failure run.

    Built by :func:`measured_costs` from a
    :class:`~repro.experiments.runner.ScenarioResult`, a
    :class:`~repro.campaign.results.StoredResult` or a raw payload dict —
    anything carrying the v3+ measured failure metrics.
    """

    #: mean per-process checkpoint duration (the cost term of the optimum)
    checkpoint_cost_s: float
    #: mean wall-clock recovery cost per failure (failure → group resumed)
    recovery_cost_s: float
    #: mean discarded work per failure, summed over the rolled-back ranks
    lost_work_per_failure_s: float
    #: failures the measurements were averaged over
    n_failures: int


def measured_costs(result) -> MeasuredCosts:
    """Extract advisor calibration from a measured failure run.

    ``result`` may be any object exposing the measured metric properties
    (``mean_checkpoint_duration``, ``recovery_rank_seconds``,
    ``rollback_ranks_total``, ``measured_lost_work_s``,
    ``failures_injected``) or a plain payload dict with those keys.  The
    per-failure recovery cost is the average per-rank failure→resumption
    time — group members resume together, so this approximates the wall
    clock each failure stalls its group for.
    """
    if isinstance(result, dict):
        get = result.get
    else:
        def get(name, default=0):
            return getattr(result, name, default)
    failures = int(get("failures_injected", 0))
    if failures < 1:
        raise ValueError("no failures were injected; nothing to calibrate from "
                         "(run with a FailureSpec first)")
    rolled = int(get("rollback_ranks_total", 0))
    recovery_rank_seconds = float(get("recovery_rank_seconds", 0.0))
    return MeasuredCosts(
        checkpoint_cost_s=float(get("mean_checkpoint_duration", 0.0)),
        recovery_cost_s=recovery_rank_seconds / max(rolled, 1),
        lost_work_per_failure_s=float(get("measured_lost_work_s", 0.0)) / failures,
        n_failures=failures,
    )


def young_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's approximation: T_opt = sqrt(2 · C · MTBF)."""
    if checkpoint_cost_s <= 0:
        raise ValueError("checkpoint_cost_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def suggest_checkpoint_interval(
    checkpoint_cost_s: float,
    mtbf_s: float,
    logging_overhead_fraction: float = 0.0,
    min_interval_s: Optional[float] = None,
    recovery_cost_s: float = 0.0,
    measured: Optional[MeasuredCosts] = None,
) -> IntervalSuggestion:
    """Suggest a fixed checkpoint interval.

    Parameters
    ----------
    checkpoint_cost_s:
        Average per-checkpoint wall-clock cost for the chosen grouping method
        (e.g. from :func:`repro.analysis.metrics.mean_checkpoint_duration`).
    mtbf_s:
        System mean time between failures (see
        :meth:`repro.cluster.failure.ExponentialFailureModel.system_mtbf`).
    logging_overhead_fraction:
        Steady-state slowdown caused by message logging (0.02 = 2%).  Logging
        makes *work* slightly more expensive but checkpoints cheaper, shifting
        the optimum towards more frequent checkpoints; the refinement scales
        the cost term accordingly.
    min_interval_s:
        Optional floor (a checkpoint cannot be scheduled more often than it
        takes to complete).
    recovery_cost_s:
        Measured per-failure recovery cost (rollback + replay + relaunch,
        from :class:`~repro.core.restart.RecoveryReport` metrics).  Recovery
        time does no useful work, so the mean time between failures *in
        work time* shrinks to ``mtbf_s − recovery_cost_s`` and the optimum
        moves toward more frequent checkpoints.
    measured:
        A :class:`MeasuredCosts` calibration; overrides ``checkpoint_cost_s``
        and ``recovery_cost_s`` with the measured values (pass the original
        analytic guesses for comparison tables).
    """
    if not 0.0 <= logging_overhead_fraction < 1.0:
        raise ValueError("logging_overhead_fraction must be in [0, 1)")
    if recovery_cost_s < 0:
        raise ValueError("recovery_cost_s must be non-negative")
    if measured is not None:
        if measured.checkpoint_cost_s > 0:
            checkpoint_cost_s = measured.checkpoint_cost_s
        recovery_cost_s = measured.recovery_cost_s
    # Recovery stalls the application: of every `mtbf_s` between failures
    # only `mtbf_s − recovery_cost_s` is forward progress, so that is the
    # horizon a checkpoint interval actually protects.
    effective_mtbf = max(mtbf_s - recovery_cost_s, checkpoint_cost_s, 1e-9)
    effective_cost = checkpoint_cost_s * (1.0 - logging_overhead_fraction)
    interval = young_interval(max(effective_cost, 1e-9), effective_mtbf)
    floor = max(min_interval_s or 0.0, checkpoint_cost_s)
    interval = max(interval, floor)
    return IntervalSuggestion(
        interval_s=interval,
        checkpoint_cost_s=checkpoint_cost_s,
        mtbf_s=mtbf_s,
        expected_checkpoints_per_failure=mtbf_s / interval if interval > 0 else 0.0,
        recovery_cost_s=recovery_cost_s,
    )


@dataclass(frozen=True)
class MultiLevelSuggestion:
    """Per-tier checkpoint cadence for a multi-level storage hierarchy.

    ``intervals_s`` maps each level to its own Young-optimal interval (each
    level's checkpoint cost against the MTBF of the failure class only that
    level can recover); ``multipliers`` rounds those to the FTI-style
    every-k-th-checkpoint counters a
    :class:`~repro.storage.policy.StoragePolicy` consumes: the L1 interval is
    the base cadence, and every ``multipliers["L2"]``-th checkpoint is
    promoted to the partner, every ``multipliers["L3"]``-th to the remote
    file system.
    """

    intervals_s: Dict[str, float] = field(default_factory=dict)
    multipliers: Dict[str, int] = field(default_factory=dict)
    costs_s: Dict[str, float] = field(default_factory=dict)
    mtbf_s: Dict[str, float] = field(default_factory=dict)

    @property
    def base_interval_s(self) -> float:
        """The cadence of the cheapest configured level."""
        for level in ("L1", "L2", "L3"):
            if level in self.intervals_s:
                return self.intervals_s[level]
        raise ValueError("no levels configured")

    def as_policy_args(self) -> Dict[str, int]:
        """``l2_every`` / ``l3_every`` keyword arguments for a StoragePolicy."""
        out: Dict[str, int] = {}
        if "L2" in self.multipliers:
            out["l2_every"] = self.multipliers["L2"]
        if "L3" in self.multipliers:
            out["l3_every"] = self.multipliers["L3"]
        return out

    def describe(self) -> str:
        """One-line summary."""
        parts = [f"{level} every {self.intervals_s[level]:.0f}s"
                 + (f" (every {self.multipliers[level]}-th ckpt)"
                    if level != "L1" and level in self.multipliers else "")
                 for level in ("L1", "L2", "L3") if level in self.intervals_s]
        return "; ".join(parts)


def suggest_multilevel_intervals(
    level_costs_s: Dict[str, float],
    level_mtbf_s: Dict[str, float],
    min_interval_s: Optional[float] = None,
) -> MultiLevelSuggestion:
    """Per-tier checkpoint cadence for a multi-level storage hierarchy.

    The FTI observation: each storage level protects against a different
    failure class with a different rate — L1 (local disk) covers software
    crashes that a reboot survives, L2 (partner replica) covers whole-node
    loss, L3 (remote file system) covers correlated events like a
    whole-switch outage, which are progressively *rarer* while the levels
    get progressively more expensive to write.  Running Young's optimum per
    level — that level's cost against the MTBF of the failures only it (or
    something above it) can recover — yields one interval per level, and the
    ratios round to the ``every k-th checkpoint`` promotion counters of a
    :class:`~repro.storage.policy.StoragePolicy`.

    Parameters
    ----------
    level_costs_s:
        Per-checkpoint cost of writing each configured level ("L1"/"L2"/"L3"
        → seconds).  L2's entry should be the *observed back-pressure* cost
        per promoted checkpoint, not the full async copy duration.
    level_mtbf_s:
        Mean time between failures of the class each level protects against.
        Must be non-increasing in severity order (correlated events are not
        more frequent than node crashes).
    min_interval_s:
        Optional floor on every level's interval.
    """
    if not level_costs_s:
        raise ValueError("level_costs_s must not be empty")
    intervals: Dict[str, float] = {}
    multipliers: Dict[str, int] = {}
    for level in ("L1", "L2", "L3"):
        if level not in level_costs_s:
            continue
        if level not in level_mtbf_s:
            raise ValueError(f"level_mtbf_s missing entry for {level}")
        cost = level_costs_s[level]
        mtbf = level_mtbf_s[level]
        if cost <= 0:
            raise ValueError(f"level cost for {level} must be positive")
        if mtbf <= 0:
            raise ValueError(f"level MTBF for {level} must be positive")
        interval = young_interval(cost, mtbf)
        if min_interval_s is not None:
            interval = max(interval, min_interval_s)
        intervals[level] = interval
    base = MultiLevelSuggestion(intervals_s=intervals).base_interval_s
    for level, interval in intervals.items():
        multipliers[level] = max(1, round(interval / base))
    return MultiLevelSuggestion(
        intervals_s=intervals,
        multipliers=multipliers,
        costs_s=dict(level_costs_s),
        mtbf_s=dict(level_mtbf_s),
    )


def expected_overhead_fraction(
    interval_s: float,
    checkpoint_cost_s: float,
    mtbf_s: float,
    restart_cost_s: float = 0.0,
) -> float:
    """First-order expected overhead of periodic checkpointing.

    Overhead = time spent checkpointing + expected rework after a failure +
    restart cost, as a fraction of useful work.  Used by the ablation bench to
    compare grouping methods end to end.
    """
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    if checkpoint_cost_s < 0 or restart_cost_s < 0:
        raise ValueError("costs must be non-negative")
    checkpoint_term = checkpoint_cost_s / interval_s
    rework_term = (interval_s / 2.0 + restart_cost_s) / mtbf_s
    return checkpoint_term + rework_term
