"""Analysis utilities: metrics, trace statistics, report/series builders."""

from repro.analysis.metrics import (
    CheckpointBreakdown,
    stage_breakdown,
    aggregate_checkpoint_time,
    aggregate_coordination_time,
    aggregate_restart_time,
    progress_gap_fraction,
    checkpoint_windows,
)
from repro.analysis.trace_analysis import (
    communication_summary,
    top_pairs,
    pair_volume_histogram,
)
from repro.analysis.reporting import Series, Table, format_table
from repro.analysis.advisor import MeasuredCosts, measured_costs, suggest_checkpoint_interval

__all__ = [
    "CheckpointBreakdown",
    "stage_breakdown",
    "aggregate_checkpoint_time",
    "aggregate_coordination_time",
    "aggregate_restart_time",
    "progress_gap_fraction",
    "checkpoint_windows",
    "communication_summary",
    "top_pairs",
    "pair_volume_histogram",
    "Series",
    "Table",
    "format_table",
    "MeasuredCosts",
    "measured_costs",
    "suggest_checkpoint_interval",
]
