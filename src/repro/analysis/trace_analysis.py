"""Trace statistics: communication matrices, top pairs, and volume histograms.

The paper visualises MPI traces as message diagrams (Figure 2) and feeds them
into the group formation.  These helpers provide the aggregate views used by
the experiment harness and by anyone inspecting a trace by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.mpi.trace import TraceLog


@dataclass(frozen=True)
class CommunicationSummary:
    """High-level statistics of a trace."""

    n_ranks: int
    total_messages: int
    total_bytes: int
    distinct_pairs: int
    mean_message_bytes: float
    max_pair_bytes: int

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.total_messages} msgs / {self.total_bytes / 1e6:.1f} MB over "
            f"{self.distinct_pairs} pairs ({self.n_ranks} ranks)"
        )


def communication_summary(trace: TraceLog) -> CommunicationSummary:
    """Compute :class:`CommunicationSummary` for a trace."""
    totals = trace.pair_totals()
    total_msgs = trace.total_messages
    total_bytes = trace.total_bytes
    max_pair = max((size for _, size in totals.values()), default=0)
    return CommunicationSummary(
        n_ranks=trace.n_ranks,
        total_messages=total_msgs,
        total_bytes=total_bytes,
        distinct_pairs=len(totals),
        mean_message_bytes=(total_bytes / total_msgs) if total_msgs else 0.0,
        max_pair_bytes=max_pair,
    )


def top_pairs(trace: TraceLog, k: int = 10) -> List[Tuple[Tuple[int, int], int, int]]:
    """The ``k`` most heavily communicating unordered pairs.

    Returns a list of ``((a, b), message_count, total_bytes)`` sorted by total
    bytes descending (the same ordering Algorithm 2 uses).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    totals = trace.pair_totals()
    items = [(pair, count, size) for pair, (count, size) in totals.items()]
    items.sort(key=lambda item: (-item[2], -item[1], item[0]))
    return items[:k]


def pair_volume_histogram(trace: TraceLog, n_bins: int = 10) -> Dict[str, List[float]]:
    """Histogram of per-pair byte totals (log-spaced bins).

    Returns ``{"edges": [...], "counts": [...]}``; useful for judging whether
    the communication graph has the strong "communities" group formation
    exploits.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    totals = [size for _, size in trace.pair_totals().values() if size > 0]
    if not totals:
        return {"edges": [], "counts": []}
    lo, hi = min(totals), max(totals)
    if lo == hi:
        return {"edges": [float(lo), float(hi)], "counts": [float(len(totals))]}
    edges = np.logspace(np.log10(lo), np.log10(hi), n_bins + 1)
    # guard against floating-point rounding excluding the largest value
    edges[-1] = hi * (1.0 + 1e-9)
    counts, _ = np.histogram(totals, bins=edges)
    return {"edges": [float(e) for e in edges], "counts": [float(c) for c in counts]}


def volume_by_rank(trace: TraceLog) -> Dict[int, Tuple[int, int]]:
    """Per-rank (bytes sent, bytes received) totals."""
    out: Dict[int, Tuple[int, int]] = {}
    for rec in trace:
        sent, received = out.get(rec.src, (0, 0))
        out[rec.src] = (sent + rec.nbytes, received)
        sent, received = out.get(rec.dst, (0, 0))
        out[rec.dst] = (sent, received + rec.nbytes)
    return out


def imbalance_factor(trace: TraceLog) -> float:
    """Max-over-mean ratio of per-rank communication volume (1.0 = perfectly balanced)."""
    volumes = [sent + received for sent, received in volume_by_rank(trace).values()]
    if not volumes:
        return 1.0
    mean = sum(volumes) / len(volumes)
    if mean == 0:
        return 1.0
    return max(volumes) / mean
