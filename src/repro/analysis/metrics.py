"""Metrics over application runs, checkpoint records and restart records.

These helpers turn the raw per-rank records produced by the runtime into the
aggregate quantities the paper plots: summed checkpoint/restart times
(Figures 6, 11, 12), coordination-only time (Figure 1), per-stage breakdowns
(Figure 9) and the "progress gap" measure used to quantify the blocking
behaviour visible in the Figure 2 trace diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ckpt.base import STAGES, CheckpointRecord, RestartRecord
from repro.mpi.runtime import ApplicationResult


@dataclass
class CheckpointBreakdown:
    """Average per-process time spent in each checkpoint stage."""

    stages: Dict[str, float] = field(default_factory=dict)
    n_records: int = 0

    @property
    def total(self) -> float:
        """Sum of all stage averages (average per-process checkpoint time)."""
        return sum(self.stages.values())

    def as_row(self) -> List[float]:
        """Stage averages in the paper's plotting order (Figure 9)."""
        return [self.stages.get(name, 0.0) for name in STAGES]


def stage_breakdown(records: Iterable[CheckpointRecord]) -> CheckpointBreakdown:
    """Average per-stage durations over a set of checkpoint records."""
    records = list(records)
    out = CheckpointBreakdown(n_records=len(records))
    if not records:
        return out
    totals: Dict[str, float] = {}
    for rec in records:
        for name, value in rec.stages.items():
            totals[name] = totals.get(name, 0.0) + value
    out.stages = {name: value / len(records) for name, value in totals.items()}
    return out


def aggregate_checkpoint_time(records: Iterable[CheckpointRecord]) -> float:
    """Sum of per-process checkpoint durations (Figure 6a / 11a / 12a)."""
    return sum(rec.duration for rec in records)


def aggregate_coordination_time(records: Iterable[CheckpointRecord]) -> float:
    """Sum of per-process coordination time, i.e. everything except the image dump (Figure 1)."""
    return sum(rec.coordination_time for rec in records)


def aggregate_restart_time(records: Iterable[RestartRecord]) -> float:
    """Sum of per-process restart durations (Figure 6b / 11b / 12b)."""
    return sum(rec.duration for rec in records)


def mean_checkpoint_duration(records: Iterable[CheckpointRecord]) -> float:
    """Average per-process checkpoint duration (Figure 14's per-checkpoint time)."""
    records = list(records)
    if not records:
        return 0.0
    return sum(rec.duration for rec in records) / len(records)


def checkpoint_windows(result: ApplicationResult) -> List[Tuple[float, float]]:
    """System-wide checkpoint windows: per checkpoint id, (earliest start, latest end)."""
    by_id: Dict[int, Tuple[float, float]] = {}
    for rec in result.checkpoint_records:
        lo, hi = by_id.get(rec.ckpt_id, (rec.start, rec.end))
        by_id[rec.ckpt_id] = (min(lo, rec.start), max(hi, rec.end))
    return [by_id[k] for k in sorted(by_id)]


def progress_gap_fraction(
    result: ApplicationResult,
    windows: Optional[Sequence[Tuple[float, float]]] = None,
    bin_s: float = 0.25,
) -> float:
    """Fraction of checkpoint-window time with *no* application message deliveries.

    This quantifies the light-grey "gaps" of the paper's Figure 2: time bins
    inside a checkpoint window during which the application made no visible
    progress (no message transfers anywhere).  A value near 0 means the
    non-blocking checkpoint really was non-blocking; a value near 1 means the
    application was effectively paused for the whole checkpoint.
    """
    if bin_s <= 0:
        raise ValueError("bin_s must be positive")
    if windows is None:
        windows = checkpoint_windows(result)
    windows = [w for w in windows if w[1] > w[0]]
    if not windows:
        return 0.0
    delivery_times = sorted(t for t, _, _, _ in result.deliveries)
    total_bins = 0
    empty_bins = 0
    for lo, hi in windows:
        t = lo
        while t < hi:
            t_next = min(t + bin_s, hi)
            total_bins += 1
            # binary search would be faster; linear scan per window is fine at
            # the scales used in the experiments
            has_delivery = any(t <= d < t_next for d in delivery_times)
            if not has_delivery:
                empty_bins += 1
            t = t_next
    if total_bins == 0:
        return 0.0
    return empty_bins / total_bins


def per_rank_checkpoint_time(result: ApplicationResult) -> Dict[int, float]:
    """Total checkpoint time per rank."""
    out: Dict[int, float] = {}
    for rec in result.checkpoint_records:
        out[rec.rank] = out.get(rec.rank, 0.0) + rec.duration
    return out


def logging_overhead_bytes(result: ApplicationResult) -> int:
    """Total bytes ever appended to sender-side logs during the run."""
    total = 0
    for ctx in result.contexts:
        log = getattr(ctx.protocol, "log", None)
        if log is not None:
            total += log.total_logged_bytes
    return total


def logged_message_count(result: ApplicationResult) -> int:
    """Total number of messages ever logged during the run."""
    total = 0
    for ctx in result.contexts:
        log = getattr(ctx.protocol, "log", None)
        if log is not None:
            total += log.total_logged_messages
    return total
