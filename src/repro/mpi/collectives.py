"""Point-to-point schedules for collective operations.

Collectives are decomposed into deterministic per-rank schedules of
point-to-point sends/receives, so that (a) they flow through exactly the same
network, accounting, tracing and checkpoint-protocol hooks as ordinary
messages, and (b) the trace analyser sees them (the paper's group formation
works purely from send records).

Algorithms:

* broadcast / reduce — binomial tree rooted at ``root``,
* barrier / allreduce — recursive doubling (with a fallback remainder step
  for non-power-of-two participant counts),
* allgather — ring.

Each schedule is a list of steps executed in order by every participant;
a step is ``("send", peer, nbytes)`` or ``("recv", peer, nbytes)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Step = Tuple[str, int, int]


def _index_of(participants: Sequence[int], rank: int) -> int:
    try:
        return list(participants).index(rank)
    except ValueError as exc:
        raise ValueError(f"rank {rank} is not among participants {list(participants)}") from exc


def _validate(participants: Sequence[int]) -> List[int]:
    parts = list(participants)
    if not parts:
        raise ValueError("participants must not be empty")
    if len(set(parts)) != len(parts):
        raise ValueError("participants must be unique")
    if any(p < 0 for p in parts):
        raise ValueError("participants must be non-negative ranks")
    return parts


def bcast_schedule(rank: int, root: int, participants: Sequence[int], nbytes: int) -> List[Step]:
    """Binomial-tree broadcast schedule for ``rank``.

    The root sends to progressively further "virtual" children; every other
    participant first receives from its virtual parent and then forwards to
    its own children.
    """
    parts = _validate(participants)
    if root not in parts:
        raise ValueError(f"root {root} not among participants")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    n = len(parts)
    ridx = _index_of(parts, root)
    vrank = (_index_of(parts, rank) - ridx) % n

    steps: List[Step] = []
    # Find the receive step (highest bit of vrank), unless we are the root.
    if vrank != 0:
        mask = 1
        while mask <= vrank:
            mask <<= 1
        mask >>= 1
        parent_v = vrank - mask
        parent = parts[(parent_v + ridx) % n]
        steps.append(("recv", parent, nbytes))
        next_mask = mask << 1
    else:
        next_mask = 1
    # Send to children.
    mask = next_mask
    while True:
        child_v = vrank + mask
        if child_v >= n:
            break
        child = parts[(child_v + ridx) % n]
        steps.append(("send", child, nbytes))
        mask <<= 1
    # Children must be contacted nearest-first for the tree to be well formed;
    # binomial broadcast sends to the *largest* offset first in the classic
    # formulation, but any consistent order is deadlock-free here because the
    # runtime's receives are source-specific.  Keep ascending order (it gives
    # slightly better pipelining with the serialising NIC model).
    return steps


def reduce_schedule(rank: int, root: int, participants: Sequence[int], nbytes: int) -> List[Step]:
    """Binomial-tree reduction schedule (mirror image of the broadcast)."""
    bcast = bcast_schedule(rank, root, participants, nbytes)
    # Reverse the tree: sends become receives and vice versa, in reverse order.
    steps: List[Step] = []
    for action, peer, size in reversed(bcast):
        steps.append(("recv" if action == "send" else "send", peer, size))
    return steps


def barrier_schedule(rank: int, participants: Sequence[int]) -> List[Step]:
    """Recursive-doubling barrier schedule (token messages of 4 bytes)."""
    return allreduce_schedule(rank, participants, nbytes=4)


def allreduce_schedule(rank: int, participants: Sequence[int], nbytes: int) -> List[Step]:
    """Recursive-doubling allreduce schedule.

    For non-power-of-two participant counts, the extra ranks first fold their
    contribution into a partner inside the largest power-of-two subset and
    receive the result back at the end (the standard MPI approach).
    """
    parts = _validate(participants)
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    n = len(parts)
    if n == 1:
        return []
    me = _index_of(parts, rank)

    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2

    steps: List[Step] = []
    if me < 2 * rem:
        if me % 2 == 1:
            # odd ranks in the remainder region fold into their even partner
            steps.append(("send", parts[me - 1], nbytes))
            steps.append(("recv", parts[me - 1], nbytes))
            return steps
        else:
            steps.append(("recv", parts[me + 1], nbytes))
            newrank = me // 2
    else:
        newrank = me - rem

    mask = 1
    while mask < pof2:
        partner_new = newrank ^ mask
        # translate back to original index
        partner = partner_new * 2 if partner_new < rem else partner_new + rem
        # pairwise exchange: lower index sends first to avoid head-of-line ambiguity
        if newrank < partner_new:
            steps.append(("send", parts[partner], nbytes))
            steps.append(("recv", parts[partner], nbytes))
        else:
            steps.append(("recv", parts[partner], nbytes))
            steps.append(("send", parts[partner], nbytes))
        mask <<= 1

    if me < 2 * rem and me % 2 == 0:
        steps.append(("send", parts[me + 1], nbytes))
    return steps


def allgather_schedule(rank: int, participants: Sequence[int], nbytes: int) -> List[Step]:
    """Ring allgather: ``n-1`` rounds, each forwarding one block to the right."""
    parts = _validate(participants)
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    n = len(parts)
    if n == 1:
        return []
    me = _index_of(parts, rank)
    right = parts[(me + 1) % n]
    left = parts[(me - 1) % n]
    steps: List[Step] = []
    for _ in range(n - 1):
        steps.append(("send", right, nbytes))
        steps.append(("recv", left, nbytes))
    return steps


def schedule_message_count(steps: Sequence[Step]) -> int:
    """Number of sends in a schedule (helper for analytic cost models)."""
    return sum(1 for action, _, _ in steps if action == "send")


def schedule_byte_count(steps: Sequence[Step]) -> int:
    """Total bytes sent by a schedule (helper for analytic cost models)."""
    return sum(size for action, _, size in steps if action == "send")
