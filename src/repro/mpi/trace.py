"""Trace records, trace logs and communication matrices.

The paper's group formation is driven by a light-weight MPI tracer whose
output is a stream of *send records* ``(source, destination, size)``.  This
module defines that record, a container with persistence (plain CSV-like
text, so traces can be inspected and diffed), and aggregate views
(pairwise communication matrix, per-channel totals) used both by the group
formation algorithm (Algorithm 2 preprocessing) and by the analysis layer.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """One send operation observed by the tracer.

    ``timestamp`` and ``tag`` are extra context beyond the paper's
    ``(SRC, DST, Z)`` triple; the group-formation preprocessing ignores them.
    """

    src: int
    dst: int
    nbytes: int
    timestamp: float = 0.0
    tag: int = 0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("ranks must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


# An unordered process pair, the unit Algorithm 2 aggregates over.
Pair = Tuple[int, int]


def unordered_pair(a: int, b: int) -> Pair:
    """Canonical unordered pair key (smaller rank first)."""
    return (a, b) if a <= b else (b, a)


class TraceLog:
    """A collection of :class:`TraceRecord` with aggregation and persistence."""

    HEADER = "# repro-mpi-trace v1: src dst nbytes timestamp tag"

    def __init__(
        self,
        records: Optional[Iterable[TraceRecord]] = None,
        n_ranks: int = 0,
        truncated: bool = False,
        dropped_records: int = 0,
        max_records: Optional[int] = None,
    ) -> None:
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be non-negative")
        self._n_ranks = n_ranks
        #: True when the ``max_records`` cap was hit — the trace is a prefix
        #: of the communication, not the whole run.
        self.truncated = truncated
        #: Number of send records that were observed but not stored.
        self.dropped_records = dropped_records
        #: Optional storage cap, enforced by :meth:`append` itself so that
        #: retroactive additions count against it exactly like live ones.
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        if records is not None:
            self.extend(records)

    # -- container protocol -------------------------------------------------
    def append(self, record: TraceRecord) -> bool:
        """Add one record; return whether it was stored.

        When a ``max_records`` cap is set and already reached, the record is
        dropped and counted in :attr:`dropped_records` instead — regardless
        of whether it arrives live from the tracer or retroactively via a
        direct ``append``/``extend`` — so the ``# truncated N`` marker
        written by :meth:`dumps` stays consistent with the stored prefix.
        """
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped_records += 1
            self.truncated = True
            return False
        self.records.append(record)
        return True

    def extend(self, records: Iterable[TraceRecord]) -> int:
        """Add many records; return how many were stored."""
        return sum(1 for record in records if self.append(record))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # -- aggregate views ------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of ranks covered (max rank + 1, or the explicit constructor value)."""
        observed = 0
        for rec in self.records:
            observed = max(observed, rec.src + 1, rec.dst + 1)
        return max(observed, self._n_ranks)

    @property
    def total_bytes(self) -> int:
        """Total bytes across all send records."""
        return sum(r.nbytes for r in self.records)

    @property
    def total_messages(self) -> int:
        """Total number of send records."""
        return len(self.records)

    def pair_totals(self) -> Dict[Pair, Tuple[int, int]]:
        """Aggregate per unordered pair: ``{(a, b): (message_count, total_bytes)}``.

        This is exactly the preprocessing step of the paper's Algorithm 2:
        records with the same unordered source/destination pair are merged
        into one tuple carrying the count and total size.
        """
        totals: Dict[Pair, Tuple[int, int]] = {}
        for rec in self.records:
            key = unordered_pair(rec.src, rec.dst)
            count, size = totals.get(key, (0, 0))
            totals[key] = (count + 1, size + rec.nbytes)
        return totals

    def communication_matrix(self, n_ranks: Optional[int] = None) -> np.ndarray:
        """Directed bytes matrix ``M[src, dst]``."""
        n = n_ranks if n_ranks is not None else self.n_ranks
        if n < 1:
            return np.zeros((0, 0), dtype=np.int64)
        mat = np.zeros((n, n), dtype=np.int64)
        for rec in self.records:
            if rec.src < n and rec.dst < n:
                mat[rec.src, rec.dst] += rec.nbytes
        return mat

    def message_count_matrix(self, n_ranks: Optional[int] = None) -> np.ndarray:
        """Directed message-count matrix ``M[src, dst]``."""
        n = n_ranks if n_ranks is not None else self.n_ranks
        if n < 1:
            return np.zeros((0, 0), dtype=np.int64)
        mat = np.zeros((n, n), dtype=np.int64)
        for rec in self.records:
            if rec.src < n and rec.dst < n:
                mat[rec.src, rec.dst] += 1
        return mat

    def bytes_between(self, a: int, b: int) -> int:
        """Total bytes exchanged (both directions) between ranks ``a`` and ``b``."""
        key = unordered_pair(a, b)
        return sum(r.nbytes for r in self.records if unordered_pair(r.src, r.dst) == key)

    def time_window(self, start: float, end: float) -> "TraceLog":
        """Sub-trace of records with ``start <= timestamp < end``."""
        if end < start:
            raise ValueError("end must be >= start")
        return TraceLog(
            [r for r in self.records if start <= r.timestamp < end], n_ranks=self._n_ranks
        )

    # -- persistence ------------------------------------------------------------
    def dumps(self) -> str:
        """Serialise to a plain-text, line-per-record format."""
        buf = io.StringIO()
        buf.write(self.HEADER + "\n")
        buf.write(f"# n_ranks {self.n_ranks}\n")
        if self.truncated:
            buf.write(f"# truncated {self.dropped_records}\n")
        for r in self.records:
            buf.write(f"{r.src} {r.dst} {r.nbytes} {r.timestamp!r} {r.tag}\n")
        return buf.getvalue()

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path``."""
        Path(path).write_text(self.dumps(), encoding="utf-8")

    @classmethod
    def loads(cls, text: str) -> "TraceLog":
        """Parse a trace produced by :meth:`dumps`."""
        records: List[TraceRecord] = []
        n_ranks = 0
        truncated = False
        dropped = 0
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) >= 2 and parts[0] == "n_ranks":
                    n_ranks = int(parts[1])
                elif parts and parts[0] == "truncated":
                    truncated = True
                    dropped = int(parts[1]) if len(parts) >= 2 else 0
                continue
            fields = line.split()
            if len(fields) != 5:
                raise ValueError(f"malformed trace line {lineno}: {line!r}")
            src, dst, nbytes = int(fields[0]), int(fields[1]), int(fields[2])
            ts, tag = float(fields[3]), int(fields[4])
            records.append(TraceRecord(src=src, dst=dst, nbytes=nbytes, timestamp=ts, tag=tag))
        return cls(records, n_ranks=n_ranks, truncated=truncated, dropped_records=dropped)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceLog":
        """Read a trace from ``path``."""
        return cls.loads(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f", truncated ({self.dropped_records} dropped)" if self.truncated else ""
        return f"<TraceLog {len(self.records)} records, {self.total_bytes} bytes{extra}>"
