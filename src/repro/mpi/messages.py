"""Message records and per-channel byte accounting.

The group-based protocol (Algorithm 1 of the paper) is driven entirely by
per-channel byte counters:

* ``S_X`` — bytes this process has sent to process X,
* ``R_X`` — bytes this process has received from process X,
* ``RR_X`` — the recorded value of ``R_X`` at the latest checkpoint,

plus piggybacked ``RR`` values used to garbage-collect sender-side logs.
:class:`ChannelAccount` implements that bookkeeping; :class:`Message` is the
unit travelling through the network.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Optional


class MessageKind(enum.Enum):
    """Classes of traffic the runtime distinguishes.

    Only ``APP`` messages count towards the S/R channel accounting and the
    communication trace; ``CONTROL`` carries protocol coordination
    (bookmarks, barrier tokens, restart negotiation) and ``MARKER`` carries
    Chandy–Lamport markers.
    """

    APP = "app"
    CONTROL = "control"
    MARKER = "marker"


_message_counter = itertools.count()


class Message:
    """One message in flight (or delivered).

    Hand-written ``__slots__`` class (millions are allocated per simulated
    run): no instance ``__dict__``, no dataclass machinery, and the
    ``piggyback`` dictionary is **lazy** — ``None`` until a protocol actually
    stamps metadata onto the message, so control/marker traffic and
    steady-state in-group sends never allocate it.

    Attributes
    ----------
    src, dst:
        Sender and receiver ranks.
    nbytes:
        Payload size in bytes (application payload, excluding piggyback).
    tag:
        MPI-style tag used for matching.
    kind:
        Traffic class (:class:`MessageKind`).
    piggyback:
        Small dictionary of protocol metadata carried with the message
        (e.g. the ``RR`` value used for log garbage collection), or ``None``
        when the message carries no metadata (the common case).
    payload:
        Optional opaque payload used by control messages.
    sent_at / arrived_at:
        Simulation timestamps filled in by the runtime.
    src_epoch / dst_epoch:
        Rollback epochs of the two endpoints at send time.  Only stamped when
        live failure injection is active; a message whose stamp no longer
        matches an endpoint's current epoch was carried by a connection that a
        process kill has since reset, and is dropped at delivery.  The
        defaults mean failure-free runs never pay for the stamps.
    end_offset / msg_index:
        Cumulative channel position (bytes, message count) of this message on
        its (src, dst) application channel, used by re-executed senders to
        skip duplicates after a rollback.  Stamped only under failure
        injection.
    seq:
        Globally unique, monotonically increasing id (tie-breaker and
        debugging aid).
    """

    __slots__ = (
        "src", "dst", "nbytes", "tag", "kind", "piggyback", "payload",
        "sent_at", "arrived_at", "src_epoch", "dst_epoch",
        "end_offset", "msg_index", "seq", "_arrival",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int = 0,
        kind: MessageKind = MessageKind.APP,
        piggyback: Optional[Dict[str, Any]] = None,
        payload: Any = None,
        sent_at: float = -1.0,
        arrived_at: float = -1.0,
        src_epoch: int = 0,
        dst_epoch: int = 0,
        end_offset: int = -1,
        msg_index: int = -1,
    ) -> None:
        if src < 0 or dst < 0:
            raise ValueError("ranks must be non-negative")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.tag = tag
        self.kind = kind
        self.piggyback = piggyback
        self.payload = payload
        self.sent_at = sent_at
        self.arrived_at = arrived_at
        self.src_epoch = src_epoch
        self.dst_epoch = dst_epoch
        self.end_offset = end_offset
        self.msg_index = msg_index
        self.seq = next(_message_counter)
        #: inbox delivery-order stamp (set by the receiving Inbox on put)
        self._arrival = -1

    @property
    def is_app(self) -> bool:
        """True for application traffic (counts towards S/R accounting)."""
        return self.kind is MessageKind.APP

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Msg #{self.seq} {self.kind.value} {self.src}->{self.dst} "
            f"tag={self.tag} {self.nbytes}B>"
        )


def fast_message(src: int, dst: int, nbytes: int, tag: int, kind: MessageKind,
                 piggyback: Optional[Dict[str, Any]], payload: Any,
                 sent_at: float) -> Message:
    """Allocate a :class:`Message` without constructor validation.

    The runtime creates one message per simulated send — this skips the
    ``__init__`` re-validation for arguments the runtime has already checked.
    Behaviourally identical to calling ``Message(...)`` with the same fields.
    """
    msg = object.__new__(Message)
    msg.src = src
    msg.dst = dst
    msg.nbytes = nbytes
    msg.tag = tag
    msg.kind = kind
    msg.piggyback = piggyback
    msg.payload = payload
    msg.sent_at = sent_at
    msg.arrived_at = -1.0
    msg.src_epoch = 0
    msg.dst_epoch = 0
    msg.end_offset = -1
    msg.msg_index = -1
    msg.seq = next(_message_counter)
    msg._arrival = -1
    return msg


class ChannelAccount:
    """Per-rank S/R byte counters over all peers.

    This is the data structure behind the paper's ``RX``/``SX`` definitions.
    Counters are monotonically non-decreasing; ``snapshot`` captures the
    values used as ``RR``/``SS`` at checkpoint time.
    """

    def __init__(self, rank: int) -> None:
        if rank < 0:
            raise ValueError("rank must be non-negative")
        self.rank = rank
        self._sent: Dict[int, int] = {}
        self._received: Dict[int, int] = {}
        self._sent_msgs: Dict[int, int] = {}
        self._received_msgs: Dict[int, int] = {}

    # -- updates -----------------------------------------------------------
    def record_send(self, dst: int, nbytes: int) -> None:
        """Account an application send of ``nbytes`` to ``dst`` (updates S_dst)."""
        if dst < 0:
            raise ValueError("dst must be non-negative")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._sent[dst] = self._sent.get(dst, 0) + nbytes
        self._sent_msgs[dst] = self._sent_msgs.get(dst, 0) + 1

    def record_receive(self, src: int, nbytes: int) -> None:
        """Account an application receive of ``nbytes`` from ``src`` (updates R_src)."""
        if src < 0:
            raise ValueError("src must be non-negative")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._received[src] = self._received.get(src, 0) + nbytes
        self._received_msgs[src] = self._received_msgs.get(src, 0) + 1

    def add_sent(self, dst: int, nbytes: int) -> None:
        """Unchecked :meth:`record_send` for the runtime hot path (pre-validated args)."""
        sent = self._sent
        sent[dst] = sent.get(dst, 0) + nbytes
        msgs = self._sent_msgs
        msgs[dst] = msgs.get(dst, 0) + 1

    def add_received(self, src: int, nbytes: int) -> None:
        """Unchecked :meth:`record_receive` for the runtime hot path (pre-validated args)."""
        received = self._received
        received[src] = received.get(src, 0) + nbytes
        msgs = self._received_msgs
        msgs[src] = msgs.get(src, 0) + 1

    # -- queries ----------------------------------------------------------
    def sent_to(self, dst: int) -> int:
        """S_dst: total application bytes sent to ``dst``."""
        return self._sent.get(dst, 0)

    def received_from(self, src: int) -> int:
        """R_src: total application bytes received from ``src``."""
        return self._received.get(src, 0)

    def messages_sent_to(self, dst: int) -> int:
        """Number of application messages sent to ``dst``."""
        return self._sent_msgs.get(dst, 0)

    def messages_received_from(self, src: int) -> int:
        """Number of application messages received from ``src``."""
        return self._received_msgs.get(src, 0)

    def peers(self) -> set[int]:
        """Every rank this process has exchanged application data with."""
        return set(self._sent) | set(self._received)

    @property
    def total_sent(self) -> int:
        """Total application bytes sent to all peers."""
        return sum(self._sent.values())

    @property
    def total_received(self) -> int:
        """Total application bytes received from all peers."""
        return sum(self._received.values())

    def messages_sent_by_destination(self) -> Dict[int, int]:
        """Copy of the per-peer sent-message counters."""
        return dict(self._sent_msgs)

    def messages_received_by_source(self) -> Dict[int, int]:
        """Copy of the per-peer received-message counters."""
        return dict(self._received_msgs)

    def restore(
        self,
        sent: Dict[int, int],
        received: Dict[int, int],
        sent_msgs: Optional[Dict[int, int]] = None,
        received_msgs: Optional[Dict[int, int]] = None,
    ) -> None:
        """Reset every counter to a previously captured state (rollback).

        Used when a process is rolled back to its last checkpoint during live
        failure recovery: the counters must return to exactly the values the
        checkpointed process would have had, so the byte offsets of
        re-executed sends line up with what peers already received.
        """
        self._sent = dict(sent)
        self._received = dict(received)
        self._sent_msgs = dict(sent_msgs) if sent_msgs is not None else {}
        self._received_msgs = dict(received_msgs) if received_msgs is not None else {}

    # -- snapshots ----------------------------------------------------------
    def snapshot_sent(self) -> Dict[int, int]:
        """Copy of the S counters (used as ``SS`` at checkpoint time)."""
        return dict(self._sent)

    def snapshot_received(self) -> Dict[int, int]:
        """Copy of the R counters (used as ``RR`` at checkpoint time)."""
        return dict(self._received)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChannelAccount rank={self.rank} "
            f"sent={self.total_sent}B recv={self.total_received}B>"
        )


def in_transit_bytes(
    sender_sent: Dict[int, int],
    receiver_received: Dict[int, int],
    sender: int,
    receiver: int,
) -> int:
    """Bytes sent by ``sender`` to ``receiver`` but not yet received.

    Helper used by drain logic and by the restart replay-volume computation:
    ``max(0, SS_sender→receiver − RR_receiver←sender)``.
    """
    sent = sender_sent.get(receiver, 0)
    received = receiver_received.get(sender, 0)
    return max(0, sent - received)
