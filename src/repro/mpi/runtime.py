"""The MPI-like runtime: rank contexts, messaging, and script execution.

One :class:`RankContext` per MPI process holds the inbox, the S/R channel
accounting, pending checkpoint requests and per-rank statistics.  The
:class:`MpiRuntime` moves messages between contexts through the cluster's
network model, interprets application operation scripts, and gives checkpoint
protocols the services they need (control messages, drain waits, storage
access).

Checkpoint signals are honoured at operation boundaries and while a rank is
blocked in a receive, mirroring where a system-level checkpointing layer
(LAM/MPI's CR SSI modules + BLCR signal handler) interrupts a real MPI
process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cluster.topology import Cluster
from repro.mpi import collectives as coll
from repro.mpi.messages import ChannelAccount, Message, MessageKind
from repro.mpi.ops import (
    Allgather,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Isend,
    Marker,
    Op,
    Recv,
    Reduce,
    Send,
    SendRecv,
    Wait,
)
from repro.mpi.tracer import Tracer
from repro.sim.engine import SimProcess, Simulator
from repro.sim.primitives import Event, Store
from repro.sim.rng import RandomStreams

# Tags reserved for internal traffic; applications should use tags below this.
COLLECTIVE_TAG_BASE = 1_000_000
CONTROL_TAG_BASE = 2_000_000


@dataclass
class RuntimeConfig:
    """Behavioural switches of the runtime.

    Parameters
    ----------
    record_deliveries:
        Keep a global log of ``(time, src, dst, nbytes)`` for every delivered
        application message (needed for the Figure 2 trace diagrams).
    control_message_bytes:
        Default payload size of protocol control messages.
    collective_tag:
        Base tag for collectives (separated from application point-to-point).
    """

    record_deliveries: bool = True
    control_message_bytes: int = 64
    collective_tag: int = COLLECTIVE_TAG_BASE

    def __post_init__(self) -> None:
        if self.control_message_bytes < 0:
            raise ValueError("control_message_bytes must be non-negative")


@dataclass
class RankStats:
    """Per-rank accounting filled in while the script executes."""

    compute_time: float = 0.0
    send_time: float = 0.0
    recv_wait_time: float = 0.0
    checkpoint_time: float = 0.0
    ops_executed: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None
    checkpoints: List[Any] = field(default_factory=list)
    progress_marks: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def elapsed(self) -> Optional[float]:
        """Wall time of this rank's script (None while still running)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class RankContext:
    """Everything the runtime and the protocols know about one rank."""

    def __init__(self, sim: Simulator, rank: int, node_id: int, memory_bytes: int) -> None:
        if rank < 0:
            raise ValueError("rank must be non-negative")
        if memory_bytes < 0:
            raise ValueError("memory_bytes must be non-negative")
        self.sim = sim
        self.rank = rank
        self.node_id = node_id
        #: resident set of the application on this rank (drives image size)
        self.memory_bytes = memory_bytes
        self.inbox = Store(sim, name=f"inbox:{rank}")
        self.account = ChannelAccount(rank)
        self.stats = RankStats()
        self.finished = False
        #: set by the protocol family when the runtime is constructed
        self.protocol: Any = None
        self.pending_requests: List[Any] = []
        self._signal_event = Event(sim, name=f"signal:{rank}")
        self._arrival_watchers: List[Tuple[int, int, Event]] = []
        #: True while this rank is inside a checkpoint procedure
        self.in_checkpoint = False

    # -- checkpoint signalling ------------------------------------------------
    @property
    def signal_event(self) -> Event:
        """Event that fires when a checkpoint request is delivered."""
        return self._signal_event

    def deliver_request(self, request: Any) -> None:
        """Deliver a checkpoint request (called by the coordinator).

        The request only becomes *visible* to the rank at
        ``request.issued_at + request.stagger_s`` — until then the rank keeps
        executing application operations, which models mpirun propagating the
        request to the processes one by one.
        """
        self.pending_requests.append(request)
        if not self._signal_event.triggered:
            self._signal_event.succeed(request)

    @staticmethod
    def _visible_at(request: Any) -> float:
        return request.issued_at + getattr(request, "stagger_s", 0.0)

    def has_pending_request(self) -> bool:
        """True if at least one checkpoint request has been delivered (visible or not)."""
        return bool(self.pending_requests)

    def has_visible_request(self, now: float) -> bool:
        """True if a delivered request has become visible to this rank."""
        return any(now >= self._visible_at(r) - 1e-12 for r in self.pending_requests)

    def next_visible_at(self) -> float:
        """Earliest visibility time among pending requests (inf if none pending)."""
        if not self.pending_requests:
            return float("inf")
        return min(self._visible_at(r) for r in self.pending_requests)

    def pop_visible_request(self, now: float) -> Any:
        """Take the oldest visible request and re-arm the signal event if drained."""
        for i, request in enumerate(self.pending_requests):
            if now >= self._visible_at(request) - 1e-12:
                self.pending_requests.pop(i)
                break
        else:
            raise RuntimeError(f"rank {self.rank}: no visible checkpoint request to pop")
        if not self.pending_requests:
            self._signal_event = Event(self.sim, name=f"signal:{self.rank}")
        return request

    # -- arrival watching (drain support) ---------------------------------------
    def wait_for_received(self, src: int, threshold: int) -> Event:
        """Event firing once R_src (arrived bytes from ``src``) reaches ``threshold``."""
        ev = Event(self.sim, name=f"drain:{self.rank}<-{src}")
        if self.account.received_from(src) >= threshold:
            ev.succeed(self.account.received_from(src))
        else:
            self._arrival_watchers.append((src, threshold, ev))
        return ev

    def _notify_arrival(self, src: int) -> None:
        if not self._arrival_watchers:
            return
        received = self.account.received_from(src)
        still_waiting: List[Tuple[int, int, Event]] = []
        for watch_src, threshold, ev in self._arrival_watchers:
            if watch_src == src and received >= threshold and not ev.triggered:
                ev.succeed(received)
            elif not ev.triggered:
                still_waiting.append((watch_src, threshold, ev))
        self._arrival_watchers = still_waiting

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankContext rank={self.rank} node={self.node_id}>"


@dataclass
class ApplicationResult:
    """Outcome of one simulated application run."""

    n_ranks: int
    protocol_name: str
    makespan: float
    contexts: List[RankContext]
    deliveries: List[Tuple[float, int, int, int]]
    trace: Optional[Any] = None

    @property
    def checkpoint_records(self) -> List[Any]:
        """All per-rank checkpoint records, across ranks and checkpoints."""
        out: List[Any] = []
        for ctx in self.contexts:
            out.extend(ctx.stats.checkpoints)
        return out

    @property
    def checkpoints_completed(self) -> int:
        """Number of distinct checkpoint ids completed by every participating rank."""
        ids: Dict[int, int] = {}
        for rec in self.checkpoint_records:
            ids[rec.ckpt_id] = ids.get(rec.ckpt_id, 0) + 1
        return len(ids)

    def aggregate_checkpoint_time(self) -> float:
        """Sum of checkpoint durations over all ranks (the paper's Figure 6a metric)."""
        return sum(rec.duration for rec in self.checkpoint_records)

    def aggregate_coordination_time(self) -> float:
        """Sum of coordination-only time over all ranks (the Figure 1 metric)."""
        return sum(rec.coordination_time for rec in self.checkpoint_records)

    def per_rank_finish_times(self) -> List[float]:
        """Finish time of each rank's script."""
        return [
            ctx.stats.finished_at if ctx.stats.finished_at is not None else float("nan")
            for ctx in self.contexts
        ]

    def snapshots(self) -> Dict[int, Any]:
        """Latest checkpoint snapshot per rank (ranks without one are omitted)."""
        out: Dict[int, Any] = {}
        for ctx in self.contexts:
            if ctx.protocol is None:
                continue
            snap = ctx.protocol.latest_snapshot()
            if snap is not None:
                out[ctx.rank] = snap
        return out


ProgramFactory = Callable[[int], Iterable[Op]]


class MpiRuntime:
    """Executes per-rank operation scripts over the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        n_ranks: int,
        protocol_family: Optional[Any] = None,
        rng: Optional[RandomStreams] = None,
        tracer: Optional[Tracer] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.sim = sim
        self.cluster = cluster
        self.n_ranks = n_ranks
        self.rng = rng if rng is not None else RandomStreams(0)
        self.tracer = tracer
        self.config = config if config is not None else RuntimeConfig()
        self.protocol_family = protocol_family

        placement = cluster.place_ranks(n_ranks)
        self.contexts: List[RankContext] = []
        for rank in range(n_ranks):
            ctx = RankContext(sim, rank, placement[rank], memory_bytes=0)
            self.contexts.append(ctx)
        if protocol_family is not None:
            for ctx in self.contexts:
                ctx.protocol = protocol_family.create(ctx, self)

        self.deliveries: List[Tuple[float, int, int, int]] = []
        self._rank_processes: List[SimProcess] = []
        self._collective_seq: Dict[int, int] = {}

    # ------------------------------------------------------------------ basics
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def ctx(self, rank: int) -> RankContext:
        """Context of ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        return self.contexts[rank]

    def running_ranks(self) -> Tuple[int, ...]:
        """Ranks whose scripts have not finished yet."""
        return tuple(ctx.rank for ctx in self.contexts if not ctx.finished)

    def set_memory(self, memory_per_rank: Union[int, Sequence[int], Dict[int, int]]) -> None:
        """Set the application resident set per rank (drives checkpoint image size)."""
        if isinstance(memory_per_rank, int):
            for ctx in self.contexts:
                ctx.memory_bytes = memory_per_rank
        elif isinstance(memory_per_rank, dict):
            for rank, nbytes in memory_per_rank.items():
                self.ctx(rank).memory_bytes = int(nbytes)
        else:
            values = list(memory_per_rank)
            if len(values) != self.n_ranks:
                raise ValueError("memory_per_rank sequence must have one entry per rank")
            for ctx, nbytes in zip(self.contexts, values):
                ctx.memory_bytes = int(nbytes)

    # ------------------------------------------------------------- messaging
    def _make_message(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int,
        kind: MessageKind,
        piggyback: Optional[Dict[str, Any]] = None,
        payload: Any = None,
    ) -> Message:
        if not 0 <= dst < self.n_ranks:
            raise ValueError(f"destination rank {dst} out of range")
        msg = Message(
            src=src,
            dst=dst,
            nbytes=nbytes,
            tag=tag,
            kind=kind,
            piggyback=dict(piggyback) if piggyback else {},
            payload=payload,
        )
        msg.sent_at = self.sim.now
        return msg

    def _deliver(self, msg: Message, wire_bytes: int) -> Generator[Event, None, None]:
        """Background delivery: network path to the destination, then inbox."""
        src_node = self.ctx(msg.src).node_id
        dst_node = self.ctx(msg.dst).node_id
        if src_node != dst_node:
            yield from self.cluster.network.rx_path(dst_node, wire_bytes)
        msg.arrived_at = self.sim.now
        dst_ctx = self.ctx(msg.dst)
        if msg.is_app:
            dst_ctx.account.record_receive(msg.src, msg.nbytes)
            dst_ctx.stats.messages_received += 1
            dst_ctx.stats.bytes_received += msg.nbytes
            if dst_ctx.protocol is not None:
                dst_ctx.protocol.on_arrival(msg)
            if self.config.record_deliveries:
                self.deliveries.append((self.sim.now, msg.src, msg.dst, msg.nbytes))
            dst_ctx._notify_arrival(msg.src)
        dst_ctx.inbox.put(msg)

    def app_send(
        self,
        ctx: RankContext,
        dst: int,
        nbytes: int,
        tag: int = 0,
        blocking: bool = True,
    ) -> Generator[Event, None, Message]:
        """Send an application message; the sender is busy for its local share."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = self.sim.now
        extra_delay = 0.0
        piggyback: Dict[str, Any] = {}
        if ctx.protocol is not None:
            extra_delay, piggyback = ctx.protocol.on_send(dst, nbytes, tag)
        if self.tracer is not None:
            extra_delay += self.tracer.on_send(
                Message(src=ctx.rank, dst=dst, nbytes=nbytes, tag=tag), self.sim.now
            )
        msg = self._make_message(ctx.rank, dst, nbytes, tag, MessageKind.APP, piggyback)
        ctx.account.record_send(dst, nbytes)
        ctx.stats.messages_sent += 1
        ctx.stats.bytes_sent += nbytes
        wire_bytes = nbytes + (16 if piggyback else 0)

        if extra_delay > 0:
            yield self.sim.timeout(extra_delay)

        src_node = ctx.node_id
        dst_node = self.ctx(dst).node_id
        if blocking and src_node != dst_node:
            # Sender occupied for the TX-side cost of the transfer.
            yield from self.cluster.network.tx(src_node, wire_bytes)
        else:
            yield self.sim.timeout(self.cluster.network.spec.per_message_overhead_s)
            if src_node != dst_node:
                self.sim.process(
                    self.cluster.network.tx(src_node, wire_bytes), name=f"tx:{msg.seq}"
                )
        self.sim.process(self._deliver(msg, wire_bytes), name=f"deliver:{msg.seq}")
        ctx.stats.send_time += self.sim.now - start
        return msg

    def control_send(
        self,
        ctx: RankContext,
        dst: int,
        tag: int,
        payload: Any = None,
        nbytes: Optional[int] = None,
        kind: MessageKind = MessageKind.CONTROL,
    ) -> Generator[Event, None, Message]:
        """Send a protocol control message (not logged, not traced, not S/R-counted)."""
        size = nbytes if nbytes is not None else self.config.control_message_bytes
        msg = self._make_message(ctx.rank, dst, size, tag, kind, payload=payload)
        src_node = ctx.node_id
        dst_node = self.ctx(dst).node_id
        yield self.sim.timeout(self.cluster.network.spec.per_message_overhead_s)
        if src_node != dst_node:
            self.sim.process(self.cluster.network.tx(src_node, size), name=f"ctx:{msg.seq}")
        self.sim.process(self._deliver(msg, size), name=f"deliver:{msg.seq}")
        return msg

    def _match(
        self,
        kind: Optional[MessageKind],
        src: Optional[int],
        tag: Optional[int],
    ) -> Callable[[Message], bool]:
        def matcher(m: Message) -> bool:
            if kind is not None and m.kind is not kind:
                return False
            if src is not None and m.src != src:
                return False
            if tag is not None and m.tag != tag:
                return False
            return True

        return matcher

    def app_recv(
        self,
        ctx: RankContext,
        src: Optional[int] = None,
        tag: Optional[int] = None,
        interruptible: bool = True,
    ) -> Generator[Event, None, Message]:
        """Blocking receive of an application message.

        While blocked, pending checkpoint requests are honoured (the protocol
        runs and the receive then continues), unless ``interruptible`` is
        False (used internally by protocols that must not re-enter).
        """
        start = self.sim.now
        get_ev = ctx.inbox.get(self._match(MessageKind.APP, src, tag))
        while True:
            if interruptible and not ctx.in_checkpoint and ctx.has_visible_request(self.sim.now):
                yield from self.handle_pending_checkpoints(ctx)
                continue
            if get_ev.processed:
                msg: Message = get_ev.value
                break
            if interruptible and not ctx.in_checkpoint:
                if ctx.has_pending_request():
                    # A request was delivered but is not visible yet; wake up
                    # either when the message arrives or when it becomes visible.
                    wait = max(ctx.next_visible_at() - self.sim.now, 0.0)
                    yield self.sim.any_of([get_ev, self.sim.timeout(wait)])
                else:
                    yield self.sim.any_of([get_ev, ctx.signal_event])
                if get_ev.processed:
                    msg = get_ev.value
                    break
                # otherwise a checkpoint signal arrived or became visible; loop handles it
            else:
                yield get_ev
                msg = get_ev.value
                break
        ctx.stats.recv_wait_time += self.sim.now - start
        return msg

    def control_recv(
        self,
        ctx: RankContext,
        src: Optional[int] = None,
        tag: Optional[int] = None,
        kind: MessageKind = MessageKind.CONTROL,
    ) -> Generator[Event, None, Message]:
        """Blocking receive of a control/marker message (never interrupted)."""
        get_ev = ctx.inbox.get(self._match(kind, src, tag))
        yield get_ev
        return get_ev.value

    # ----------------------------------------------------- storage for protocols
    def storage_write(self, ctx: RankContext, nbytes: int) -> Generator[Event, None, float]:
        """Write ``nbytes`` to the configured checkpoint storage for this rank's node."""
        result = yield from self.cluster.checkpoint_storage.write(ctx.node_id, nbytes)
        return result

    def storage_read(self, ctx: RankContext, nbytes: int) -> Generator[Event, None, float]:
        """Read ``nbytes`` from the configured checkpoint storage for this rank's node."""
        result = yield from self.cluster.checkpoint_storage.read(ctx.node_id, nbytes)
        return result

    # --------------------------------------------------------------- checkpoints
    def handle_pending_checkpoints(self, ctx: RankContext) -> Generator[Event, None, None]:
        """Run the protocol's checkpoint procedure for every *visible* pending request."""
        while ctx.has_visible_request(self.sim.now):
            request = ctx.pop_visible_request(self.sim.now)
            if ctx.protocol is None:
                continue
            ctx.in_checkpoint = True
            start = self.sim.now
            try:
                record = yield from ctx.protocol.checkpoint(request)
            finally:
                ctx.in_checkpoint = False
            ctx.stats.checkpoint_time += self.sim.now - start
            if record is not None:
                ctx.stats.checkpoints.append(record)

    # ------------------------------------------------------------------ execution
    def _collective_tag(self, base_tag: int) -> int:
        seq = self._collective_seq.get(base_tag, 0)
        self._collective_seq[base_tag] = seq + 1
        return self.config.collective_tag + base_tag

    def _run_schedule(
        self, ctx: RankContext, steps: Sequence[Tuple[str, int, int]], tag: int
    ) -> Generator[Event, None, None]:
        for action, peer, nbytes in steps:
            if not ctx.in_checkpoint and ctx.has_visible_request(self.sim.now):
                yield from self.handle_pending_checkpoints(ctx)
            if action == "send":
                yield from self.app_send(ctx, peer, nbytes, tag=tag)
            elif action == "recv":
                yield from self.app_recv(ctx, src=peer, tag=tag)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown schedule action {action!r}")

    def execute_op(self, ctx: RankContext, op: Op) -> Generator[Event, None, None]:
        """Interpret one application operation for ``ctx``."""
        ctx.stats.ops_executed += 1
        if isinstance(op, Compute):
            node = self.cluster.nodes[ctx.node_id]
            duration = node.compute_time(op.seconds)
            if op.jitter and node.spec.os_jitter_sigma > 0:
                duration = self.rng.lognormal_jitter(
                    f"jitter:rank{ctx.rank}", duration, node.spec.os_jitter_sigma
                )
            ctx.stats.compute_time += duration
            if duration > 0:
                yield self.sim.timeout(duration)
        elif isinstance(op, Send):
            yield from self.app_send(ctx, op.dst, op.nbytes, tag=op.tag, blocking=True)
        elif isinstance(op, Isend):
            yield from self.app_send(ctx, op.dst, op.nbytes, tag=op.tag, blocking=False)
        elif isinstance(op, Recv):
            yield from self.app_recv(ctx, src=op.src, tag=op.tag)
        elif isinstance(op, SendRecv):
            yield from self.app_send(ctx, op.dst, op.send_nbytes, tag=op.tag, blocking=False)
            if op.src is not None:
                yield from self.app_recv(ctx, src=op.src, tag=op.tag)
        elif isinstance(op, Wait):
            if op.seconds > 0:
                yield self.sim.timeout(op.seconds)
        elif isinstance(op, Barrier):
            participants = op.participants or tuple(range(self.n_ranks))
            steps = coll.barrier_schedule(ctx.rank, participants)
            yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))
        elif isinstance(op, Bcast):
            participants = op.participants or tuple(range(self.n_ranks))
            steps = coll.bcast_schedule(ctx.rank, op.root, participants, op.nbytes)
            yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))
        elif isinstance(op, Reduce):
            participants = op.participants or tuple(range(self.n_ranks))
            steps = coll.reduce_schedule(ctx.rank, op.root, participants, op.nbytes)
            yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))
        elif isinstance(op, Allreduce):
            participants = op.participants or tuple(range(self.n_ranks))
            steps = coll.allreduce_schedule(ctx.rank, participants, op.nbytes)
            yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))
        elif isinstance(op, Allgather):
            participants = op.participants or tuple(range(self.n_ranks))
            steps = coll.allgather_schedule(ctx.rank, participants, op.nbytes)
            yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))
        elif isinstance(op, Marker):
            ctx.stats.progress_marks.append((self.sim.now, op.label))
        else:
            raise TypeError(f"unsupported operation type {type(op).__name__}")

    def _run_rank(self, ctx: RankContext, program: Iterable[Op]) -> Generator[Event, None, None]:
        ctx.stats.started_at = self.sim.now
        for op in program:
            if ctx.has_visible_request(self.sim.now):
                yield from self.handle_pending_checkpoints(ctx)
            yield from self.execute_op(ctx, op)
        # Handle any request that was delivered but not yet handled, so group
        # barriers never wait on a rank that has already exited.  Requests that
        # are not yet visible are waited out first.
        while ctx.has_pending_request():
            if not ctx.has_visible_request(self.sim.now):
                yield self.sim.timeout(max(ctx.next_visible_at() - self.sim.now, 0.0))
            yield from self.handle_pending_checkpoints(ctx)
        ctx.finished = True
        ctx.stats.finished_at = self.sim.now

    def launch(self, program_factory: ProgramFactory) -> List[SimProcess]:
        """Start one simulation process per rank executing its script."""
        if self._rank_processes:
            raise RuntimeError("launch() may only be called once per runtime")
        for ctx in self.contexts:
            program = program_factory(ctx.rank)
            proc = self.sim.process(self._run_rank(ctx, iter(program)), name=f"rank:{ctx.rank}")
            self._rank_processes.append(proc)
        return self._rank_processes

    def run_to_completion(self, limit_s: Optional[float] = None) -> ApplicationResult:
        """Run the simulation until every rank's script has finished."""
        if not self._rank_processes:
            raise RuntimeError("launch() must be called before run_to_completion()")
        done = self.sim.all_of(self._rank_processes)
        while not done.processed:
            if limit_s is not None and self.sim.peek() > limit_s:
                raise RuntimeError(f"application did not finish within {limit_s} simulated seconds")
            self.sim.step()
        makespan = max(
            ctx.stats.finished_at for ctx in self.contexts if ctx.stats.finished_at is not None
        )
        return ApplicationResult(
            n_ranks=self.n_ranks,
            protocol_name=self.protocol_family.name if self.protocol_family else "none",
            makespan=makespan,
            contexts=self.contexts,
            deliveries=self.deliveries,
            trace=self.tracer.log if self.tracer is not None else None,
        )
