"""The MPI-like runtime: rank contexts, messaging, and script execution.

One :class:`RankContext` per MPI process holds the inbox, the S/R channel
accounting, pending checkpoint requests and per-rank statistics.  The
:class:`MpiRuntime` moves messages between contexts through the cluster's
network model, interprets application operation scripts, and gives checkpoint
protocols the services they need (control messages, drain waits, storage
access).

Checkpoint signals are honoured at operation boundaries and while a rank is
blocked in a receive, mirroring where a system-level checkpointing layer
(LAM/MPI's CR SSI modules + BLCR signal handler) interrupts a real MPI
process.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Sequence, Tuple, Union

from repro.ckpt.base import ResumePoint
from repro.cluster.topology import Cluster
from repro.mpi import collectives as coll
from repro.mpi.messages import ChannelAccount, Message, MessageKind, fast_message
from repro.mpi.ops import (
    Allgather,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Isend,
    Marker,
    Op,
    Recv,
    Reduce,
    Send,
    SendRecv,
    Wait,
)
from repro.mpi.tracer import Tracer
from repro.sim.engine import Interrupt, SimProcess, Simulator
from repro.sim.primitives import Event, Timeout, _fire_event_now
from repro.sim.rng import RandomStreams

# Tags reserved for internal traffic; applications should use tags below this.
COLLECTIVE_TAG_BASE = 1_000_000
CONTROL_TAG_BASE = 2_000_000

#: hot-path alias — one global load instead of an enum attribute chain
_APP = MessageKind.APP


class Inbox:
    """Indexed per-rank message buffer with blocking, tag-matched ``get``.

    Replaces the predicate-scan :class:`~repro.sim.primitives.Store` on the
    runtime's hottest path: messages are bucketed by their exact
    ``(kind, src, tag)`` channel, so a fully specified receive is an O(1)
    dictionary lookup + deque pop instead of an O(inbox) closure scan, and no
    matcher closure is allocated per receive.

    Semantics are bit-identical to the seed list-scan store:

    * **FIFO per channel** — each bucket is a deque in delivery order.
    * **Global delivery order for wildcards** — every buffered message
      carries a per-inbox arrival stamp; a wildcard receive (``src`` and/or
      ``tag`` ``None``) takes the *earliest-delivered* match across its
      candidate buckets, exactly what the first-match list scan returned.
      Wildcards are rare (protocol barrier collection, Chandy–Lamport
      markers), so the bucket sweep they pay is off the hot path.
    * **Waiter order** — blocked getters are woken in registration order
      through the simulator's immediate queue, exactly like
      ``Store._dispatch`` (``stats.store_wakeups`` counts the same events).
    * **Capture in delivery order** — :meth:`items_in_order` enumerates the
      buckets merged by arrival stamp, so ``capture_resume``'s inbox capture
      lists messages exactly as the seed's insertion-ordered ``items`` did.
    """

    __slots__ = ("sim", "rank", "_buckets", "_waiters", "_arrival", "_n_items")

    def __init__(self, sim: Simulator, rank: int) -> None:
        self.sim = sim
        self.rank = rank
        #: (kind, src, tag) -> deque of messages in delivery order
        self._buckets: Dict[Tuple[Any, int, int], deque] = {}
        #: blocked getters in registration order: (event, kind, src, tag)
        self._waiters: List[Tuple[Event, Any, Optional[int], Optional[int]]] = []
        self._arrival = 0
        self._n_items = 0

    def __len__(self) -> int:
        return self._n_items

    # -- put ---------------------------------------------------------------
    def put(self, msg: Message) -> None:
        """Deposit ``msg``; wake the first matching blocked getter, if any."""
        self._arrival += 1
        msg._arrival = self._arrival
        if self._waiters:
            kind, src, tag = msg.kind, msg.src, msg.tag
            remaining: List[Tuple[Event, Any, Optional[int], Optional[int]]] = []
            waiters = self._waiters
            taken = False
            for entry in waiters:
                ev = entry[0]
                if ev._triggered:
                    continue
                if (not taken
                        and (entry[1] is None or kind is entry[1])
                        and (entry[2] is None or src == entry[2])
                        and (entry[3] is None or tag == entry[3])):
                    taken = True
                    self._fire(ev, msg)
                else:
                    remaining.append(entry)
            self._waiters = remaining
            if taken:
                return
        key = (msg.kind, msg.src, msg.tag)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = deque()
        bucket.append(msg)
        self._n_items += 1

    # -- get ---------------------------------------------------------------
    def get(
        self,
        kind: Optional[MessageKind],
        src: Optional[int],
        tag: Optional[int],
    ) -> Event:
        """Event firing with the next message matching ``(kind, src, tag)``.

        ``None`` acts as a wildcard for any of the three fields (MPI's
        ``ANY_SOURCE``/``ANY_TAG``).
        """
        ev = Event(self.sim)
        if self._n_items:
            if kind is not None and src is not None and tag is not None:
                bucket = self._buckets.get((kind, src, tag))
                if bucket:
                    self._n_items -= 1
                    self._fire(ev, bucket.popleft())
                    return ev
            else:
                msg = self._pop_wildcard(kind, src, tag)
                if msg is not None:
                    self._fire(ev, msg)
                    return ev
        self._waiters.append((ev, kind, src, tag))
        return ev

    def _pop_wildcard(
        self,
        kind: Optional[MessageKind],
        src: Optional[int],
        tag: Optional[int],
    ) -> Optional[Message]:
        """Earliest-delivered buffered message matching a wildcard pattern."""
        best_key = None
        best_arrival = -1
        for key, bucket in self._buckets.items():
            if not bucket:
                continue
            if ((kind is None or key[0] is kind)
                    and (src is None or key[1] == src)
                    and (tag is None or key[2] == tag)):
                arrival = bucket[0]._arrival
                if best_key is None or arrival < best_arrival:
                    best_key = key
                    best_arrival = arrival
        if best_key is None:
            return None
        self._n_items -= 1
        return self._buckets[best_key].popleft()

    def _fire(self, ev: Event, msg: Message) -> None:
        # Exactly Store._dispatch's wake path: trigger in place and deliver
        # through the immediate queue (same time, after the current callback).
        ev._triggered = True
        ev._ok = True
        ev._value = msg
        sim = self.sim
        sim.stats.store_wakeups += 1
        sim._immediate.append((_fire_event_now, ev))

    # -- capture / restore (live failure injection) ------------------------
    def items_in_order(self) -> List[Message]:
        """All buffered messages in delivery order (rollback inbox capture)."""
        out: List[Message] = []
        for bucket in self._buckets.values():
            out.extend(bucket)
        out.sort(key=lambda m: m._arrival)
        return out

    def restore(self, messages: Iterable[Message]) -> None:
        """Re-deposit a captured inbox (checkpoint image) in its saved order."""
        for msg in messages:
            self.put(msg)


@dataclass
class RuntimeConfig:
    """Behavioural switches of the runtime.

    Parameters
    ----------
    record_deliveries:
        Keep a global log of ``(time, src, dst, nbytes)`` for every delivered
        application message (needed for the Figure 2 trace diagrams).
    control_message_bytes:
        Default payload size of protocol control messages.
    collective_tag:
        Base tag for collectives (separated from application point-to-point).
    """

    record_deliveries: bool = True
    control_message_bytes: int = 64
    collective_tag: int = COLLECTIVE_TAG_BASE

    def __post_init__(self) -> None:
        if self.control_message_bytes < 0:
            raise ValueError("control_message_bytes must be non-negative")


@dataclass
class RankStats:
    """Per-rank accounting filled in while the script executes."""

    compute_time: float = 0.0
    send_time: float = 0.0
    recv_wait_time: float = 0.0
    checkpoint_time: float = 0.0
    ops_executed: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None
    checkpoints: List[Any] = field(default_factory=list)
    progress_marks: List[Tuple[float, str]] = field(default_factory=list)
    #: live-failure accounting: rollbacks suffered, and re-executed sends
    #: suppressed because the receiver already held the data (skip accounting)
    rollbacks: int = 0
    skipped_sends: int = 0
    skipped_bytes: int = 0

    @property
    def elapsed(self) -> Optional[float]:
        """Wall time of this rank's script (None while still running)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class RankContext:
    """Everything the runtime and the protocols know about one rank.

    ``__slots__``-packed: thousand-rank simulations allocate one of these per
    rank and the hot paths read its attributes constantly, so the instance
    dict is dropped (attribute loads become fixed-offset slot reads and the
    per-rank footprint shrinks).
    """

    __slots__ = (
        "sim", "rank", "node_id", "memory_bytes", "inbox", "account", "stats",
        "finished", "protocol", "pending_requests", "jitter_key",
        "_signal_event", "_arrival_watchers", "in_checkpoint",
        "rollback_epoch", "in_recovery", "failed", "halted_at", "op_cursor",
        "_op_sent", "_op_sent_msgs", "_op_consumed", "pending_get",
    )

    def __init__(self, sim: Simulator, rank: int, node_id: int, memory_bytes: int) -> None:
        if rank < 0:
            raise ValueError("rank must be non-negative")
        if memory_bytes < 0:
            raise ValueError("memory_bytes must be non-negative")
        self.sim = sim
        self.rank = rank
        self.node_id = node_id
        #: resident set of the application on this rank (drives image size)
        self.memory_bytes = memory_bytes
        self.inbox = Inbox(sim, rank)
        self.account = ChannelAccount(rank)
        self.stats = RankStats()
        self.finished = False
        #: set by the protocol family when the runtime is constructed
        self.protocol: Any = None
        self.pending_requests: List[Any] = []
        #: cached RNG stream key for compute jitter (hot: one per Compute op)
        self.jitter_key = f"jitter:rank{rank}"
        self._signal_event = Event(sim, name="signal")
        self._arrival_watchers: List[Tuple[int, int, Event]] = []
        #: True while this rank is inside a checkpoint procedure
        self.in_checkpoint = False
        # -- live failure-injection state (inert unless an injector attaches) --
        #: incremented on every kill/rollback; messages stamped with an older
        #: epoch were carried by a connection the restart has since reset
        self.rollback_epoch = 0
        #: True between the kill instant and the completion of recovery
        self.in_recovery = False
        #: True from the kill instant until the process is re-created
        self.failed = False
        #: instant this rank's script stopped executing (kill or rollback);
        #: None while the script runs.  Bounds the measured lost work when a
        #: second failure re-rolls a group that never resumed in between.
        self.halted_at: Optional[float] = None
        #: index of the operation currently executing (the resume position of
        #: a checkpoint taken inside or at the boundary of that operation)
        self.op_cursor = 0
        #: per-channel sends of the *currently executing* operation — what a
        #: mid-operation checkpoint must subtract to get pre-op send counters
        self._op_sent: Dict[int, int] = {}
        self._op_sent_msgs: Dict[int, int] = {}
        #: application messages consumed by the currently executing operation
        #: (re-consumed after a rollback restarts the operation)
        self._op_consumed: List[Any] = []
        #: the get-event of a blocked application receive (failure runs only).
        #: A message can be *matched* into it while the rank handles a
        #: checkpoint mid-receive — neither in the inbox nor consumed — and
        #: the resume capture must not lose it.
        self.pending_get: Optional[Event] = None

    def reset_for_rollback(self) -> None:
        """Discard volatile runtime state when this rank is rolled back.

        The inbox is replaced wholesale: items received after the checkpoint
        are gone with the dead process, and get-events of the interrupted
        script must never consume messages destined for the restarted one.
        """
        self.rollback_epoch += 1
        self.inbox = Inbox(self.sim, self.rank)
        self._arrival_watchers = []
        self._signal_event = Event(self.sim, name="signal")
        self.pending_requests = []
        self.in_checkpoint = False
        self.in_recovery = True
        self.finished = False
        self._op_sent.clear()
        self._op_sent_msgs.clear()
        del self._op_consumed[:]
        self.pending_get = None

    # -- checkpoint signalling ------------------------------------------------
    @property
    def signal_event(self) -> Event:
        """Event that fires when a checkpoint request is delivered."""
        return self._signal_event

    def deliver_request(self, request: Any) -> None:
        """Deliver a checkpoint request (called by the coordinator).

        The request only becomes *visible* to the rank at
        ``request.issued_at + request.stagger_s`` — until then the rank keeps
        executing application operations, which models mpirun propagating the
        request to the processes one by one.
        """
        self.pending_requests.append(request)
        if not self._signal_event.triggered:
            self._signal_event.succeed(request)

    @staticmethod
    def _visible_at(request: Any) -> float:
        return request.issued_at + getattr(request, "stagger_s", 0.0)

    def has_pending_request(self) -> bool:
        """True if at least one checkpoint request has been delivered (visible or not)."""
        return bool(self.pending_requests)

    def has_visible_request(self, now: float) -> bool:
        """True if a delivered request has become visible to this rank."""
        if not self.pending_requests:
            return False
        return any(now >= self._visible_at(r) - 1e-12 for r in self.pending_requests)

    def next_visible_at(self) -> float:
        """Earliest visibility time among pending requests (inf if none pending)."""
        if not self.pending_requests:
            return float("inf")
        return min(self._visible_at(r) for r in self.pending_requests)

    def pop_visible_request(self, now: float) -> Any:
        """Take the oldest visible request and re-arm the signal event if drained."""
        for i, request in enumerate(self.pending_requests):
            if now >= self._visible_at(request) - 1e-12:
                self.pending_requests.pop(i)
                break
        else:
            raise RuntimeError(f"rank {self.rank}: no visible checkpoint request to pop")
        if not self.pending_requests:
            self._signal_event = Event(self.sim, name="signal")
        return request

    # -- arrival watching (drain support) ---------------------------------------
    def wait_for_received(self, src: int, threshold: int) -> Event:
        """Event firing once R_src (arrived bytes from ``src``) reaches ``threshold``."""
        ev = Event(self.sim, name="drain")
        if self.account.received_from(src) >= threshold:
            ev.succeed(self.account.received_from(src))
        else:
            self._arrival_watchers.append((src, threshold, ev))
        return ev

    def _notify_arrival(self, src: int) -> None:
        if not self._arrival_watchers:
            return
        received = self.account.received_from(src)
        still_waiting: List[Tuple[int, int, Event]] = []
        for watch_src, threshold, ev in self._arrival_watchers:
            if watch_src == src and received >= threshold and not ev.triggered:
                ev.succeed(received)
            elif not ev.triggered:
                still_waiting.append((watch_src, threshold, ev))
        self._arrival_watchers = still_waiting

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankContext rank={self.rank} node={self.node_id}>"


@dataclass
class ApplicationResult:
    """Outcome of one simulated application run."""

    n_ranks: int
    protocol_name: str
    makespan: float
    contexts: List[RankContext]
    deliveries: List[Tuple[float, int, int, int]]
    trace: Optional[Any] = None
    #: live-failure recovery reports (empty for failure-free runs)
    recovery: List[Any] = field(default_factory=list)
    #: recovery-manager scheduling counters (empty for failure-free runs):
    #: aborted/serialized/concurrent recovery counts, spare-pool usage
    recovery_stats: Dict[str, int] = field(default_factory=dict)
    #: non-None when the run was aborted as unsurvivable (no remaining copy
    #: of a required checkpoint image); the makespan is the abort instant
    aborted: Optional[str] = None
    #: storage-hierarchy counters: per-tier bytes, partner-copy totals
    storage_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def checkpoint_records(self) -> List[Any]:
        """All per-rank checkpoint records, across ranks and checkpoints."""
        out: List[Any] = []
        for ctx in self.contexts:
            out.extend(ctx.stats.checkpoints)
        return out

    @property
    def checkpoints_completed(self) -> int:
        """Number of distinct checkpoint ids completed by every participating rank."""
        ids: Dict[int, int] = {}
        for rec in self.checkpoint_records:
            ids[rec.ckpt_id] = ids.get(rec.ckpt_id, 0) + 1
        return len(ids)

    def aggregate_checkpoint_time(self) -> float:
        """Sum of checkpoint durations over all ranks (the paper's Figure 6a metric)."""
        return sum(rec.duration for rec in self.checkpoint_records)

    def aggregate_coordination_time(self) -> float:
        """Sum of coordination-only time over all ranks (the Figure 1 metric)."""
        return sum(rec.coordination_time for rec in self.checkpoint_records)

    def per_rank_finish_times(self) -> List[float]:
        """Finish time of each rank's script."""
        return [
            ctx.stats.finished_at if ctx.stats.finished_at is not None else float("nan")
            for ctx in self.contexts
        ]

    def snapshots(self) -> Dict[int, Any]:
        """Latest checkpoint snapshot per rank (ranks without one are omitted)."""
        out: Dict[int, Any] = {}
        for ctx in self.contexts:
            if ctx.protocol is None:
                continue
            snap = ctx.protocol.latest_snapshot()
            if snap is not None:
                out[ctx.rank] = snap
        return out


class _FastDelivery:
    """Completion callback of a closed-form delivery (one slotted object).

    Releases the analytic RX reservation and finalises the delivery at the
    reserved completion instant; replaces a closure + argument tuple on the
    per-message fast path.
    """

    __slots__ = ("runtime", "net", "dst_node", "reservation", "msg")

    def __init__(self, runtime: "MpiRuntime", net: Any, dst_node: int,
                 reservation: Any, msg: Message) -> None:
        self.runtime = runtime
        self.net = net
        self.dst_node = dst_node
        self.reservation = reservation
        self.msg = msg

    def __call__(self, _ev: Event) -> None:
        self.net.finish_rx(self.dst_node, self.reservation)
        self.runtime._finish_delivery(self.msg)


ProgramFactory = Callable[[int], Iterable[Op]]


class MpiRuntime:
    """Executes per-rank operation scripts over the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        n_ranks: int,
        protocol_family: Optional[Any] = None,
        rng: Optional[RandomStreams] = None,
        tracer: Optional[Tracer] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.sim = sim
        self.cluster = cluster
        self.n_ranks = n_ranks
        self.rng = rng if rng is not None else RandomStreams(0)
        self.tracer = tracer
        self.config = config if config is not None else RuntimeConfig()
        self.protocol_family = protocol_family

        placement = cluster.place_ranks(n_ranks)
        self.contexts: List[RankContext] = []
        for rank in range(n_ranks):
            ctx = RankContext(sim, rank, placement[rank], memory_bytes=0)
            self.contexts.append(ctx)
        if protocol_family is not None:
            for ctx in self.contexts:
                ctx.protocol = protocol_family.create(ctx, self)

        self.deliveries: List[Tuple[float, int, int, int]] = []
        self._record_deliveries = self.config.record_deliveries
        self._rank_processes: List[SimProcess] = []
        self._collective_seq: Dict[int, int] = {}
        #: True once a checkpoint-request source (a coordinator) is attached;
        #: until then blocked receives need no signal wake-up condition.
        self.checkpoints_enabled = False
        #: True once a failure injector is attached; gates all rollback
        #: bookkeeping (epoch stamps, resume capture, duplicate skipping) so
        #: failure-free runs execute the exact pre-existing fast path.
        self.failures_enabled = False
        self._program_factory: Optional[ProgramFactory] = None
        #: the live :class:`~repro.workloads.base.Workload` when the driver
        #: attaches one; enables per-unit domain progress capture in resume
        #: points / checkpoint images and elastic (repartitioning) restart
        self.workload: Optional[Any] = None
        #: recovery orchestrations currently in flight (driven alongside the
        #: rank processes by :meth:`run_to_completion`)
        self._recovery_inflight: List[SimProcess] = []
        #: completed :class:`~repro.core.restart.RecoveryReport` objects
        self.recovery_reports: List[Any] = []
        #: the :class:`~repro.recovery.manager.RecoveryManager` owning the
        #: failure lifecycle (set by the manager itself on construction)
        self.recovery_manager: Optional[Any] = None
        #: messages dropped because an endpoint was rolled back in flight
        self.dropped_messages = 0
        #: reason string once the run has been declared unsurvivable
        self.aborted: Optional[str] = None
        #: telemetry handle (``repro.obs.Telemetry``) once attached; the
        #: ``telemetry_tracing`` boolean gates span emission the same way
        #: ``failures_enabled`` gates rollback bookkeeping
        self.telemetry: Optional[Any] = None
        self.telemetry_tracing = False
        #: passive time-series sampler (``repro.obs.StateSampler``) once a
        #: sampling telemetry is attached; phase-transition sites notify it
        #: so checkpoint/recovery/finished occupancy integrates exactly
        self.sampler: Optional[Any] = None

    def attach_checkpoint_source(self) -> None:
        """Declare that checkpoint requests may be delivered to the ranks.

        Called by :class:`~repro.core.coordinator.CheckpointCoordinator` on
        construction (i.e. before the application runs).  Blocked receives
        only allocate their "message or checkpoint signal" wake condition
        when a source exists — a run without one can never observe a signal,
        so waiting on the bare inbox event is provably equivalent.
        """
        self.checkpoints_enabled = True

    def attach_failure_source(self) -> None:
        """Declare that ranks may be killed and rolled back mid-run.

        Called by :class:`~repro.cluster.failure.FailureInjector` before the
        application launches.  Turns on the failure bookkeeping: operation
        cursors and per-op channel tracking (resume points), message epoch /
        offset stamps (connection-reset drops and duplicate skipping), and
        snapshot history retention in the protocols.  Without an injector all
        of it is skipped, keeping failure-free runs bit-identical to the
        golden parity metrics.
        """
        self.failures_enabled = True

    def attach_telemetry(self, telemetry: Any) -> None:
        """Attach a :class:`repro.obs.Telemetry` handle to this run.

        Follows the ``attach_failure_source`` pattern: telemetry is off by
        default, the simulator hot loops never consult it, and only the
        non-hot sites (per-checkpoint spans, kill/rollback abort sweeps)
        check ``telemetry_tracing`` — a disabled run pays nothing.  The
        handle is mirrored onto ``sim.telemetry`` so subsystems holding only
        the simulator (the storage hierarchy) share the same tracer, and all
        span timestamps come from ``sim.now`` without scheduling anything, so
        traced runs stay bit-identical to untraced ones.
        """
        self.telemetry = telemetry
        self.telemetry_tracing = telemetry is not None and telemetry.tracing
        if telemetry is not None:
            telemetry.bind_simulator(self.sim)
        sampler = getattr(telemetry, "sampler", None)
        self.sampler = sampler
        if sampler is not None:
            sampler.bind_runtime(self)
            self.sim._sampler = sampler

    # ------------------------------------------------------------------ basics
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def ctx(self, rank: int) -> RankContext:
        """Context of ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        return self.contexts[rank]

    def running_ranks(self) -> Tuple[int, ...]:
        """Ranks whose scripts have not finished yet."""
        return tuple(ctx.rank for ctx in self.contexts if not ctx.finished)

    def set_memory(self, memory_per_rank: Union[int, Sequence[int], Dict[int, int]]) -> None:
        """Set the application resident set per rank (drives checkpoint image size)."""
        if isinstance(memory_per_rank, int):
            for ctx in self.contexts:
                ctx.memory_bytes = memory_per_rank
        elif isinstance(memory_per_rank, dict):
            for rank, nbytes in memory_per_rank.items():
                self.ctx(rank).memory_bytes = int(nbytes)
        else:
            values = list(memory_per_rank)
            if len(values) != self.n_ranks:
                raise ValueError("memory_per_rank sequence must have one entry per rank")
            for ctx, nbytes in zip(self.contexts, values):
                ctx.memory_bytes = int(nbytes)

    # ------------------------------------------------------------- messaging
    def _make_message(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int,
        kind: MessageKind,
        piggyback: Optional[Dict[str, Any]] = None,
        payload: Any = None,
    ) -> Message:
        if not 0 <= dst < self.n_ranks:
            raise ValueError(f"destination rank {dst} out of range")
        # Lazy piggyback: messages without protocol metadata carry None and
        # never allocate the dict (the overwhelmingly common case).
        msg = fast_message(
            src, dst, nbytes, tag, kind,
            dict(piggyback) if piggyback else None,
            payload, self.sim.now,
        )
        if self.failures_enabled:
            msg.src_epoch = self.contexts[src].rollback_epoch
            msg.dst_epoch = self.contexts[dst].rollback_epoch
        return msg

    def _finish_delivery(self, msg: Message) -> None:
        """Terminal stage of a delivery: accounting, protocol hook, inbox."""
        now = self.sim.now
        dst_ctx = self.contexts[msg.dst]
        if self.failures_enabled and (
            msg.dst_epoch != dst_ctx.rollback_epoch
            or msg.src_epoch != self.contexts[msg.src].rollback_epoch
        ):
            # An endpoint was killed/rolled back while this message was in
            # flight: the connection it travelled on has been reset.  Data the
            # receiver genuinely lacks is re-sent by re-execution or replayed
            # from the sender's log, never from the wire.
            self.dropped_messages += 1
            return
        msg.arrived_at = now
        if msg.kind is _APP:
            dst_ctx.account.add_received(msg.src, msg.nbytes)
            stats = dst_ctx.stats
            stats.messages_received += 1
            stats.bytes_received += msg.nbytes
            if dst_ctx.protocol is not None:
                dst_ctx.protocol.on_arrival(msg)
            if self._record_deliveries:
                self.deliveries.append((now, msg.src, msg.dst, msg.nbytes))
            if dst_ctx._arrival_watchers:
                dst_ctx._notify_arrival(msg.src)
        dst_ctx.inbox.put(msg)

    def _deliver_remote(self, msg: Message, wire_bytes: int,
                        dst_node: int) -> Generator[Event, None, None]:
        """Coroutine delivery for a remote message already counted via ``begin_rx``."""
        yield from self.cluster.network.rx_counted(dst_node, wire_bytes)
        self._finish_delivery(msg)

    def _deliver_local(self, msg: Message) -> Generator[Event, None, None]:
        """Coroutine delivery for a same-node message (slow path only)."""
        self._finish_delivery(msg)
        return
        yield  # pragma: no cover - makes this a generator

    def _start_delivery(self, msg: Message, wire_bytes: int,
                        src_node: int, dst_node: int) -> None:
        """Begin background delivery of ``msg`` (fast callback path or coroutine).

        Fast paths schedule at most one calendar event per delivery; the
        events they avoid relative to the coroutine model are counted in
        ``sim.stats.events_elided`` (local delivery elides the process
        completion event; a remote one elides the latency timeout, the RX
        grant and the serialisation timeout of the coroutine model).
        """
        sim = self.sim
        net = self.cluster.network
        if src_node == dst_node:
            if net.fast_path:
                sim.stats.fastpath_local += 1
                sim.stats.events_elided += 1
                sim.call_soon(self._finish_delivery, msg)
            else:
                sim.process(self._deliver_local(msg), name="deliver")
            return
        if not net.fast_path:
            net.begin_rx(dst_node)
            sim.process(self._deliver_remote(msg, wire_bytes, dst_node), name="deliver")
            return
        fast = net.try_reserve_rx(dst_node, wire_bytes)
        if fast is not None:
            done, reservation = fast
            sim.stats.events_elided += 3
            done.callbacks.append(_FastDelivery(self, net, dst_node, reservation, msg))
        else:
            net.start_rx(dst_node, wire_bytes, self._finish_delivery, msg)

    def _spawn_tx(self, src_node: int, nbytes: int) -> None:
        """Run the sender-side NIC path in the background (fast or coroutine).

        The fast path replaces the spawned coroutine (overhead timeout, NIC
        grant, serialisation timeout, process completion) with an event-free
        analytic NIC hold (:meth:`~repro.cluster.network.Network.try_hold_tx`).
        """
        net = self.cluster.network
        if not net.fast_path:
            net.begin_tx(src_node)
            self.sim.process(net.tx_counted(src_node, nbytes), name="tx")
        elif not net.try_hold_tx(src_node, nbytes):
            net.start_tx(src_node, nbytes)

    def app_send(
        self,
        ctx: RankContext,
        dst: int,
        nbytes: int,
        tag: int = 0,
        blocking: bool = True,
    ) -> Generator[Event, None, Message]:
        """Send an application message; the sender is busy for its local share."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        sim = self.sim
        start = sim.now
        extra_delay = 0.0
        piggyback: Optional[Dict[str, Any]] = None
        if ctx.protocol is not None:
            extra_delay, piggyback = ctx.protocol.on_send(dst, nbytes, tag)
        if self.tracer is not None:
            extra_delay += self.tracer.on_send(
                Message(src=ctx.rank, dst=dst, nbytes=nbytes, tag=tag), sim.now
            )
        # _make_message inlined: one send per simulated message makes the
        # call overhead (and the enum attribute chain) measurable.
        if not 0 <= dst < self.n_ranks:
            raise ValueError(f"destination rank {dst} out of range")
        msg = fast_message(
            ctx.rank, dst, nbytes, tag, _APP,
            dict(piggyback) if piggyback else None, None, sim.now,
        )
        skip = False
        if self.failures_enabled:
            msg.src_epoch = ctx.rollback_epoch
            msg.dst_epoch = self.contexts[dst].rollback_epoch
            end_offset = ctx.account.sent_to(dst) + nbytes
            msg_index = ctx.account.messages_sent_to(dst) + 1
            msg.end_offset = end_offset
            msg.msg_index = msg_index
            ctx._op_sent[dst] = ctx._op_sent.get(dst, 0) + nbytes
            ctx._op_sent_msgs[dst] = ctx._op_sent_msgs.get(dst, 0) + 1
            if ctx.rollback_epoch > 0:
                # Skip accounting (Algorithm 1, restart part): a re-executed
                # send whose channel position the receiver already covers is
                # a duplicate — the data survived at the receiver, so only
                # the local library cost is paid and nothing hits the wire.
                dst_account = self.contexts[dst].account
                received = dst_account.received_from(ctx.rank)
                if end_offset < received or (
                    end_offset == received
                    and msg_index <= dst_account.messages_received_from(ctx.rank)
                ):
                    skip = True
        ctx.account.add_sent(dst, nbytes)
        stats = ctx.stats
        stats.messages_sent += 1
        stats.bytes_sent += nbytes
        wire_bytes = nbytes + (16 if piggyback else 0)

        if extra_delay > 0:
            yield Timeout(sim, extra_delay)

        net = self.cluster.network
        if skip:
            stats.skipped_sends += 1
            stats.skipped_bytes += nbytes
            yield Timeout(sim, net._overhead_s)
            stats.send_time += sim.now - start
            return msg
        src_node = ctx.node_id
        dst_node = self.contexts[dst].node_id
        if blocking and src_node != dst_node:
            # Sender occupied for the TX-side cost of the transfer.
            fast = net.try_reserve_tx(src_node, wire_bytes)
            if fast is not None:
                done, reservation = fast
                sim.stats.events_elided += 2
                try:
                    yield done
                finally:
                    # finally: an interrupt (failure injection) must release
                    # the NIC reservation, exactly like the coroutine model.
                    net.finish_tx(src_node, reservation)
            else:
                yield from net.tx(src_node, wire_bytes)
        else:
            yield Timeout(sim, net._overhead_s)
            if src_node != dst_node:
                self._spawn_tx(src_node, wire_bytes)
        self._start_delivery(msg, wire_bytes, src_node, dst_node)
        stats.send_time += sim.now - start
        return msg

    def control_send(
        self,
        ctx: RankContext,
        dst: int,
        tag: int,
        payload: Any = None,
        nbytes: Optional[int] = None,
        kind: MessageKind = MessageKind.CONTROL,
    ) -> Generator[Event, None, Message]:
        """Send a protocol control message (not logged, not traced, not S/R-counted)."""
        if nbytes is not None and nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        size = nbytes if nbytes is not None else self.config.control_message_bytes
        msg = self._make_message(ctx.rank, dst, size, tag, kind, payload=payload)
        src_node = ctx.node_id
        dst_node = self.ctx(dst).node_id
        yield Timeout(self.sim, self.cluster.network._overhead_s)
        if src_node != dst_node:
            self._spawn_tx(src_node, size)
        self._start_delivery(msg, size, src_node, dst_node)
        return msg

    def app_recv(
        self,
        ctx: RankContext,
        src: Optional[int] = None,
        tag: Optional[int] = None,
        interruptible: bool = True,
    ) -> Generator[Event, None, Message]:
        """Blocking receive of an application message.

        While blocked, pending checkpoint requests are honoured (the protocol
        runs and the receive then continues), unless ``interruptible`` is
        False (used internally by protocols that must not re-enter).
        """
        start = self.sim.now
        if not self.checkpoints_enabled:
            # No checkpoint source attached: signals cannot occur, so the
            # interruptible machinery (and its per-wait AnyOf condition) is
            # vacuous and the receive waits on the bare inbox event.
            interruptible = False
        get_ev = ctx.inbox.get(_APP, src, tag)
        if self.failures_enabled:
            ctx.pending_get = get_ev
        while True:
            if interruptible and not ctx.in_checkpoint and ctx.has_visible_request(self.sim.now):
                yield from self.handle_pending_checkpoints(ctx)
                continue
            if get_ev._processed:
                msg: Message = get_ev._value
                break
            if interruptible and not ctx.in_checkpoint:
                if get_ev._triggered:
                    # A message already matched; no condition event is needed
                    # to wait for its (same-time) arrival on the calendar.
                    yield get_ev
                elif ctx.has_pending_request():
                    # A request was delivered but is not visible yet; wake up
                    # either when the message arrives or when it becomes visible.
                    wait = max(ctx.next_visible_at() - self.sim.now, 0.0)
                    yield self.sim.any_of([get_ev, self.sim.timeout(wait)])
                else:
                    yield self.sim.any_of([get_ev, ctx.signal_event])
                if get_ev._processed:
                    msg = get_ev._value
                    break
                # otherwise a checkpoint signal arrived or became visible; loop handles it
            else:
                yield get_ev
                msg = get_ev._value
                break
        if self.failures_enabled:
            ctx.pending_get = None
            ctx._op_consumed.append(msg)
        ctx.stats.recv_wait_time += self.sim.now - start
        return msg

    def control_recv(
        self,
        ctx: RankContext,
        src: Optional[int] = None,
        tag: Optional[int] = None,
        kind: MessageKind = MessageKind.CONTROL,
    ) -> Generator[Event, None, Message]:
        """Blocking receive of a control/marker message (never interrupted)."""
        get_ev = ctx.inbox.get(kind, src, tag)
        yield get_ev
        return get_ev.value

    # ----------------------------------------------------- storage for protocols
    def storage_write(self, ctx: RankContext, nbytes: int) -> Generator[Event, None, float]:
        """Write ``nbytes`` to checkpoint storage for this rank's node (log flushes).

        Goes through the storage hierarchy's tier-agnostic path, which
        delegates verbatim to the configured base storage system.
        """
        result = yield from self.cluster.hierarchy.write(ctx.node_id, nbytes)
        return result

    def storage_read(self, ctx: RankContext, nbytes: int) -> Generator[Event, None, float]:
        """Read ``nbytes`` from checkpoint storage for this rank's node."""
        result = yield from self.cluster.hierarchy.read(ctx.node_id, nbytes)
        return result

    def checkpoint_image_write(
        self, ctx: RankContext, ckpt_id: int, nbytes: int
    ) -> Generator[Event, None, Tuple[str, ...]]:
        """Persist one checkpoint image through the storage hierarchy.

        Under the default single-tier configuration this is exactly the old
        ``storage_write`` (bit-identical timing); with a
        :class:`~repro.storage.policy.StoragePolicy` configured it fans the
        image out across the scheduled levels (synchronous L1/L3, async L2
        partner replica).  Returns the levels the image landed on, which the
        protocol records in the snapshot metadata.
        """
        domain_state = self.domain_progress(ctx) if self.workload is not None else None
        levels = yield from self.cluster.hierarchy.write_image(
            ctx.rank, ctx.node_id, ckpt_id, nbytes,
            domain_state=domain_state or None)
        return levels

    # --------------------------------------------------------------- checkpoints
    def handle_pending_checkpoints(self, ctx: RankContext) -> Generator[Event, None, None]:
        """Run the protocol's checkpoint procedure for every *visible* pending request."""
        while ctx.has_visible_request(self.sim.now):
            request = ctx.pop_visible_request(self.sim.now)
            if ctx.protocol is None:
                continue
            ctx.in_checkpoint = True
            start = self.sim.now
            if self.sampler is not None:
                self.sampler.note_phase(ctx.rank, "checkpoint", start)
            span = None
            if self.telemetry_tracing:
                # Live span: opened here, closed on completion below.  If the
                # rank is killed or rolled back mid-checkpoint the interrupt
                # propagates out of this generator and kill_rank/rollback_rank
                # sweep the open span closed with ``aborted=True``.
                span = self.telemetry.tracer.begin(
                    "checkpoint", track=f"rank{ctx.rank}", category="ckpt",
                    ckpt_id=request.ckpt_id, group_id=request.group_id)
            try:
                record = yield from ctx.protocol.checkpoint(request)
            finally:
                ctx.in_checkpoint = False
                if self.sampler is not None:
                    self.sampler.end_phase(ctx.rank, "checkpoint", self.sim.now)
            ctx.stats.checkpoint_time += self.sim.now - start
            if record is not None:
                ctx.stats.checkpoints.append(record)
            if span is not None:
                tracer = self.telemetry.tracer
                tracer.end(span)
                if record is not None:
                    # retro stage children: the measured stages are contiguous
                    # from the record's start, in protocol order
                    cursor = record.start
                    for name, value in record.stages.items():
                        tracer.add(name, start=cursor, end=cursor + value,
                                   track=span.track, category="ckpt.stage",
                                   parent=span)
                        cursor += value

    # ----------------------------------------------------- live failure injection
    def capture_resume(self, ctx: RankContext) -> Optional[ResumePoint]:
        """The re-execution position of ``ctx`` for a checkpoint taken *now*.

        Returns None unless a failure injector is attached.  Send counters
        are the checkpoint-time values minus the currently executing
        operation's own sends (a rollback restarts that operation from its
        beginning); receive counters stay delivery-based, and the restored
        inbox holds every delivered-but-unconsumed application message plus
        the ones the partial operation already consumed (see
        :class:`~repro.ckpt.base.ResumePoint`).
        """
        if not self.failures_enabled:
            return None
        account = ctx.account
        ss = account.snapshot_sent()
        ss_msgs = account.messages_sent_by_destination()
        for dst, nbytes in ctx._op_sent.items():
            ss[dst] -= nbytes
        for dst, count in ctx._op_sent_msgs.items():
            ss_msgs[dst] -= count
        inbox = list(ctx._op_consumed)
        pending = ctx.pending_get
        if pending is not None and pending._triggered:
            # A message already matched into the blocked receive's get-event:
            # it left the inbox but the script has not consumed it yet (it is
            # handling this very checkpoint).  It is library-delivered data
            # and belongs in the image.
            limbo = pending._value
            if limbo is not None and limbo.kind is MessageKind.APP:
                inbox.append(limbo)
        inbox.extend(m for m in ctx.inbox.items_in_order()
                     if m.kind is MessageKind.APP)
        return ResumePoint(op_index=ctx.op_cursor, ss=ss,
                           rr=account.snapshot_received(),
                           ss_msgs=ss_msgs,
                           rr_msgs=account.messages_received_by_source(),
                           inbox=inbox,
                           domain_state=self.domain_progress(ctx))

    def domain_progress(self, ctx: RankContext) -> Dict[int, int]:
        """Per-unit completed-step counts of ``ctx`` at its current cursor.

        Empty when no workload is attached (legacy drivers) — checkpoints
        then carry no domain payload and elastic restart is unavailable.
        """
        wl = self.workload
        if wl is None or not hasattr(wl, "domain_progress"):
            return {}
        return wl.domain_progress(ctx.rank, ctx.op_cursor)

    def kill_rank(self, rank: int, cause: Any = "node-failure") -> None:
        """Kill ``rank``'s process at the current instant (node death).

        The script is interrupted wherever it is (mid-compute, blocked in a
        receive, inside a checkpoint), and the rank's rollback epoch is
        bumped so every message still in flight to or from it is dropped at
        delivery — the TCP connections of a dead process do not survive it.
        Recovery (rollback + replay + relaunch) is orchestrated separately by
        :class:`~repro.core.restart.LiveRecovery`.
        """
        ctx = self.contexts[rank]
        ctx.failed = True
        ctx.rollback_epoch += 1
        if ctx.halted_at is None:
            ctx.halted_at = self.sim.now
        proc = self._rank_processes[rank]
        if proc.is_alive:
            proc.interrupt(cause)
        if self.telemetry_tracing:
            self.telemetry.tracer.abort_open(f"rank{rank}", abort_cause=str(cause))
        if self.sampler is not None:
            self.sampler.note_phase(rank, "recovery", self.sim.now)

    def rollback_rank(self, rank: int, snapshot: Optional[Any]) -> int:
        """Roll ``rank`` back to ``snapshot`` (None = process start).

        Interrupts the script if it is still running (group members of a
        victim roll back too, even though their own node is healthy), resets
        the volatile runtime state, restores the channel accounting to the
        snapshot's resume point and lets the protocol restore its own state.
        Returns the operation index to relaunch from.
        """
        ctx = self.contexts[rank]
        proc = self._rank_processes[rank]
        if proc.is_alive:
            proc.interrupt("group-rollback")
        if self.telemetry_tracing:
            self.telemetry.tracer.abort_open(f"rank{rank}", abort_cause="group-rollback")
        if ctx.halted_at is None:
            ctx.halted_at = self.sim.now
        if self.sampler is not None:
            self.sampler.note_phase(rank, "recovery", self.sim.now)
        ctx.reset_for_rollback()
        resume = snapshot.resume if snapshot is not None else ResumePoint(op_index=0)
        ctx.account.restore(resume.ss, resume.rr, resume.ss_msgs, resume.rr_msgs)
        # Messages that had been drained into the MPI library by checkpoint
        # time are part of the restored image; the re-executed script will
        # consume them again.
        ctx.inbox.restore(resume.inbox)
        if ctx.protocol is not None:
            ctx.protocol.rollback_to(snapshot)
        ctx.stats.rollbacks += 1
        return resume.op_index

    def relaunch_rank(self, rank: int, op_index: int,
                      program: Optional[Iterable[Any]] = None) -> SimProcess:
        """Re-create ``rank``'s process, resuming its script at ``op_index``.

        The operations before ``op_index`` are *not* re-executed — their
        effects live in the restored checkpoint image — so the fresh program
        iterator is simply advanced past them.  An explicit ``program``
        replaces the launch-time script entirely (elastic restart relaunches
        survivors with a *repartitioned* script); ``op_index`` then indexes
        into the new script.
        """
        if program is None and self._program_factory is None:
            raise RuntimeError("launch() must run before a rank can be relaunched")
        ctx = self.contexts[rank]
        if program is None:
            program = iter(self._program_factory(rank))
        else:
            program = iter(program)
        if op_index > 0:
            program = itertools.islice(program, op_index, None)
        proc = self.sim.process(
            self._run_rank(ctx, program, start_index=op_index, fresh=False),
            name=f"rank:{rank}",
        )
        self._rank_processes[rank] = proc
        ctx.in_recovery = False
        ctx.failed = False
        ctx.halted_at = None
        if self.sampler is not None:
            self.sampler.note_phase(rank, None, self.sim.now)
        return proc

    def abort_application(self, reason: str) -> None:
        """Terminate the whole run: an unsurvivable failure was detected.

        Every surviving checkpoint copy of some required image is gone (a
        correlated outage took the node *and* its partner, with no remote
        copy), so the job cannot be restored — the dispatcher declares it
        failed.  All rank scripts and in-flight recoveries are interrupted,
        every context is marked finished at the current instant (the abort
        time becomes the makespan), and the reason is recorded on the
        runtime so results report the run as not survived instead of
        deadlocking or crashing.
        """
        if self.aborted is not None:
            return
        self.aborted = reason
        if self.telemetry_tracing:
            tracer = self.telemetry.tracer
            for rank in range(self.n_ranks):
                tracer.abort_open(f"rank{rank}", abort_cause="job-aborted")
        current = self.sim.active_process
        for proc in self._rank_processes:
            if proc.is_alive and proc is not current:
                proc.interrupt("job-aborted")
        for proc in list(self._recovery_inflight):
            if proc.is_alive and proc is not current:
                proc.interrupt("job-aborted")
        now = self.sim.now
        for ctx in self.contexts:
            if not ctx.finished:
                ctx.finished = True
            if ctx.stats.finished_at is None:
                ctx.stats.finished_at = now
            if self.sampler is not None:
                self.sampler.note_phase(ctx.rank, "finished", now)

    def migrate_rank(self, rank: int, new_node: int) -> int:
        """Re-place a halted rank onto ``new_node`` (restart on a spare).

        Only valid while the rank's process is down (killed or rolled back):
        a live script cannot change nodes.  All subsequent traffic — image
        restore, log replay, application messages — flows over the new
        node's NIC because every delivery resolves ``ctx.node_id`` at issue
        time; messages still in flight toward the old node die by the usual
        rollback-epoch connection reset.  Returns the old node id.
        """
        ctx = self.contexts[rank]
        if self._rank_processes and self._rank_processes[rank].is_alive:
            raise RuntimeError(f"rank {rank} is live; only a halted rank can migrate")
        old_node = self.cluster.migrate_rank(rank, new_node)
        ctx.node_id = new_node
        return old_node

    def replay_channel(
        self, src: int, dst: int, entries: Sequence[Any], read_log_from_storage: bool
    ) -> Generator[Event, None, Tuple[int, int]]:
        """Resend logged messages on one channel during live recovery.

        Entries are replayed in order over the simulated network (contending
        with live traffic on both NICs) and delivered through the normal
        terminal delivery stage, so the restarted receiver's tag-matched
        receives consume them exactly like the original messages.  When the
        *sender* was itself rolled back, its in-memory log is gone and the
        flushed log is first fetched from checkpoint storage.  Returns
        ``(bytes, messages)`` replayed.
        """
        src_ctx = self.contexts[src]
        dst_ctx = self.contexts[dst]
        src_node, dst_node = src_ctx.node_id, dst_ctx.node_id
        net = self.cluster.network
        total = sum(e.nbytes for e in entries)
        if read_log_from_storage and total > 0:
            yield from self.cluster.hierarchy.read(src_node, total)
        replayed = 0
        for entry in entries:
            if src_node == dst_node:
                yield Timeout(self.sim, net.spec.per_message_overhead_s)
            else:
                yield from net.transfer(src_node, dst_node, entry.nbytes)
            msg = self._make_message(src, dst, entry.nbytes, entry.tag, MessageKind.APP)
            msg.end_offset = entry.end_offset
            self._finish_delivery(msg)
            replayed += 1
        return total, replayed

    # ------------------------------------------------------------------ execution
    def _collective_tag(self, base_tag: int) -> int:
        seq = self._collective_seq.get(base_tag, 0)
        self._collective_seq[base_tag] = seq + 1
        return self.config.collective_tag + base_tag

    def _run_schedule(
        self, ctx: RankContext, steps: Sequence[Tuple[str, int, int]], tag: int
    ) -> Generator[Event, None, None]:
        for action, peer, nbytes in steps:
            if not ctx.in_checkpoint and ctx.has_visible_request(self.sim.now):
                yield from self.handle_pending_checkpoints(ctx)
            if action == "send":
                yield from self.app_send(ctx, peer, nbytes, tag=tag)
            elif action == "recv":
                yield from self.app_recv(ctx, src=peer, tag=tag)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown schedule action {action!r}")

    # NOTE: the Compute/Send/Recv/SendRecv/Marker handlers below are shadowed
    # by inlined copies in the _run_rank hot loop — a change to one of these
    # five bodies must be mirrored there (the dispatch-table versions still
    # serve execute_op() callers: protocols, tests, op subclasses).

    def _op_compute(self, ctx: RankContext, op: Compute) -> Generator[Event, None, None]:
        node = self.cluster.nodes[ctx.node_id]
        duration = node.compute_time(op.seconds)
        if op.jitter and node.spec.os_jitter_sigma > 0:
            duration = self.rng.lognormal_jitter(
                ctx.jitter_key, duration, node.spec.os_jitter_sigma
            )
        ctx.stats.compute_time += duration
        if duration > 0:
            yield Timeout(self.sim, duration)

    def _op_send(self, ctx: RankContext, op: Send) -> Generator[Event, None, None]:
        yield from self.app_send(ctx, op.dst, op.nbytes, tag=op.tag, blocking=True)

    def _op_isend(self, ctx: RankContext, op: Isend) -> Generator[Event, None, None]:
        yield from self.app_send(ctx, op.dst, op.nbytes, tag=op.tag, blocking=False)

    def _op_recv(self, ctx: RankContext, op: Recv) -> Generator[Event, None, None]:
        yield from self.app_recv(ctx, src=op.src, tag=op.tag)

    def _op_sendrecv(self, ctx: RankContext, op: SendRecv) -> Generator[Event, None, None]:
        yield from self.app_send(ctx, op.dst, op.send_nbytes, tag=op.tag, blocking=False)
        if op.src is not None:
            yield from self.app_recv(ctx, src=op.src, tag=op.tag)

    def _op_wait(self, ctx: RankContext, op: Wait) -> Generator[Event, None, None]:
        if op.seconds > 0:
            yield self.sim.timeout(op.seconds)

    def _op_barrier(self, ctx: RankContext, op: Barrier) -> Generator[Event, None, None]:
        participants = op.participants or tuple(range(self.n_ranks))
        steps = coll.barrier_schedule(ctx.rank, participants)
        yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))

    def _op_bcast(self, ctx: RankContext, op: Bcast) -> Generator[Event, None, None]:
        participants = op.participants or tuple(range(self.n_ranks))
        steps = coll.bcast_schedule(ctx.rank, op.root, participants, op.nbytes)
        yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))

    def _op_reduce(self, ctx: RankContext, op: Reduce) -> Generator[Event, None, None]:
        participants = op.participants or tuple(range(self.n_ranks))
        steps = coll.reduce_schedule(ctx.rank, op.root, participants, op.nbytes)
        yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))

    def _op_allreduce(self, ctx: RankContext, op: Allreduce) -> Generator[Event, None, None]:
        participants = op.participants or tuple(range(self.n_ranks))
        steps = coll.allreduce_schedule(ctx.rank, participants, op.nbytes)
        yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))

    def _op_allgather(self, ctx: RankContext, op: Allgather) -> Generator[Event, None, None]:
        participants = op.participants or tuple(range(self.n_ranks))
        steps = coll.allgather_schedule(ctx.rank, participants, op.nbytes)
        yield from self._run_schedule(ctx, steps, self._collective_tag(op.tag))

    def _op_marker(self, ctx: RankContext, op: Marker) -> Generator[Event, None, None]:
        ctx.stats.progress_marks.append((self.sim.now, op.label))
        return
        yield  # pragma: no cover - makes this a generator

    #: exact-type dispatch for the operation interpreter (isinstance fallback
    #: in :meth:`execute_op` keeps subclassed operations working)
    _OP_DISPATCH = {
        Compute: _op_compute,
        Send: _op_send,
        Isend: _op_isend,
        Recv: _op_recv,
        SendRecv: _op_sendrecv,
        Wait: _op_wait,
        Barrier: _op_barrier,
        Bcast: _op_bcast,
        Reduce: _op_reduce,
        Allreduce: _op_allreduce,
        Allgather: _op_allgather,
        Marker: _op_marker,
    }

    def execute_op(self, ctx: RankContext, op: Op) -> Generator[Event, None, None]:
        """Interpret one application operation for ``ctx``."""
        ctx.stats.ops_executed += 1
        handler = self._OP_DISPATCH.get(op.__class__)
        if handler is None:
            for op_type, candidate in self._OP_DISPATCH.items():
                if isinstance(op, op_type):
                    handler = candidate
                    break
            else:
                raise TypeError(f"unsupported operation type {type(op).__name__}")
        yield from handler(self, ctx, op)

    def _run_rank(self, ctx: RankContext, program: Iterable[Op],
                  start_index: int = 0, fresh: bool = True) -> Generator[Event, None, None]:
        sim = self.sim
        if fresh:
            ctx.stats.started_at = sim.now
        dispatch = self._OP_DISPATCH
        stats = ctx.stats
        failures = self.failures_enabled
        app_send = self.app_send
        app_recv = self.app_recv
        nodes = self.cluster.nodes
        rng = self.rng
        op_index = start_index
        try:
            for op in program:
                if failures:
                    # Resume-point bookkeeping: remember which operation is
                    # executing and wipe the previous operation's traffic.
                    ctx.op_cursor = op_index
                    op_index += 1
                    if ctx._op_sent:
                        ctx._op_sent.clear()
                        ctx._op_sent_msgs.clear()
                    if ctx._op_consumed:
                        del ctx._op_consumed[:]
                if ctx.pending_requests and ctx.has_visible_request(sim.now):
                    yield from self.handle_pending_checkpoints(ctx)
                # The five hottest operation kinds are interpreted inline — every
                # generator frame removed here is removed from every resume of
                # this rank (CPython walks the yield-from chain per send()).
                # Everything else goes through the dispatch table / execute_op.
                # These branches are verbatim copies of _op_compute/_op_send/
                # _op_recv/_op_sendrecv/_op_marker: edits must be mirrored.
                cls = op.__class__
                stats.ops_executed += 1
                if cls is SendRecv:
                    yield from app_send(ctx, op.dst, op.send_nbytes, tag=op.tag, blocking=False)
                    if op.src is not None:
                        yield from app_recv(ctx, src=op.src, tag=op.tag)
                elif cls is Compute:
                    node = nodes[ctx.node_id]
                    duration = node.compute_time(op.seconds)
                    if op.jitter and node.spec.os_jitter_sigma > 0:
                        duration = rng.lognormal_jitter(
                            ctx.jitter_key, duration, node.spec.os_jitter_sigma
                        )
                    stats.compute_time += duration
                    if duration > 0:
                        yield Timeout(sim, duration)
                elif cls is Send:
                    yield from app_send(ctx, op.dst, op.nbytes, tag=op.tag, blocking=True)
                elif cls is Recv:
                    yield from app_recv(ctx, src=op.src, tag=op.tag)
                elif cls is Marker:
                    stats.progress_marks.append((sim.now, op.label))
                else:
                    handler = dispatch.get(cls)
                    if handler is None:
                        stats.ops_executed -= 1  # execute_op counts it itself
                        yield from self.execute_op(ctx, op)
                    else:
                        yield from handler(self, ctx, op)
            if failures:
                ctx.op_cursor = op_index
                if ctx._op_sent:
                    ctx._op_sent.clear()
                    ctx._op_sent_msgs.clear()
                if ctx._op_consumed:
                    del ctx._op_consumed[:]
            # Handle any request that was delivered but not yet handled, so group
            # barriers never wait on a rank that has already exited.  Requests that
            # are not yet visible are waited out first.
            while ctx.has_pending_request():
                if not ctx.has_visible_request(self.sim.now):
                    yield self.sim.timeout(max(ctx.next_visible_at() - self.sim.now, 0.0))
                yield from self.handle_pending_checkpoints(ctx)
        except Interrupt:
            # Killed by the failure injector (or rolled back with its group).
            # The process ends quietly; LiveRecovery re-creates it from the
            # rollback target's resume point.
            return
        ctx.finished = True
        ctx.stats.finished_at = self.sim.now
        if self.sampler is not None:
            self.sampler.note_phase(ctx.rank, "finished", self.sim.now)

    def launch(self, program_factory: ProgramFactory) -> List[SimProcess]:
        """Start one simulation process per rank executing its script."""
        if self._rank_processes:
            raise RuntimeError("launch() may only be called once per runtime")
        self._program_factory = program_factory
        for ctx in self.contexts:
            program = program_factory(ctx.rank)
            proc = self.sim.process(self._run_rank(ctx, iter(program)), name=f"rank:{ctx.rank}")
            self._rank_processes.append(proc)
        return self._rank_processes

    def run_to_completion(self, limit_s: Optional[float] = None) -> ApplicationResult:
        """Run the simulation until every rank's script has finished.

        With a failure injector attached, rank processes may be killed and
        re-created mid-run, so the wait set is rebuilt whenever it drains:
        in-flight recovery orchestrations are waited on alongside the rank
        processes until every context reports its script finished.
        """
        if not self._rank_processes:
            raise RuntimeError("launch() must be called before run_to_completion()")
        if not self.failures_enabled:
            done = self.sim.all_of(self._rank_processes)
            if not self.sim.run_until_event(done, limit=limit_s):
                raise RuntimeError(
                    f"application did not finish within {limit_s} simulated seconds")
        else:
            while not all(ctx.finished for ctx in self.contexts):
                waits = [p for p in self._rank_processes if not p._processed]
                waits += [p for p in self._recovery_inflight if not p._processed]
                if not waits:
                    unfinished = [c.rank for c in self.contexts if not c.finished]
                    raise RuntimeError(
                        f"ranks {unfinished[:8]} neither finished nor recovering "
                        "(a failure was injected but recovery never relaunched them)")
                done = self.sim.all_of(waits)
                if not self.sim.run_until_event(done, limit=limit_s):
                    raise RuntimeError(
                        f"application did not finish within {limit_s} simulated seconds")
        makespan = max(
            ctx.stats.finished_at for ctx in self.contexts if ctx.stats.finished_at is not None
        )
        return ApplicationResult(
            n_ranks=self.n_ranks,
            protocol_name=self.protocol_family.name if self.protocol_family else "none",
            makespan=makespan,
            contexts=self.contexts,
            deliveries=self.deliveries,
            trace=self.tracer.log if self.tracer is not None else None,
            recovery=self.recovery_reports,
            recovery_stats=(self.recovery_manager.stats()
                            if self.recovery_manager is not None else {}),
            aborted=self.aborted,
            storage_stats=self.cluster.hierarchy.stats(),
        )
