"""Operation vocabulary of application scripts.

A workload (HPL-like, NPB CG-like, ...) is expressed as one generator of
``Op`` objects per rank.  The MPI runtime interprets these; checkpoint
signals are honoured between operations and while blocked inside them, which
mirrors where a system-level checkpointer (LAM/MPI's CRTCP module, BLCR
callbacks) interacts with a real application.

All sizes are in bytes, all durations in (reference) seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


class Op:
    """Base class of all application operations (marker type)."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Op):
    """A local compute phase of ``seconds`` reference-seconds (at 2.0 GHz).

    ``jitter`` selects whether OS noise is applied (multiplicative log-normal
    with the node's configured sigma).
    """

    seconds: float
    jitter: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("compute seconds must be non-negative")


@dataclass(frozen=True)
class Send(Op):
    """A blocking send of ``nbytes`` to rank ``dst`` with matching ``tag``."""

    dst: int
    nbytes: int
    tag: int = 0

    def __post_init__(self) -> None:
        if self.dst < 0:
            raise ValueError("dst must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class Isend(Op):
    """A non-blocking send; completion is not tracked at the application level.

    The runtime charges only the local send overhead and injects the message;
    use :class:`Send` when the sender should also pay wire serialisation.
    """

    dst: int
    nbytes: int
    tag: int = 0

    def __post_init__(self) -> None:
        if self.dst < 0:
            raise ValueError("dst must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class Recv(Op):
    """A blocking receive from ``src`` (or any source if ``src`` is None)."""

    src: Optional[int] = None
    tag: Optional[int] = None

    def __post_init__(self) -> None:
        if self.src is not None and self.src < 0:
            raise ValueError("src must be non-negative or None")


@dataclass(frozen=True)
class SendRecv(Op):
    """A combined exchange: send to ``dst`` and receive from ``src``.

    The send is injected first (non-blocking), then the receive blocks; this
    is the deadlock-free pairwise-exchange idiom used by the workload
    generators for ring and transpose patterns.
    """

    dst: int
    send_nbytes: int
    src: Optional[int] = None
    tag: int = 0

    def __post_init__(self) -> None:
        if self.dst < 0:
            raise ValueError("dst must be non-negative")
        if self.send_nbytes < 0:
            raise ValueError("send_nbytes must be non-negative")
        if self.src is not None and self.src < 0:
            raise ValueError("src must be non-negative or None")


@dataclass(frozen=True)
class Wait(Op):
    """Wait for previously issued non-blocking operations (modelled as a no-op delay)."""

    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")


@dataclass(frozen=True)
class Barrier(Op):
    """A barrier over ``participants`` (all ranks if None)."""

    participants: Optional[Tuple[int, ...]] = None
    tag: int = 0

    @staticmethod
    def over(ranks: Sequence[int], tag: int = 0) -> "Barrier":
        """Barrier over an explicit set of ranks."""
        return Barrier(participants=tuple(sorted(ranks)), tag=tag)


@dataclass(frozen=True)
class Bcast(Op):
    """Broadcast ``nbytes`` from ``root`` to ``participants`` (binomial tree)."""

    root: int
    nbytes: int
    participants: Optional[Tuple[int, ...]] = None
    tag: int = 0

    def __post_init__(self) -> None:
        if self.root < 0:
            raise ValueError("root must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class Reduce(Op):
    """Reduce ``nbytes`` of data from ``participants`` to ``root`` (binomial tree)."""

    root: int
    nbytes: int
    participants: Optional[Tuple[int, ...]] = None
    tag: int = 0

    def __post_init__(self) -> None:
        if self.root < 0:
            raise ValueError("root must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class Allreduce(Op):
    """All-reduce of ``nbytes`` over ``participants`` (recursive doubling)."""

    nbytes: int
    participants: Optional[Tuple[int, ...]] = None
    tag: int = 0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class Allgather(Op):
    """All-gather where each participant contributes ``nbytes`` (ring algorithm)."""

    nbytes: int
    participants: Optional[Tuple[int, ...]] = None
    tag: int = 0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class Marker(Op):
    """A zero-cost annotation in the script (phase boundaries, iteration ids).

    Markers show up in the per-rank progress log and are useful for
    synchronising analysis (e.g. Figure 2's iteration boundaries), but the
    runtime spends no simulated time on them.
    """

    label: str = ""
    data: dict = field(default_factory=dict)
