"""MPI-like message-passing runtime on top of the discrete-event engine.

The runtime executes one *operation script* (a generator of
:class:`~repro.mpi.ops.Op` objects) per rank, moving messages through the
cluster's network model.  Checkpoint protocols hook into the runtime at
exactly the points a real MPI checkpointing layer does: on send, on message
arrival, and at operation boundaries (where checkpoint signals are honoured).

Public pieces:

* :mod:`repro.mpi.messages` — message records and channel accounting,
* :mod:`repro.mpi.ops` — the operation vocabulary of application scripts,
* :mod:`repro.mpi.collectives` — point-to-point schedules for collectives,
* :mod:`repro.mpi.runtime` — :class:`MpiRuntime` and :class:`RankContext`,
* :mod:`repro.mpi.tracer` — the light-weight communication tracer,
* :mod:`repro.mpi.trace` — trace records, logs and communication matrices.
"""

from repro.mpi.messages import Message, MessageKind, ChannelAccount
from repro.mpi.ops import (
    Op,
    Compute,
    Send,
    Recv,
    SendRecv,
    Isend,
    Wait,
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Allgather,
    Marker,
)
from repro.mpi.trace import TraceRecord, TraceLog
from repro.mpi.tracer import Tracer
from repro.mpi.runtime import MpiRuntime, RankContext, ApplicationResult

__all__ = [
    "Message",
    "MessageKind",
    "ChannelAccount",
    "Op",
    "Compute",
    "Send",
    "Recv",
    "SendRecv",
    "Isend",
    "Wait",
    "Barrier",
    "Bcast",
    "Reduce",
    "Allreduce",
    "Allgather",
    "Marker",
    "TraceRecord",
    "TraceLog",
    "Tracer",
    "MpiRuntime",
    "RankContext",
    "ApplicationResult",
]
