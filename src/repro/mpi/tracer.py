"""Light-weight MPI communication tracer.

Mirrors the paper's tracer library: it is "linked" with the application (here:
attached to the runtime), observes every application-level send, and produces
a :class:`~repro.mpi.trace.TraceLog` that the group-formation algorithm
analyses.  The tracer can optionally charge a (tiny) per-record overhead to
the sender, so the cost of tracing itself can be studied; the paper describes
the tracer as light-weight and subsequent production runs drop it entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.messages import Message
from repro.mpi.trace import TraceLog, TraceRecord


class Tracer:
    """Observer of application sends producing a :class:`TraceLog`.

    Parameters
    ----------
    overhead_per_record_s:
        Simulated time charged to the sender for writing one trace record
        (an in-memory append in the real tracer — effectively negligible).
    max_records:
        Optional safety cap; tracing stops after this many records so that
        very long runs can still be traced cheaply.  The group formation
        only needs a representative window of the execution.  The cap is
        carried by the :class:`TraceLog` itself (records added to the log
        retroactively count against it too); when hit, the log is marked
        ``truncated`` and carries the number of ``dropped_records``, so
        downstream consumers can tell a complete trace from a prefix.
    """

    def __init__(
        self,
        overhead_per_record_s: float = 0.0,
        max_records: Optional[int] = None,
    ) -> None:
        if overhead_per_record_s < 0:
            raise ValueError("overhead_per_record_s must be non-negative")
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be non-negative")
        self.overhead_per_record_s = overhead_per_record_s
        self.max_records = max_records
        self.log = TraceLog(max_records=max_records)
        self.enabled = True

    @property
    def dropped_records(self) -> int:
        """Records observed but not stored (the log's counter is canonical)."""
        return self.log.dropped_records

    def on_send(self, message: Message, timestamp: float) -> float:
        """Record an application send; return the overhead to charge the sender."""
        if not self.enabled or not message.is_app:
            return 0.0
        stored = self.log.append(
            TraceRecord(
                src=message.src,
                dst=message.dst,
                nbytes=message.nbytes,
                timestamp=timestamp,
                tag=message.tag,
            )
        )
        return self.overhead_per_record_s if stored else 0.0

    def disable(self) -> None:
        """Stop recording (subsequent sends are not traced)."""
        self.enabled = False

    def enable(self) -> None:
        """Resume recording."""
        self.enabled = True

    def reset(self) -> None:
        """Drop all recorded data (the ``max_records`` cap is kept)."""
        self.log = TraceLog(max_records=self.max_records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} records={len(self.log)} dropped={self.dropped_records}>"
