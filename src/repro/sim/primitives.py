"""Waitable primitives for the discrete-event kernel.

The kernel understands a single concept: an :class:`Event` that will *fire*
at some point in virtual time, optionally carrying a value.  Processes wait
on events by ``yield``-ing them.  Composite conditions (:class:`AllOf`,
:class:`AnyOf`) and resources (:class:`Resource`, :class:`Store`) are built
from plain events so the scheduler itself stays tiny.

Hot-path design notes
---------------------
Millions of events are created per simulated run, so the constructors avoid
any per-event work that is only needed for debugging:

* **Lazy names.**  ``name`` may be a plain string, ``None`` (the default), or
  a zero-argument callable; it is only resolved in ``__repr__`` and error
  paths, never on the hot path.  Hot creators pass nothing.
* **Slot-only construction.**  :class:`Timeout` writes its slots directly and
  pushes itself onto the calendar inline instead of going through the
  ``Event`` constructor plus :meth:`Simulator.schedule`.
* **Counter-based conditions.**  :class:`AllOf`/:class:`AnyOf` complete on a
  fired-child counter; an ``AnyOf`` whose first child is already processed
  never registers callbacks on the remaining children.
* :meth:`Resource.acquire_nowait` grants an idle slot without allocating a
  grant event — the network fast path uses it to reserve an uncontended NIC.
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

#: lazy event label: literal, deferred factory, or absent
EventName = Union[str, Callable[[], str], None]


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; it is *triggered* (scheduled to fire) by
    :meth:`succeed` or :meth:`fail` and becomes *processed* once the
    simulator has delivered it to all waiting callbacks.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in ``repr`` and error messages.  May be a string
        or a zero-argument callable (resolved lazily, so hot paths never pay
        for string formatting).
    """

    __slots__ = ("sim", "_name", "callbacks", "_value", "_ok", "_triggered", "_processed", "defused")

    def __init__(self, sim: "Simulator", name: EventName = None) -> None:
        self.sim = sim
        self._name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: set to True when a failure has been handled (prevents the
        #: simulator from escalating an unhandled failed event).
        self.defused = False

    # -- state ---------------------------------------------------------
    @property
    def name(self) -> str:
        """Resolved label (may invoke a lazy name factory; '' if unnamed)."""
        n = self._name
        if n is None:
            return ""
        if callable(n):
            return str(n())
        return n

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (not failed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception if failed)."""
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if self._triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay)
        return self

    def trigger(self, other: "Event") -> None:
        """Fire with the same outcome as ``other`` (used by conditions)."""
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(other._value)

    # -- internal ------------------------------------------------------
    def _mark_processed(self) -> None:
        self._processed = True
        self.callbacks = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        name = self.name
        label = f" {name!r}" if name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units after creation.

    The constructor is slot-optimised: it writes every attribute directly and
    pushes itself onto the owning simulator's calendar inline, skipping the
    generic ``Event.__init__`` → ``succeed`` → ``schedule`` chain (timeouts
    are the single most frequently created event kind).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: EventName = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self._name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.defused = False
        self.delay = delay
        counter = sim._counter + 1
        sim._counter = counter
        _heappush(sim._heap, (sim.now + delay, counter, self))
        stats = sim.stats
        stats.heap_pushes += 1
        stats.timeouts += 1


class Condition(Event):
    """Base for composite wait conditions over a set of events.

    Completion is counter-based: each fired child bumps ``_n_fired`` and the
    condition triggers once :meth:`_satisfied` holds.  Registration stops as
    soon as the condition triggers, so an :class:`AnyOf` whose first child is
    already processed costs no callback appends at all.
    """

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: EventName = None) -> None:
        Event.__init__(self, sim, name)
        self.events: List[Event] = list(events)
        self._n_fired = 0
        sim.stats.conditions += 1
        if not self.events:
            self.succeed({})
            return
        on_fire = self._on_fire
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("all events of a condition must share a simulator")
            if self._triggered:
                break
            if ev._processed:
                on_fire(ev)
            else:
                ev.callbacks.append(on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> Any:
        return {ev: ev._value for ev in self.events if ev._triggered and ev._ok}


class AllOf(Condition):
    """Fires when *all* constituent events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(Condition):
    """Fires as soon as *any* constituent event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1


class ResourceRequest(Event):
    """A pending claim on a :class:`Resource` slot.

    Use as a context manager or release explicitly via
    :meth:`Resource.release`.  The label is derived lazily from the owning
    resource (requests are created per message on the network hot path).
    """

    __slots__ = ("resource", "priority", "order")

    def __init__(self, resource: "Resource", priority: float, order: int) -> None:
        Event.__init__(self, resource.sim)
        self.resource = resource
        self.priority = priority
        self.order = order

    @property
    def name(self) -> str:
        """Lazy request label (resolved only for repr/debugging)."""
        return f"req:{self.resource.name}"

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def __lt__(self, other: "ResourceRequest") -> bool:
        return (self.priority, self.order) < (other.priority, other.order)


class ResourceHold:
    """Opaque slot token granted by :meth:`Resource.acquire_nowait`.

    Carries no state at all — it exists only as an identity entry in the
    resource's holder list until :meth:`Resource.release` removes it.
    """

    __slots__ = ()


class Resource:
    """A counted resource with FIFO (optionally prioritised) queueing.

    Models things like a node's NIC, a disk, or a shared checkpoint server:
    at most ``capacity`` holders at a time; further requests queue.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._queue: List[ResourceRequest] = []
        self._users: List[ResourceRequest] = []
        self._order = 0

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing holds or waits for a slot."""
        return not self._users and not self._queue

    def request(self, priority: float = 0.0) -> ResourceRequest:
        """Request a slot.  The returned event fires when the slot is granted."""
        self._order += 1
        req = ResourceRequest(self, priority, self._order)
        heapq.heappush(self._queue, req)
        self._grant()
        return req

    def acquire_nowait(self) -> Optional["ResourceHold"]:
        """Claim a slot synchronously if one is free and nobody queues.

        Returns an opaque hold token (release it normally via
        :meth:`release`), or ``None`` when the resource is contended.  Unlike
        :meth:`request` this allocates no grant event — not even a request
        object — it is the closed-form fast path used for provably
        uncontended NIC holds.
        """
        if self._queue or len(self._users) >= self.capacity:
            return None
        hold = ResourceHold()
        self._users.append(hold)
        return hold

    def release(self, request: Union[ResourceRequest, "ResourceHold"]) -> None:
        """Release a previously granted slot or hold (no-op if never granted)."""
        if request in self._users:
            self._users.remove(request)
        else:
            # Cancelling a queued request.
            try:
                self._queue.remove(request)
                heapq.heapify(self._queue)
            except ValueError:
                pass
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = heapq.heappop(self._queue)
            if req._triggered:
                continue
            self._users.append(req)
            req.succeed(req)


def _fire_event_now(ev: Event) -> None:
    """Immediate-queue thunk: deliver an already-triggered event's callbacks."""
    callbacks = ev.callbacks
    ev._processed = True
    ev.callbacks = None
    if callbacks:
        for cb in callbacks:
            cb(ev)


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    Used for per-channel message queues in the MPI runtime: ``put`` never
    blocks, ``get`` returns an event that fires when an item (optionally one
    matching ``filter``) becomes available.

    Get events fire through the simulator's immediate queue (still at the
    current time, still after the putting callback finishes) instead of a
    delay-zero calendar event — one heap push/pop less per message on the
    runtime's hottest path.
    """

    def __init__(self, sim: "Simulator", name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self.items: List[Any] = []
        self._getters: List[tuple[Event, Optional[Callable[[Any], bool]]]] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit ``item`` and wake a matching waiter, if any."""
        self.items.append(item)
        if self._getters:
            self._dispatch()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Return an event that fires with the next item matching ``filter``."""
        ev = Event(self.sim)
        self._getters.append((ev, filter))
        if self.items:
            self._dispatch()
        return ev

    def peek(self, filter: Optional[Callable[[Any], bool]] = None) -> Optional[Any]:
        """Return (without removing) the first matching item, or ``None``."""
        for item in self.items:
            if filter is None or filter(item):
                return item
        return None

    def _dispatch(self) -> None:
        items = self.items
        if not self._getters or not items:
            return
        remaining: List[tuple[Event, Optional[Callable[[Any], bool]]]] = []
        for entry in self._getters:
            ev, flt = entry
            if ev._triggered:
                continue
            idx = None
            if flt is None:
                if items:
                    idx = 0
            else:
                for i, item in enumerate(items):
                    if flt(item):
                        idx = i
                        break
            if idx is None:
                remaining.append(entry)
            else:
                item = items.pop(idx)
                ev._triggered = True
                ev._ok = True
                ev._value = item
                sim = ev.sim
                sim.stats.store_wakeups += 1
                sim._immediate.append((_fire_event_now, ev))
        self._getters = remaining


class PriorityStore(Store):
    """A :class:`Store` that always yields the smallest item first."""

    def put(self, item: Any) -> None:
        self.items.append(item)
        self.items.sort()
        if self._getters:
            self._dispatch()
