"""Waitable primitives for the discrete-event kernel.

The kernel understands a single concept: an :class:`Event` that will *fire*
at some point in virtual time, optionally carrying a value.  Processes wait
on events by ``yield``-ing them.  Composite conditions (:class:`AllOf`,
:class:`AnyOf`) and resources (:class:`Resource`, :class:`Store`) are built
from plain events so the scheduler itself stays tiny.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; it is *triggered* (scheduled to fire) by
    :meth:`succeed` or :meth:`fail` and becomes *processed* once the
    simulator has delivered it to all waiting callbacks.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_triggered", "_processed", "defused")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: set to True when a failure has been handled (prevents the
        #: simulator from escalating an unhandled failed event).
        self.defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (not failed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception if failed)."""
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if self._triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay)
        return self

    def trigger(self, other: "Event") -> None:
        """Fire with the same outcome as ``other`` (used by conditions)."""
        if other.ok:
            self.succeed(other.value)
        else:
            self.fail(other.value)

    # -- internal ------------------------------------------------------
    def _mark_processed(self) -> None:
        self._processed = True
        self.callbacks = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim.schedule(self, delay)


class Condition(Event):
    """Base for composite wait conditions over a set of events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events: List[Event] = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("all events of a condition must share a simulator")
            if ev.processed:
                self._on_fire(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> Any:
        return {ev: ev.value for ev in self.events if ev.triggered and ev.ok}


class AllOf(Condition):
    """Fires when *all* constituent events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(Condition):
    """Fires as soon as *any* constituent event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1


class ResourceRequest(Event):
    """A pending claim on a :class:`Resource` slot.

    Use as a context manager or release explicitly via
    :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority", "order")

    def __init__(self, resource: "Resource", priority: float, order: int) -> None:
        super().__init__(resource.sim, name=f"req:{resource.name}")
        self.resource = resource
        self.priority = priority
        self.order = order

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def __lt__(self, other: "ResourceRequest") -> bool:
        return (self.priority, self.order) < (other.priority, other.order)


class Resource:
    """A counted resource with FIFO (optionally prioritised) queueing.

    Models things like a node's NIC, a disk, or a shared checkpoint server:
    at most ``capacity`` holders at a time; further requests queue.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._queue: List[ResourceRequest] = []
        self._users: List[ResourceRequest] = []
        self._order = 0

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: float = 0.0) -> ResourceRequest:
        """Request a slot.  The returned event fires when the slot is granted."""
        self._order += 1
        req = ResourceRequest(self, priority, self._order)
        heapq.heappush(self._queue, req)
        self._grant()
        return req

    def release(self, request: ResourceRequest) -> None:
        """Release a previously granted slot (no-op if never granted)."""
        if request in self._users:
            self._users.remove(request)
        else:
            # Cancelling a queued request.
            try:
                self._queue.remove(request)
                heapq.heapify(self._queue)
            except ValueError:
                pass
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = heapq.heappop(self._queue)
            if req.triggered:
                continue
            self._users.append(req)
            req.succeed(req)


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    Used for per-channel message queues in the MPI runtime: ``put`` never
    blocks, ``get`` returns an event that fires when an item (optionally one
    matching ``filter``) becomes available.
    """

    def __init__(self, sim: "Simulator", name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self.items: List[Any] = []
        self._getters: List[tuple[Event, Optional[Callable[[Any], bool]]]] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit ``item`` and wake a matching waiter, if any."""
        self.items.append(item)
        self._dispatch()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Return an event that fires with the next item matching ``filter``."""
        ev = Event(self.sim, name=f"get:{self.name}")
        self._getters.append((ev, filter))
        self._dispatch()
        return ev

    def peek(self, filter: Optional[Callable[[Any], bool]] = None) -> Optional[Any]:
        """Return (without removing) the first matching item, or ``None``."""
        for item in self.items:
            if filter is None or filter(item):
                return item
        return None

    def _dispatch(self) -> None:
        if not self._getters or not self.items:
            return
        remaining: List[tuple[Event, Optional[Callable[[Any], bool]]]] = []
        for ev, flt in self._getters:
            if ev.triggered:
                continue
            idx = None
            for i, item in enumerate(self.items):
                if flt is None or flt(item):
                    idx = i
                    break
            if idx is None:
                remaining.append((ev, flt))
            else:
                item = self.items.pop(idx)
                ev.succeed(item)
        self._getters = remaining


class PriorityStore(Store):
    """A :class:`Store` that always yields the smallest item first."""

    def put(self, item: Any) -> None:
        self.items.append(item)
        self.items.sort()
        self._dispatch()
