"""Deterministic named random-number streams.

Every stochastic component of the simulator (OS jitter on compute phases,
unexpected checkpoint delays, failure inter-arrival times, ...) draws from a
*named* stream derived from a single master seed.  Streams are independent of
each other and of the order in which other streams are consumed, which keeps
experiments reproducible even as the code evolves.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np


class RandomStreams:
    """A registry of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        s = self._streams.get(name)
        if s is None:
            s = self._streams[name] = np.random.default_rng(self._derive_seed(name))
        return s

    # Convenience draws -------------------------------------------------
    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return float(self.stream(name).exponential(mean))

    def normal(self, name: str, loc: float, scale: float) -> float:
        """One normal draw."""
        if scale < 0:
            raise ValueError("scale must be non-negative")
        return float(self.stream(name).normal(loc, scale))

    def lognormal_jitter(self, name: str, base: float, sigma: float) -> float:
        """Multiplicative log-normal jitter around ``base`` (mean-preserving)."""
        if base < 0:
            raise ValueError("base must be non-negative")
        if sigma == 0.0 or base == 0.0:
            return base
        g = self.stream(name)
        return float(base * g.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))

    def bernoulli(self, name: str, p: float) -> bool:
        """One biased coin flip."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        return bool(self.stream(name).random() < p)

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw in ``[low, high)``."""
        return int(self.stream(name).integers(low, high))

    def child(self, suffix: str) -> "RandomStreams":
        """A new :class:`RandomStreams` whose master seed is derived from this one."""
        return RandomStreams(self._derive_seed(f"child:{suffix}") % (2**31 - 1))

    def spawn(self, count: int, prefix: str = "replica") -> list["RandomStreams"]:
        """``count`` independent child registries (one per experiment repeat)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.child(f"{prefix}:{i}") for i in range(count)]

    def reset(self, name: Optional[str] = None) -> None:
        """Forget one stream (or all of them), so the next use re-seeds it."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)
