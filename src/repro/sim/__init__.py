"""Discrete-event simulation engine.

A small, dependency-free, generator-based discrete-event simulation (DES)
kernel in the style of SimPy.  Simulation *processes* are Python generators
that ``yield`` waitable objects (:class:`Timeout`, :class:`Event`,
:class:`AllOf`, :class:`AnyOf`, resource requests).  The :class:`Simulator`
owns the event calendar and advances virtual time.

Everything higher up in :mod:`repro` (the cluster model, the MPI-like runtime
and the checkpoint protocols) is written against this kernel, so its semantics
are documented carefully and tested extensively.
"""

from repro.sim.engine import Simulator, SimProcess, Interrupt, SimulationError
from repro.sim.primitives import (
    Event,
    Timeout,
    AllOf,
    AnyOf,
    Condition,
    Resource,
    ResourceRequest,
    Store,
    PriorityStore,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "Simulator",
    "SimProcess",
    "Interrupt",
    "SimulationError",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Condition",
    "Resource",
    "ResourceRequest",
    "Store",
    "PriorityStore",
    "RandomStreams",
]
