"""The discrete-event scheduler and process abstraction.

The :class:`Simulator` keeps a priority queue of ``(time, tie, event)``
entries.  :meth:`Simulator.run` repeatedly pops the earliest event, advances
virtual time to it and invokes the event's callbacks.  A :class:`SimProcess`
is itself an event (it fires when the underlying generator returns), and it
registers a callback on whatever event its generator yields so it is resumed
when that event fires.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from repro.sim.primitives import AllOf, AnyOf, Event, Timeout


class SimulationError(RuntimeError):
    """Raised for scheduler-level errors (deadlock, unhandled failures)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`SimProcess.interrupt`.

    The ``cause`` attribute carries the object passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


ProcessGenerator = Generator[Event, Any, Any]


class SimProcess(Event):
    """A running simulation process wrapping a generator.

    The process is resumed each time the event it is currently waiting on
    fires; the fired value is sent into the generator (or the exception is
    thrown, for failed events).  When the generator returns, the process
    event fires with the generator's return value.
    """

    __slots__ = ("generator", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"SimProcess requires a generator, got {type(generator).__name__}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        # Bootstrap: resume the process at time "now".
        boot = Event(sim, name=f"init:{self.name}")
        boot.callbacks.append(self._resume)
        boot.succeed(None)

    # -- public --------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event the process is currently blocked on (None if running/finished)."""
        return self._waiting_on

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current event (which may still fire
        later and is simply ignored) and resumes with the exception.
        """
        if not self.is_alive:
            return
        self._interrupts.append(Interrupt(cause))
        wake = Event(self.sim, name=f"interrupt:{self.name}")
        wake.callbacks.append(self._deliver_interrupt)
        wake.succeed(None)

    # -- internal ------------------------------------------------------
    def _deliver_interrupt(self, _event: Event) -> None:
        if not self.is_alive or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        target = self._waiting_on
        if target is not None and not target.processed and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(exc, is_exception=True)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            # Stale wake-up from an event we stopped waiting on (interrupt).
            return
        self._waiting_on = None
        if event.ok:
            self._step(event.value, is_exception=False)
        else:
            event.defused = True
            self._step(event.value, is_exception=True)

    def _step(self, value: Any, is_exception: bool) -> None:
        self.sim._active_process = self
        try:
            if is_exception:
                if isinstance(value, BaseException):
                    target = self.generator.throw(value)
                else:  # pragma: no cover - defensive
                    target = self.generator.throw(SimulationError(str(value)))
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate as failed event
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event instances"
            )
            self.fail(err)
            return
        if target.processed:
            # Already fired: resume immediately (at the current time).
            wake = Event(self.sim, name=f"immediate:{self.name}")
            self._waiting_on = wake
            wake.callbacks.append(self._resume)
            if target.ok:
                wake.succeed(target.value)
            else:
                target.defused = True
                wake.fail(target.value)
        else:
            self._waiting_on = target
            assert target.callbacks is not None
            target.callbacks.append(self._resume)


class Simulator:
    """The discrete-event simulation kernel.

    Attributes
    ----------
    now:
        Current virtual time (seconds, by convention of this project).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple[float, int, Event]] = []
        self._counter = 0
        self._active_process: Optional[SimProcess] = None
        self._event_count = 0
        #: user-attachable bag of named objects (cluster, runtime, ...)
        self.context: Dict[str, Any] = {}

    # -- event factory helpers -----------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> SimProcess:
        """Register ``generator`` as a simulation process starting now."""
        return SimProcess(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Place ``event`` on the calendar ``delay`` after the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._counter += 1
        heapq.heappush(self._heap, (self.now + delay, self._counter, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty calendar")
        time, _, event = heapq.heappop(self._heap)
        if time < self.now - 1e-12:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self.now = time
        self._event_count += 1
        callbacks = event.callbacks or []
        event._mark_processed()
        for cb in callbacks:
            cb(event)
        if not event.ok and not event.defused:
            exc = event.value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"unhandled failed event: {event!r}")

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendar is empty or ``until`` is reached.

        Returns the final simulation time.
        """
        if until is not None and until < self.now:
            raise ValueError("'until' must not be before the current time")
        while self._heap:
            if until is not None and self.peek() > until:
                self.now = until
                return self.now
            self.step()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_complete(self, process: SimProcess, limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises :class:`SimulationError` if the calendar drains (deadlock) or
        the time ``limit`` is exceeded before the process completes.
        """
        while not process.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: process {process.name!r} never completed and no events remain"
                )
            if limit is not None and self.peek() > limit:
                raise SimulationError(f"time limit {limit} exceeded waiting for {process.name!r}")
            self.step()
        if not process.ok:
            exc = process.value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(str(exc))
        return process.value

    # -- introspection ---------------------------------------------------
    @property
    def processed_events(self) -> int:
        """Total number of events processed so far."""
        return self._event_count

    @property
    def active_process(self) -> Optional[SimProcess]:
        """The process currently being stepped (None outside callbacks)."""
        return self._active_process

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={len(self._heap)}>"
