"""The discrete-event scheduler and process abstraction.

The :class:`Simulator` keeps a priority queue of ``(time, tie, event)``
entries.  :meth:`Simulator.run` repeatedly pops the earliest event, advances
virtual time to it and invokes the event's callbacks.  A :class:`SimProcess`
is itself an event (it fires when the underlying generator returns), and it
registers a callback on whatever event its generator yields so it is resumed
when that event fires.

Hot-path design notes
---------------------
Next to the calendar the simulator keeps an *immediate queue*: callbacks that
must run at the current time, before the next calendar event.  Process
bootstrap, interrupt delivery, and resuming a process that yielded an
already-fired event all go through it, so none of those paths allocates (or
heap-schedules) a wake event any more.  The elisions are counted in
:class:`SimStats` (``sim.stats``), which also tracks heap pushes and events
created by kind — speedups are measured, not assumed.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from collections import deque
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.sim.primitives import AllOf, AnyOf, Event, EventName, Timeout

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for scheduler-level errors (deadlock, unhandled failures)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`SimProcess.interrupt`.

    The ``cause`` attribute carries the object passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


ProcessGenerator = Generator[Event, Any, Any]


class SimStats:
    """Cheap counter bundle describing what the kernel actually did.

    Every counter is a plain int slot (one integer add on the hot path).
    ``events_elided`` is the number of calendar events the fast paths
    provably avoided relative to the full coroutine/event model — the
    determinism-parity tests assert ``slow.processed_events ==
    fast.processed_events + fast.stats.events_elided`` for toggled runs.
    """

    __slots__ = (
        "heap_pushes",
        "timeouts",
        "conditions",
        "processes",
        "immediate_boots",
        "immediate_resumes",
        "immediate_interrupts",
        "immediate_calls",
        "store_wakeups",
        "fastpath_tx",
        "fastpath_rx",
        "fastpath_local",
        "events_elided",
    )

    def __init__(self) -> None:
        self.heap_pushes = 0          # events pushed onto the calendar
        self.timeouts = 0             # Timeout events created
        self.conditions = 0           # AllOf/AnyOf conditions created
        self.processes = 0            # SimProcess instances started
        self.immediate_boots = 0      # process bootstraps via the immediate queue
        self.immediate_resumes = 0    # already-fired-event resumes via the queue
        self.immediate_interrupts = 0  # interrupt deliveries via the queue
        self.immediate_calls = 0      # plain call_soon callbacks
        self.store_wakeups = 0        # store getters woken via the queue
        self.fastpath_tx = 0          # closed-form sender-side transfers
        self.fastpath_rx = 0          # closed-form delivery paths
        self.fastpath_local = 0       # same-node deliveries without a process
        self.events_elided = 0        # calendar events the fast paths avoided

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (for payloads, logs and benchmark reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"<SimStats {fields or 'empty'}>"


class SimProcess(Event):
    """A running simulation process wrapping a generator.

    The process is resumed each time the event it is currently waiting on
    fires; the fired value is sent into the generator (or the exception is
    thrown, for failed events).  When the generator returns, the process
    event fires with the generator's return value.

    Bootstrap and wake-ups for already-fired events go through the
    simulator's immediate queue instead of allocating wake events;
    ``_imm_token`` invalidates a queued resume when an interrupt overtakes it.
    """

    __slots__ = ("generator", "_waiting_on", "_interrupts", "_imm_token")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: EventName = None) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"SimProcess requires a generator, got {type(generator).__name__}")
        Event.__init__(self, sim, name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        self._imm_token = 0
        stats = sim.stats
        stats.processes += 1
        stats.immediate_boots += 1
        # Bootstrap: resume the process at time "now", before the next
        # calendar event (no boot Event is allocated or heap-scheduled).
        sim._immediate.append((self._boot, None))

    # -- public --------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event the process is currently blocked on (None if running/finished)."""
        return self._waiting_on

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current event (which may still fire
        later and is simply ignored) and resumes with the exception.
        Delivery goes through the immediate queue, preserving FIFO order
        with pending bootstraps and wake-ups.
        """
        if not self.is_alive:
            return
        self._interrupts.append(Interrupt(cause))
        self.sim.stats.immediate_interrupts += 1
        self.sim._immediate.append((self._deliver_interrupt, None))

    # -- internal ------------------------------------------------------
    def _boot(self, _arg: Any) -> None:
        if self._triggered:  # pragma: no cover - defensive
            return
        self._step(None, is_exception=False)

    def _deliver_interrupt(self, _arg: Any) -> None:
        if not self.is_alive or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        target = self._waiting_on
        if target is not None and not target._processed and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._imm_token += 1  # invalidate any queued immediate resume
        self._step(exc, is_exception=True)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            # Stale wake-up from an event we stopped waiting on (interrupt).
            return
        self._waiting_on = None
        if event._ok:
            self._step(event._value, is_exception=False)
        else:
            event.defused = True
            self._step(event._value, is_exception=True)

    def _imm_resume(self, arg: Tuple[int, Any, bool]) -> None:
        token, value, is_exception = arg
        if self._triggered or token != self._imm_token:
            return
        self._step(value, is_exception)

    def _step(self, value: Any, is_exception: bool) -> None:
        sim = self.sim
        sim._active_process = self
        try:
            if is_exception:
                if isinstance(value, BaseException):
                    target = self.generator.throw(value)
                else:  # pragma: no cover - defensive
                    target = self.generator.throw(SimulationError(str(value)))
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate as failed event
            self.fail(exc)
            return
        finally:
            sim._active_process = None

        cls = target.__class__
        if cls is not Timeout and cls is not Event and not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event instances"
            )
            self.fail(err)
            return
        if target._processed:
            # Already fired: resume at the current time through the immediate
            # queue (the pre-fast-path kernel allocated a wake Event here).
            self._imm_token += 1
            sim.stats.immediate_resumes += 1
            if not target._ok:
                target.defused = True
            sim._immediate.append(
                (self._imm_resume, (self._imm_token, target._value, not target._ok))
            )
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class Simulator:
    """The discrete-event simulation kernel.

    Attributes
    ----------
    now:
        Current virtual time (seconds, by convention of this project).
    stats:
        :class:`SimStats` counter bundle (events by kind, heap pushes,
        immediate resumes, fast-path elisions).
    telemetry:
        Optional :class:`repro.obs.Telemetry` attached by
        ``Telemetry.for_simulator``/``bind_simulator``.  ``None`` by default;
        the kernel itself never reads it (spans observe ``now`` passively, so
        the hot loops stay telemetry-free), but subsystems that only hold a
        simulator handle (the storage hierarchy) find their tracer here.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple[float, int, Event]] = []
        self._counter = 0
        self._active_process: Optional[SimProcess] = None
        self._event_count = 0
        #: callbacks to run at the current time, before the next calendar event
        self._immediate: deque = deque()
        self.stats = SimStats()
        #: user-attachable bag of named objects (cluster, runtime, ...)
        self.context: Dict[str, Any] = {}
        #: optional telemetry handle (spans + metrics); off by default
        self.telemetry: Optional[Any] = None
        #: optional passive time-series sampler (obs.sampler.StateSampler);
        #: None keeps the hot loop at a single local None-check per event
        self._sampler: Optional[Any] = None

    # -- event factory helpers -----------------------------------------
    def event(self, name: EventName = None) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: EventName = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def fire_at(self, time: float, value: Any = None, name: EventName = None) -> Event:
        """An already-triggered event firing at *absolute* time ``time``.

        Unlike :meth:`timeout` (which schedules ``now + delay``), this places
        the event at an exact absolute timestamp.  The closed-form network
        fast path uses it to reproduce, bit-for-bit, the completion times the
        multi-yield coroutine model would compute through its chain of
        relative timeouts (floating-point addition is not associative, so
        ``now + (a + b)`` and ``(now + a) + b`` can differ in the last ulp).
        """
        if time < self.now:
            raise ValueError(f"cannot fire at {time} before the current time {self.now}")
        ev = Event(self, name=name)
        ev._triggered = True
        ev._value = value
        counter = self._counter + 1
        self._counter = counter
        _heappush(self._heap, (time, counter, ev))
        self.stats.heap_pushes += 1
        return ev

    def process(self, generator: ProcessGenerator, name: EventName = None) -> SimProcess:
        """Register ``generator`` as a simulation process starting now."""
        return SimProcess(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Place ``event`` on the calendar ``delay`` after the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        counter = self._counter + 1
        self._counter = counter
        _heappush(self._heap, (self.now + delay, counter, event))
        self.stats.heap_pushes += 1

    def call_soon(self, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``fn(arg)`` at the current time, before the next calendar event.

        Immediate callbacks run in FIFO order and may enqueue further
        immediate callbacks; no calendar event is allocated.
        """
        self.stats.immediate_calls += 1
        self._immediate.append((fn, arg))

    def _drain_immediate(self) -> None:
        imm = self._immediate
        while imm:
            fn, arg = imm.popleft()
            fn(arg)

    def peek(self) -> float:
        """Time of the next pending work item (``inf`` if the calendar is empty).

        Pending immediate callbacks count as work at the current time.
        """
        if self._immediate:
            return self.now
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Run pending immediate callbacks, then process exactly one event."""
        if self._immediate:
            self._drain_immediate()
        if not self._heap:
            raise SimulationError("step() on an empty calendar")
        time, _, event = heapq.heappop(self._heap)
        if time < self.now - 1e-12:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self.now = time
        self._event_count += 1
        callbacks = event.callbacks
        event._processed = True
        event.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(event)
        if not event._ok and not event.defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"unhandled failed event: {event!r}")

    def run(self, until: Optional[float] = None) -> float:
        """Run until no work remains or ``until`` is reached.

        Returns the final simulation time.
        """
        if until is not None and until < self.now:
            raise ValueError("'until' must not be before the current time")
        while True:
            if self._immediate:
                self._drain_immediate()
            if not self._heap:
                break
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            self.step()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> bool:
        """Run until ``event`` has been processed; the kernel's hot loop.

        Returns True when the event was processed, False when the next
        calendar entry lies beyond ``limit`` (simulated time then stops just
        before it, exactly like the step-by-step loop it replaces).  Raises
        :class:`SimulationError` on deadlock (no work left).  The loop body
        is inlined with locally bound state — this is what the MPI runtime
        drives whole applications through, so it avoids per-event method
        dispatch entirely.

        When a telemetry sampler is attached (``self._sampler``), the loop
        hands it the popped timestamp whenever a bin edge is crossed —
        *before* callbacks run, so the snapshot it reads is the state that
        held for the whole interval since the previous event.  The sampler
        never schedules events, so sampled runs stay bit-identical.
        """
        heap = self._heap
        imm = self._immediate
        pop = _heappop
        popleft = imm.popleft
        # the sampler's next bin edge is cached in a local so the unsampled
        # (and between-edges) cost is one float comparison per event
        sampler = self._sampler
        sample_edge = _INF if sampler is None else sampler.next_edge
        # The per-event counter is accumulated locally and written back in
        # the finally block: one attribute store per run instead of one per
        # event (exceptions included, so `processed_events` stays exact).
        count = 0
        try:
            while not event._processed:
                while imm:
                    fn, arg = popleft()
                    fn(arg)
                if not heap:
                    if event._processed:
                        break
                    raise SimulationError(
                        f"deadlock: event {event!r} never fired and no events remain"
                    )
                if limit is not None and heap[0][0] > limit:
                    return False
                time, _, ev = pop(heap)
                self.now = time
                if time >= sample_edge:
                    sampler.observe(time)
                    sample_edge = sampler.next_edge
                count += 1
                callbacks = ev.callbacks
                ev._processed = True
                ev.callbacks = None
                if callbacks:
                    for cb in callbacks:
                        cb(ev)
                if not ev._ok and not ev.defused:
                    exc = ev._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise SimulationError(f"unhandled failed event: {ev!r}")
        finally:
            self._event_count += count
        return True

    def run_until_complete(self, process: SimProcess, limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises :class:`SimulationError` if the calendar drains (deadlock) or
        the time ``limit`` is exceeded before the process completes.
        """
        while not process._triggered:
            if self._immediate:
                self._drain_immediate()
                continue
            if not self._heap:
                raise SimulationError(
                    f"deadlock: process {process.name!r} never completed and no events remain"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(f"time limit {limit} exceeded waiting for {process.name!r}")
            self.step()
        if not process.ok:
            exc = process.value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(str(exc))
        return process.value

    # -- introspection ---------------------------------------------------
    @property
    def processed_events(self) -> int:
        """Total number of calendar events processed so far."""
        return self._event_count

    @property
    def active_process(self) -> Optional[SimProcess]:
        """The process currently being stepped (None outside callbacks)."""
        return self._active_process

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={len(self._heap)}>"
