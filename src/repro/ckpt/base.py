"""Common types for every checkpoint/restart protocol.

The paper's Figure 9 decomposes a checkpoint into four stages, which all our
protocols report so the breakdown can be reproduced:

* **Lock MPI** — quiescing the MPI library after the signal is received,
* **Coordination** — flushing message logs, exchanging bookmarks and draining
  in-transit messages, plus the intra-group barrier,
* **Checkpoint** — writing the process image (the BLCR dump),
* **Finalize** — the exit barrier and resuming normal execution.

Restart is reported with an analogous record.  The protocol interfaces follow
the hook points of a checkpointing MPI layer: ``on_send`` (sender-side
logging + piggybacking), ``on_arrival`` (piggyback processing / log GC),
``checkpoint`` (the coordinated procedure), and a ``snapshot`` consumed by the
restart orchestrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.runtime import MpiRuntime, RankContext
    from repro.sim.primitives import Event


STAGE_LOCK_MPI = "lock_mpi"
STAGE_COORDINATION = "coordination"
STAGE_CHECKPOINT = "checkpoint"
STAGE_FINALIZE = "finalize"

#: Stage names in the order the paper plots them (Figure 9).
STAGES: Tuple[str, ...] = (
    STAGE_LOCK_MPI,
    STAGE_COORDINATION,
    STAGE_CHECKPOINT,
    STAGE_FINALIZE,
)


@dataclass(frozen=True)
class CheckpointRequest:
    """A checkpoint request delivered to one rank.

    ``participants`` is the set of ranks that will coordinate this checkpoint
    (the rank's group under the group-based scheme, every rank under NORM,
    just the rank itself under GP1).  The coordinator snapshots this set when
    issuing the request so late-finishing ranks cannot deadlock the barrier.
    """

    ckpt_id: int
    group_id: int
    participants: Tuple[int, ...]
    issued_at: float
    #: extra delay before this rank starts handling, modelling mpirun's
    #: sequential propagation of the request to the group members.
    stagger_s: float = 0.0

    def __post_init__(self) -> None:
        if self.ckpt_id < 0:
            raise ValueError("ckpt_id must be non-negative")
        if not self.participants:
            raise ValueError("participants must not be empty")
        if self.issued_at < 0:
            raise ValueError("issued_at must be non-negative")
        if self.stagger_s < 0:
            raise ValueError("stagger_s must be non-negative")


@dataclass
class CheckpointRecord:
    """Timing record of one checkpoint taken by one rank."""

    rank: int
    ckpt_id: int
    group_id: int
    start: float
    end: float
    stages: Dict[str, float] = field(default_factory=dict)
    image_bytes: int = 0
    log_bytes_flushed: int = 0
    group_size: int = 1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("checkpoint end before start")

    @property
    def duration(self) -> float:
        """Total time from signal receipt to resuming normal execution."""
        return self.end - self.start

    @property
    def coordination_time(self) -> float:
        """Everything except the image dump (the paper's 'coordination cost')."""
        return self.duration - self.stages.get(STAGE_CHECKPOINT, 0.0)

    def stage(self, name: str) -> float:
        """Duration of one named stage (0 if the protocol does not report it)."""
        return self.stages.get(name, 0.0)


@dataclass
class RestartRecord:
    """Timing record of one rank's restart preparation."""

    rank: int
    start: float
    end: float
    image_bytes: int = 0
    replay_bytes_sent: int = 0
    replay_bytes_received: int = 0
    resend_operations: int = 0
    skip_bytes: int = 0
    stages: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("restart end before start")

    @property
    def duration(self) -> float:
        """Time from process re-creation to returning to normal execution."""
        return self.end - self.start


@dataclass
class ResumePoint:
    """Where (and with what channel state) a rolled-back rank re-executes.

    Captured at checkpoint time only when live failure injection is active.
    A checkpoint may be taken *inside* an operation (blocked in a receive, or
    between the steps of a collective schedule), so the channel counters at
    the image dump can include a partially-executed operation's traffic.  A
    rollback restarts the script at the *beginning* of ``op_index``, so:

    * the *send* counters restored on rollback are the checkpoint counters
      minus the in-progress operation's own sends (``pre-op`` values) —
      re-execution re-issues those sends at exactly the original byte
      offsets, which is what lets peers skip duplicates;
    * the *receive* counters stay at their checkpoint (delivery-time) values,
      and ``inbox`` preserves every application message that was delivered
      but not yet consumed — including those the partial operation had
      already consumed, which it will consume again.  This mirrors a real
      system checkpoint, where data drained into the MPI library is part of
      the process image.

    ``protocol_state`` is an opaque bag the owning protocol uses to restore
    its own internals (piggyback epochs, recorded RR values, ...).

    ``domain_state`` maps each workload domain unit owned by the rank to the
    number of simulated steps it had completed at capture time.  Elastic
    restart reads it to pick the consistent step boundary a repartitioned
    job resumes from; empty when the run's workload predates the
    domain/partition API (or no workload is attached to the runtime).
    """

    op_index: int
    ss: Dict[int, int] = field(default_factory=dict)
    rr: Dict[int, int] = field(default_factory=dict)
    ss_msgs: Dict[int, int] = field(default_factory=dict)
    rr_msgs: Dict[int, int] = field(default_factory=dict)
    inbox: List[Any] = field(default_factory=list)
    protocol_state: Dict[str, Any] = field(default_factory=dict)
    domain_state: Dict[int, int] = field(default_factory=dict)


@dataclass
class CheckpointSnapshot:
    """Per-rank protocol state captured at checkpoint time.

    The restart orchestrator computes replay/skip volumes from these, using
    the semantics of Algorithm 1:

    * ``ss`` — bytes sent to each peer as of this checkpoint (``S_X``),
    * ``rr`` — bytes received from each peer as of this checkpoint (``RR_X``),
    * ``logged_bytes`` — bytes currently retained in the sender-side log per
      destination (after garbage collection),
    * ``logged_messages`` — number of retained log entries per destination.

    ``resume`` carries the re-execution position for live failure recovery
    (None unless a failure injector is attached to the run).

    ``tiers`` records which storage levels the image was scheduled onto at
    dump time ("L1" local disk, "L2" partner replica, "L3" remote file
    system).  An L2 entry means the async partner copy was *initiated*; the
    storage hierarchy's catalog is the ground truth for whether it completed
    and still survives.
    """

    rank: int
    ckpt_id: int
    time: float
    group_id: int
    group_members: Tuple[int, ...]
    ss: Dict[int, int] = field(default_factory=dict)
    rr: Dict[int, int] = field(default_factory=dict)
    logged_bytes: Dict[int, int] = field(default_factory=dict)
    logged_messages: Dict[int, int] = field(default_factory=dict)
    image_bytes: int = 0
    resume: Optional[ResumePoint] = None
    tiers: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunable constants shared by the checkpoint/restart protocols.

    The values are calibrated to the behaviour of LAM/MPI 7.1.3b + BLCR 0.4.2
    over Fast Ethernet as reported in the paper; every knob is documented so
    ablations can vary it.

    Parameters
    ----------
    lock_mpi_s:
        Fixed cost of quiescing the MPI library after the checkpoint signal
        (signal delivery, acquiring the library locks).
    finalize_s:
        Fixed cost of releasing locks and resuming execution.
    restart_rebuild_s:
        Fixed per-process cost of re-creating the process and refreshing the
        MPI library's internal structures during restart.
    control_bytes:
        Size of a coordination control message (bookmarks, barrier tokens).
    per_channel_quiesce_s:
        Per-peer-channel cost of the bookmark exchange and TCP-level quiesce
        during coordination.  This models LAM/MPI's crtcp module work per
        connection and is the term that makes *global* coordination grow with
        the number of processes (Figure 1).
    channel_stall_probability / channel_stall_s:
        Probability that quiescing one channel hits a TCP drain stall, and
        the mean stall duration (exponential).  Responsible for the spikes in
        Figures 1, 5 and 6.
    unexpected_delay_probability / unexpected_delay_s:
        Probability that a process experiences an unrelated OS-level delay
        (page-out, daemon activity) while coordinating, and its mean length.
    log_copy_bandwidth:
        Memory bandwidth available for copying outgoing messages into the
        sender-side log (bytes/s).  This is the steady-state overhead message
        logging adds to every inter-group send.
    log_entry_overhead_s:
        Fixed per-message cost of appending a log entry.
    log_flush_buffer_bytes:
        Size of the in-memory log buffer.  Logging is asynchronous, so at a
        checkpoint only the not-yet-persisted tail (at most this many bytes)
        needs a synchronous flush.
    piggyback_bytes:
        Extra bytes carried by the first message to a peer after a checkpoint
        (the ``RR`` value used for garbage collection).
    replay_batch_bytes:
        Replay messages are resent in batches of at most this many bytes per
        resend operation during restart.
    dump_fork_s:
        Cost of the pre-dump quiesce/fork before image bytes start flowing.
    """

    lock_mpi_s: float = 0.08
    finalize_s: float = 0.12
    restart_rebuild_s: float = 0.35
    control_bytes: int = 64
    per_channel_quiesce_s: float = 0.010
    channel_stall_probability: float = 0.025
    channel_stall_s: float = 0.8
    unexpected_delay_probability: float = 0.02
    unexpected_delay_s: float = 2.5
    log_copy_bandwidth: float = 100e6
    log_entry_overhead_s: float = 12e-6
    log_flush_buffer_bytes: int = 4 * 1024 * 1024
    piggyback_bytes: int = 16
    replay_batch_bytes: int = 256 * 1024
    dump_fork_s: float = 0.05

    def __post_init__(self) -> None:
        non_negative = (
            "lock_mpi_s",
            "finalize_s",
            "restart_rebuild_s",
            "per_channel_quiesce_s",
            "channel_stall_s",
            "unexpected_delay_s",
            "log_entry_overhead_s",
            "dump_fork_s",
        )
        for name in non_negative:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("channel_stall_probability", "unexpected_delay_probability"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.control_bytes < 0 or self.piggyback_bytes < 0:
            raise ValueError("control_bytes and piggyback_bytes must be non-negative")
        if self.log_copy_bandwidth <= 0:
            raise ValueError("log_copy_bandwidth must be positive")
        if self.log_flush_buffer_bytes < 0:
            raise ValueError("log_flush_buffer_bytes must be non-negative")
        if self.replay_batch_bytes <= 0:
            raise ValueError("replay_batch_bytes must be positive")

    def with_overrides(self, **kwargs: Any) -> "ProtocolConfig":
        """A copy of this config with selected fields replaced."""
        return replace(self, **kwargs)


class RankProtocol:
    """Per-rank protocol instance (one per MPI process).

    Subclasses implement the actual protocol; the runtime calls the hooks.
    """

    #: short name used in reports ("group", "vcl", ...)
    name: str = "base"

    def __init__(self, family: "ProtocolFamily", ctx: "RankContext", runtime: "MpiRuntime") -> None:
        self.family = family
        self.ctx = ctx
        self.runtime = runtime
        #: latest checkpoint state, plus the history retained for live
        #: failure recovery (populated via :meth:`_record_snapshot`)
        self._latest_snapshot: Optional[CheckpointSnapshot] = None
        self._snapshots: List[CheckpointSnapshot] = []

    # -- send/receive hooks ------------------------------------------------
    def on_send(self, dst: int, nbytes: int, tag: int) -> Tuple[float, Optional[Dict[str, Any]]]:
        """Called before an application send.

        Returns ``(extra_sender_delay_seconds, piggyback_dict_or_None)``.
        ``None`` means "no metadata": the runtime then leaves the message's
        lazy ``piggyback`` unallocated, so steady-state sends pay no dict.
        """
        return 0.0, None

    def on_arrival(self, message: Any) -> None:
        """Called when an application message arrives at this rank."""

    # -- checkpoint / restart -----------------------------------------------
    def checkpoint(self, request: CheckpointRequest) -> Generator["Event", Any, CheckpointRecord]:
        """Run the checkpoint procedure (a simulation coroutine)."""
        raise NotImplementedError  # pragma: no cover - interface

    def latest_snapshot(self) -> Optional[CheckpointSnapshot]:
        """State captured at the most recent checkpoint (None if never checkpointed)."""
        return self._latest_snapshot

    def snapshot_history(self) -> Tuple[CheckpointSnapshot, ...]:
        """Snapshots retained for live failure recovery, oldest first.

        Protocols only keep more than the latest snapshot while a failure
        injector is attached (the rollback target is the newest checkpoint
        *every* group member completed, which may not be the newest overall).
        """
        if self._snapshots:
            return tuple(self._snapshots)
        return (self._latest_snapshot,) if self._latest_snapshot is not None else ()

    def _record_snapshot(self, snapshot: CheckpointSnapshot) -> None:
        """Install a freshly captured snapshot (history kept under injection).

        A snapshot carries a resume point exactly when a failure injector is
        attached — only then is history worth the memory.
        """
        self._latest_snapshot = snapshot
        if snapshot.resume is not None:
            self._snapshots.append(snapshot)

    def _restore_snapshot(self, snapshot: Optional[CheckpointSnapshot]) -> None:
        """Roll the snapshot bookkeeping back to ``snapshot`` (None = genesis)."""
        self._latest_snapshot = snapshot
        if snapshot is None:
            self._snapshots = []
        else:
            self._snapshots = [s for s in self._snapshots
                               if s.ckpt_id <= snapshot.ckpt_id]

    def rollback_to(self, snapshot: Optional[CheckpointSnapshot]) -> None:
        """Restore protocol state to ``snapshot`` (None = restart from scratch).

        Called by the live recovery orchestrator after a failure.  Protocols
        that support measured failure injection override this to truncate
        their sender logs and restore piggyback/GC bookkeeping.
        """
        raise NotImplementedError(
            f"protocol {type(self).__name__} does not support live rollback"
        )

    @property
    def logged_bytes_total(self) -> int:
        """Total bytes currently held in this rank's sender-side log."""
        return 0


class ProtocolFamily:
    """Factory and shared configuration for a protocol across all ranks."""

    #: short name used in reports ("NORM", "GP", "GP1", "GP4", "VCL")
    name: str = "base"

    def __init__(self, config: Optional[ProtocolConfig] = None) -> None:
        self.config = config if config is not None else ProtocolConfig()

    def create(self, ctx: "RankContext", runtime: "MpiRuntime") -> RankProtocol:
        """Instantiate the per-rank protocol object."""
        raise NotImplementedError  # pragma: no cover - interface

    def participants_for(self, rank: int, running_ranks: Tuple[int, ...]) -> Tuple[int, ...]:
        """Ranks that coordinate a checkpoint together with ``rank``.

        ``running_ranks`` lets the coordinator exclude ranks that have already
        finished their program.
        """
        raise NotImplementedError  # pragma: no cover - interface

    def group_id_of(self, rank: int) -> int:
        """Identifier of the group ``rank`` belongs to (0 for ungrouped protocols)."""
        return 0

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return self.name
