"""Sender-based message log.

Under the group-based scheme every *inter-group* message is logged
asynchronously by its sender (Algorithm 1); under GP1 (uncoordinated) every
message is logged.  The log lives in the sender's memory and is flushed to
storage right before a checkpoint, so each successful checkpoint comes with a
correct, persistent set of message logs.

Garbage collection: when the first message is sent to a peer after a
checkpoint, the sender piggybacks ``RR_peer`` (the bytes it had received from
that peer before its latest checkpoint).  The peer uses the value to discard
log entries that the sender will never need replayed (the classic sender-based
logging GC from the paper).  Here the *receiver* of the piggyback trims its
own log for that channel up to the acknowledged byte offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class LogEntry:
    """One logged message: destination, payload size and cumulative offset.

    ``end_offset`` is the value of the channel's cumulative sent-byte counter
    *after* this message; entries with ``end_offset <= acknowledged`` can be
    garbage collected.  ``tag`` preserves the message envelope so a replayed
    entry can be re-matched by a restarted receiver's tag-filtered receives
    (a real sender-based log stores the full envelope, not just the bytes).
    """

    dst: int
    nbytes: int
    end_offset: int
    timestamp: float
    tag: int = 0

    def __post_init__(self) -> None:
        if self.dst < 0:
            raise ValueError("dst must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.end_offset < self.nbytes:
            raise ValueError("end_offset must be at least nbytes")


class SenderLog:
    """In-memory sender-side message log with flush and GC bookkeeping."""

    def __init__(self, rank: int) -> None:
        if rank < 0:
            raise ValueError("rank must be non-negative")
        self.rank = rank
        self._entries: Dict[int, List[LogEntry]] = {}
        #: bytes appended since the last flush (what the next flush must persist)
        self.unflushed_bytes = 0
        #: cumulative bytes ever appended (monotone, for accounting)
        self.total_logged_bytes = 0
        self.total_logged_messages = 0
        #: cumulative bytes discarded by garbage collection
        self.gc_bytes = 0

    # -- appending ----------------------------------------------------------
    def append(self, dst: int, nbytes: int, end_offset: int, timestamp: float,
               tag: int = 0) -> LogEntry:
        """Log one outgoing message to ``dst``."""
        entry = LogEntry(dst=dst, nbytes=nbytes, end_offset=end_offset,
                         timestamp=timestamp, tag=tag)
        self._entries.setdefault(dst, []).append(entry)
        self.unflushed_bytes += nbytes
        self.total_logged_bytes += nbytes
        self.total_logged_messages += 1
        return entry

    # -- queries --------------------------------------------------------------
    def entries_for(self, dst: int) -> List[LogEntry]:
        """Retained entries for destination ``dst`` (oldest first)."""
        return list(self._entries.get(dst, []))

    def bytes_for(self, dst: int) -> int:
        """Retained bytes for destination ``dst``."""
        return sum(e.nbytes for e in self._entries.get(dst, []))

    def messages_for(self, dst: int) -> int:
        """Retained entry count for destination ``dst``."""
        return len(self._entries.get(dst, []))

    def destinations(self) -> List[int]:
        """Destinations with at least one retained entry."""
        return [dst for dst, entries in self._entries.items() if entries]

    @property
    def retained_bytes(self) -> int:
        """Total bytes currently retained across all destinations."""
        return sum(e.nbytes for entries in self._entries.values() for e in entries)

    def bytes_by_destination(self) -> Dict[int, int]:
        """Mapping of destination → retained bytes."""
        return {dst: self.bytes_for(dst) for dst in self.destinations()}

    def messages_by_destination(self) -> Dict[int, int]:
        """Mapping of destination → retained entry count."""
        return {dst: self.messages_for(dst) for dst in self.destinations()}

    def __iter__(self) -> Iterator[LogEntry]:
        for entries in self._entries.values():
            yield from entries

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    # -- flush / GC ------------------------------------------------------------
    def mark_flushed(self) -> int:
        """Mark all appended data as persisted; returns the bytes that needed flushing."""
        flushed = self.unflushed_bytes
        self.unflushed_bytes = 0
        return flushed

    def garbage_collect(self, dst: int, acknowledged_offset: int) -> int:
        """Discard entries for ``dst`` fully covered by ``acknowledged_offset``.

        ``acknowledged_offset`` is the peer's piggybacked ``RR`` value — the
        cumulative bytes the peer had received from us before its latest
        checkpoint.  Entries whose ``end_offset`` does not exceed it can never
        be requested for replay again.  Returns the number of bytes discarded.
        """
        if acknowledged_offset < 0:
            raise ValueError("acknowledged_offset must be non-negative")
        entries = self._entries.get(dst)
        if not entries:
            return 0
        kept: List[LogEntry] = []
        discarded = 0
        for entry in entries:
            if entry.end_offset <= acknowledged_offset:
                discarded += entry.nbytes
            else:
                kept.append(entry)
        self._entries[dst] = kept
        self.gc_bytes += discarded
        return discarded

    def replay_plan(self, dst: int, receiver_rr: int) -> List[LogEntry]:
        """Entries that must be replayed to ``dst`` during a restart.

        ``receiver_rr`` is the peer's recorded received-byte count at *its*
        checkpoint; everything logged beyond that offset must be resent.
        """
        if receiver_rr < 0:
            raise ValueError("receiver_rr must be non-negative")
        return [e for e in self._entries.get(dst, []) if e.end_offset > receiver_rr]

    def rollback_to(self, ss_at_checkpoint: Dict[int, int]) -> int:
        """Restore the log to its state at a checkpoint (live failure rollback).

        ``ss_at_checkpoint`` maps destination → the channel's cumulative
        sent-byte counter at the checkpoint being rolled back to.  Entries
        beyond that offset were appended by work that is about to be
        re-executed (re-execution will re-append them); entries at or below
        it were flushed with the checkpoint and stay.  Destinations absent
        from the map had no sends at checkpoint time, so their entries are
        dropped entirely.  The unflushed counter resets (the checkpoint
        flushed everything it kept).  Returns the number of bytes discarded.
        """
        discarded = 0
        for dst, entries in list(self._entries.items()):
            limit = ss_at_checkpoint.get(dst, 0)
            kept = [e for e in entries if e.end_offset <= limit]
            discarded += sum(e.nbytes for e in entries) - sum(e.nbytes for e in kept)
            self._entries[dst] = kept
        self.unflushed_bytes = 0
        return discarded

    def clear(self) -> None:
        """Drop the whole log (used when a checkpoint supersedes everything)."""
        self._entries.clear()
        self.unflushed_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SenderLog rank={self.rank} retained={self.retained_bytes}B "
            f"unflushed={self.unflushed_bytes}B gc={self.gc_bytes}B>"
        )
