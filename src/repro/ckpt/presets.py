"""Convenience constructors for the paper's evaluated configurations.

The evaluation compares four grouping methods (Section 5.1) plus MPICH-VCL
(Section 5.3):

* ``NORM`` — one group only: the original LAM/MPI global coordinated
  checkpoint,
* ``GP1``  — one process per group: uncoordinated checkpointing with message
  logging,
* ``GP4``  — four groups of sequential ranks: an ad-hoc grouping,
* ``GP``   — groups obtained by analysing MPI traces (Algorithm 2),
* ``VCL``  — MPICH-VCL's non-blocking coordinated protocol.

All five return a protocol family object ready to be passed to
:class:`~repro.mpi.runtime.MpiRuntime`.
"""

from __future__ import annotations

from typing import Optional

from repro.ckpt.base import ProtocolConfig
from repro.ckpt.blcr import BlcrModel
from repro.ckpt.chandy_lamport import VclConfig, VclProtocolFamily
from repro.core.formation import form_groups
from repro.core.groups import GroupSet
from repro.core.protocol import GroupProtocolFamily
from repro.mpi.trace import TraceLog


def norm_family(
    n_ranks: int,
    config: Optional[ProtocolConfig] = None,
    blcr: Optional[BlcrModel] = None,
    name: Optional[str] = None,
) -> GroupProtocolFamily:
    """NORM: the original LAM/MPI global coordinated checkpoint (one group)."""
    return GroupProtocolFamily(
        GroupSet.single(n_ranks), config=config, blcr=blcr, name=name or "NORM"
    )


def gp1_family(
    n_ranks: int,
    config: Optional[ProtocolConfig] = None,
    blcr: Optional[BlcrModel] = None,
    name: Optional[str] = None,
) -> GroupProtocolFamily:
    """GP1: one process per group — uncoordinated checkpointing with message logging."""
    return GroupProtocolFamily(
        GroupSet.singletons(n_ranks), config=config, blcr=blcr, name=name or "GP1"
    )


def gp4_family(
    n_ranks: int,
    config: Optional[ProtocolConfig] = None,
    blcr: Optional[BlcrModel] = None,
    name: Optional[str] = None,
) -> GroupProtocolFamily:
    """GP4: four groups of sequential process ranks — an ad-hoc grouping."""
    return GroupProtocolFamily(
        GroupSet.contiguous(n_ranks, 4), config=config, blcr=blcr, name=name or "GP4"
    )


def gp_family(
    groups: GroupSet,
    config: Optional[ProtocolConfig] = None,
    blcr: Optional[BlcrModel] = None,
    name: Optional[str] = None,
) -> GroupProtocolFamily:
    """GP: trace-assisted grouping (pass the GroupSet produced by Algorithm 2)."""
    return GroupProtocolFamily(groups, config=config, blcr=blcr, name=name or "GP")


def gp_family_from_trace(
    trace: TraceLog,
    n_ranks: int,
    max_group_size: Optional[int] = None,
    config: Optional[ProtocolConfig] = None,
    blcr: Optional[BlcrModel] = None,
    name: Optional[str] = None,
) -> GroupProtocolFamily:
    """GP: run Algorithm 2 on ``trace`` and build the family in one step."""
    formation = form_groups(trace, max_group_size=max_group_size, n_ranks=n_ranks)
    return gp_family(formation.groupset, config=config, blcr=blcr, name=name)


def vcl_family(
    config: Optional[ProtocolConfig] = None,
    vcl_config: Optional[VclConfig] = None,
    blcr: Optional[BlcrModel] = None,
    name: Optional[str] = None,
) -> VclProtocolFamily:
    """VCL: MPICH-VCL's non-blocking coordinated (Chandy–Lamport) protocol."""
    return VclProtocolFamily(config=config, vcl_config=vcl_config, blcr=blcr,
                             name=name or "VCL")
