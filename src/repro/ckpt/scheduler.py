"""Checkpoint request scheduling.

``mpirun`` (modelled by :class:`repro.core.coordinator.CheckpointCoordinator`)
receives checkpoint requests "from the system or the user" and propagates them
to the MPI processes.  A :class:`CheckpointSchedule` describes *when* those
requests arrive: a one-shot request at a fixed time (the paper's t = 60 s
experiments) or periodic requests at a fixed interval (the Figure 10 and
Figure 13 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.policy import StoragePolicy


@dataclass(frozen=True)
class CheckpointSchedule:
    """A (possibly unbounded) series of checkpoint request times.

    Parameters
    ----------
    times:
        Explicit request times (seconds since application start).
    interval_s:
        If set, additional requests are generated every ``interval_s``
        starting at ``first_at`` (defaults to ``interval_s``), until the
        application finishes or ``max_checkpoints`` is reached.
    first_at:
        Time of the first periodic request.
    max_checkpoints:
        Upper bound on the number of periodic requests (None = unbounded).
    """

    times: tuple = field(default_factory=tuple)
    interval_s: Optional[float] = None
    first_at: Optional[float] = None
    max_checkpoints: Optional[int] = None

    def __post_init__(self) -> None:
        for t in self.times:
            if t < 0:
                raise ValueError("checkpoint times must be non-negative")
        if self.interval_s is not None and self.interval_s <= 0:
            raise ValueError("interval_s must be positive (or None)")
        if self.first_at is not None and self.first_at < 0:
            raise ValueError("first_at must be non-negative")
        if self.max_checkpoints is not None and self.max_checkpoints < 0:
            raise ValueError("max_checkpoints must be non-negative")

    @property
    def is_periodic(self) -> bool:
        """True if this schedule generates requests at a fixed interval."""
        return self.interval_s is not None

    def request_times(self, horizon_s: float) -> List[float]:
        """All request times strictly before ``horizon_s``, sorted."""
        if horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")
        out = [t for t in self.times if t < horizon_s]
        if self.interval_s is not None:
            start = self.first_at if self.first_at is not None else self.interval_s
            t = start
            count = 0
            while t < horizon_s:
                if self.max_checkpoints is not None and count >= self.max_checkpoints:
                    break
                out.append(t)
                count += 1
                t += self.interval_s
        return sorted(out)

    def iterate(self) -> Iterator[float]:
        """Unbounded iterator over request times (explicit ones first)."""
        for t in sorted(self.times):
            yield t
        if self.interval_s is not None:
            start = self.first_at if self.first_at is not None else self.interval_s
            t = start
            count = 0
            while self.max_checkpoints is None or count < self.max_checkpoints:
                yield t
                count += 1
                t += self.interval_s


def one_shot(at_s: float) -> CheckpointSchedule:
    """A single checkpoint request at ``at_s`` (the paper's t = 60 s scenario)."""
    if at_s < 0:
        raise ValueError("at_s must be non-negative")
    return CheckpointSchedule(times=(at_s,))


def periodic(
    interval_s: float,
    first_at: Optional[float] = None,
    max_checkpoints: Optional[int] = None,
) -> CheckpointSchedule:
    """Checkpoint requests every ``interval_s`` seconds (Figures 10 and 13)."""
    return CheckpointSchedule(interval_s=interval_s, first_at=first_at, max_checkpoints=max_checkpoints)


def no_checkpoints() -> CheckpointSchedule:
    """The interval-0 configuration of Figure 10: never checkpoint."""
    return CheckpointSchedule()


def tier_levels(policy: "StoragePolicy", ckpt_id: int) -> Tuple[str, ...]:
    """Storage levels checkpoint ``ckpt_id`` is written to under ``policy``.

    FTI-style level scheduling: every checkpoint lands on the policy's
    synchronous base levels that are due, with L2/L3 promoted every
    ``l2_every`` / ``l3_every``-th wave (checkpoint ids are 0-based and
    global per wave, so every member of a group promotes the same wave —
    a partner replica of half a group would be useless at restart).

    The returned tuple is ordered cheapest-first and always non-empty:
    a wave that is due for *no* configured level still lands on the
    policy's cheapest synchronous level, because a checkpoint with no
    durable copy could never be restarted from.
    """
    if ckpt_id < 0:
        raise ValueError("ckpt_id must be non-negative")
    ordinal = ckpt_id + 1  # 1-based wave number, "every k-th" counts from the first
    out: List[str] = []
    if policy.uses_l1:
        out.append("L1")
    if policy.uses_l2 and ordinal % policy.l2_every == 0:
        out.append("L2")
    if policy.uses_l3 and ordinal % policy.l3_every == 0:
        out.append("L3")
    if not any(level in out for level in ("L1", "L3")):
        # No synchronous home this wave (L3-only policy with l3_every > 1):
        # force the base level so the image is durable somewhere.
        out.append("L3")
        out.sort(key=("L1", "L2", "L3").index)
    return tuple(out)


def schedule_from_intervals(intervals: Sequence[float]) -> List[CheckpointSchedule]:
    """Map the paper's interval sweep (0 means "no checkpoints") onto schedules."""
    out: List[CheckpointSchedule] = []
    for interval in intervals:
        if interval < 0:
            raise ValueError("intervals must be non-negative")
        out.append(no_checkpoints() if interval == 0 else periodic(interval))
    return out
