"""BLCR-like system-level checkpointer model.

The paper uses Berkeley Lab Checkpoint/Restart (BLCR 0.4.2) underneath
LAM/MPI: when a process checkpoints, its entire memory image is written to
storage; on restart the image is read back and the process re-created.  From
the protocol's point of view the relevant costs are

* a small quiesce/fork overhead before bytes start flowing,
* the image transfer itself (image size ÷ storage bandwidth, including any
  contention on shared checkpoint servers), and
* a restore cost on restart (image read + process re-creation).

The image size equals the application's resident set plus a fixed overhead
for the runtime (text, stacks, MPI library buffers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.storage import StorageSystem
    from repro.sim.engine import Simulator
    from repro.sim.primitives import Event


@dataclass(frozen=True)
class BlcrModel:
    """Cost model of the system-level checkpointer.

    Parameters
    ----------
    runtime_overhead_bytes:
        Bytes added to every image on top of the application's data
        (program text, stacks, MPI library state).
    dump_fork_s:
        Time to quiesce threads and set up the dump before I/O starts.
    restore_exec_s:
        Time to re-create the process (fork/exec, map segments) on restart,
        excluding the image read itself.
    """

    runtime_overhead_bytes: int = 16 * 1024 * 1024
    dump_fork_s: float = 0.05
    restore_exec_s: float = 0.20

    def __post_init__(self) -> None:
        if self.runtime_overhead_bytes < 0:
            raise ValueError("runtime_overhead_bytes must be non-negative")
        if self.dump_fork_s < 0 or self.restore_exec_s < 0:
            raise ValueError("timing constants must be non-negative")

    def image_bytes(self, app_memory_bytes: int) -> int:
        """Checkpoint image size for an application using ``app_memory_bytes``."""
        if app_memory_bytes < 0:
            raise ValueError("app_memory_bytes must be non-negative")
        return app_memory_bytes + self.runtime_overhead_bytes

    # -- simulated operations ------------------------------------------------
    def dump(
        self,
        sim: "Simulator",
        storage: "StorageSystem",
        node: int,
        app_memory_bytes: int,
    ) -> Generator["Event", None, float]:
        """Write one checkpoint image; returns the elapsed time."""
        start = sim.now
        yield sim.timeout(self.dump_fork_s)
        size = self.image_bytes(app_memory_bytes)
        yield from storage.write(node, size)
        return sim.now - start

    def restore(
        self,
        sim: "Simulator",
        storage: "StorageSystem",
        node: int,
        app_memory_bytes: int,
    ) -> Generator["Event", None, float]:
        """Read one checkpoint image back and re-create the process."""
        start = sim.now
        size = self.image_bytes(app_memory_bytes)
        yield from storage.read(node, size)
        yield sim.timeout(self.restore_exec_s)
        return sim.now - start
