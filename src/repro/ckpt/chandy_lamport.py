"""MPICH-VCL — non-blocking coordinated checkpointing (Chandy–Lamport).

MPICH-VCL follows Chandy and Lamport's distributed-snapshot algorithm: on a
checkpoint request every process records its state, sends a *marker* on every
channel, and logs incoming messages on a channel until that channel's marker
arrives.  In principle the application keeps running; in practice the paper's
Section 2.2 shows the protocol *becomes blocking* at scale because

* the process may not send application messages between receiving the request
  and completing its own marker broadcast,
* every process must handle a marker from (and perform channel-memory work
  for) every other process — an O(n) per-process, O(n²) system-wide cost, and
* the checkpoint images go to a small pool of shared checkpoint servers, so
  the image dumps serialise and the frozen processes stall their neighbours,
  which in a communication-non-stop application (NPB CG) cascades globally.

The per-channel cost constant below is a calibration of MPICH-V's
per-connection channel/marker handling (the MPICH-V authors themselves note
the protocols "may add significant message overheads"); it is the knob that
reproduces the growth in Figures 13/14 and the widening gaps of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple, TYPE_CHECKING

from repro.ckpt.base import (
    STAGE_CHECKPOINT,
    STAGE_COORDINATION,
    STAGE_FINALIZE,
    STAGE_LOCK_MPI,
    CheckpointRecord,
    CheckpointRequest,
    CheckpointSnapshot,
    ProtocolConfig,
    ProtocolFamily,
    RankProtocol,
)
from repro.ckpt.blcr import BlcrModel
from repro.mpi.messages import MessageKind
from repro.mpi.runtime import CONTROL_TAG_BASE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.messages import Message
    from repro.mpi.runtime import MpiRuntime, RankContext
    from repro.sim.primitives import Event


_VCL_TAG_STRIDE = 4
_TAG_MARKER = 1


def _marker_tag(ckpt_id: int) -> int:
    return CONTROL_TAG_BASE + 500_000 + ckpt_id * _VCL_TAG_STRIDE + _TAG_MARKER


@dataclass(frozen=True)
class VclConfig:
    """MPICH-VCL-specific calibration constants.

    Parameters
    ----------
    per_channel_marker_s:
        Channel-memory/marker handling work per peer channel during a
        checkpoint (the O(n) per-process term).
    marker_stall_probability / marker_stall_s:
        Probability and mean duration of a TCP-level stall while handling one
        channel (produces the variability seen at scale).
    request_fanout_delay_s:
        Per-rank delay of the dispatcher contacting the processes (the
        request wave is not instantaneous).
    """

    per_channel_marker_s: float = 0.030
    marker_stall_probability: float = 0.02
    marker_stall_s: float = 0.8
    request_fanout_delay_s: float = 0.004

    def __post_init__(self) -> None:
        if self.per_channel_marker_s < 0 or self.marker_stall_s < 0:
            raise ValueError("durations must be non-negative")
        if not 0.0 <= self.marker_stall_probability <= 1.0:
            raise ValueError("marker_stall_probability must be in [0, 1]")
        if self.request_fanout_delay_s < 0:
            raise ValueError("request_fanout_delay_s must be non-negative")


class VclRankProtocol(RankProtocol):
    """Per-rank instance of the MPICH-VCL protocol."""

    name = "vcl"

    def __init__(self, family: "VclProtocolFamily", ctx: "RankContext", runtime: "MpiRuntime") -> None:
        super().__init__(family, ctx, runtime)
        self.config: ProtocolConfig = family.config
        self.vcl: VclConfig = family.vcl_config
        self.blcr: BlcrModel = family.blcr
        #: bytes of application data that arrived while a checkpoint was in
        #: progress (the in-transit messages VCL logs to channel memories)
        self.in_transit_logged_bytes = 0
        self._in_checkpoint_window = False

    # -- hooks -----------------------------------------------------------------
    def on_send(self, dst: int, nbytes: int, tag: int) -> Tuple[float, Optional[Dict[str, Any]]]:
        """VCL adds no steady-state sender overhead (no sender-based logging)."""
        return 0.0, None

    def on_arrival(self, message: "Message") -> None:
        """Count application data arriving during the checkpoint window (channel logging)."""
        if self._in_checkpoint_window and message.is_app:
            self.in_transit_logged_bytes += message.nbytes

    # -- checkpoint ----------------------------------------------------------------
    def checkpoint(self, request: CheckpointRequest) -> Generator["Event", Any, CheckpointRecord]:
        """Take one Chandy–Lamport style checkpoint."""
        runtime = self.runtime
        ctx = self.ctx
        rng = runtime.rng
        participants = tuple(sorted(request.participants))
        others = [p for p in participants if p != ctx.rank]
        stages: Dict[str, float] = {}
        start = runtime.now
        self._in_checkpoint_window = True

        # ----- local quiesce (the dispatcher wave delay elapsed before visibility) --
        t0 = runtime.now
        if self.config.lock_mpi_s > 0:
            yield runtime.sim.timeout(self.config.lock_mpi_s)
        stages[STAGE_LOCK_MPI] = runtime.now - t0

        # ----- marker broadcast + marker collection + channel work ----------------
        t0 = runtime.now
        tag = _marker_tag(request.ckpt_id)
        for peer in others:
            yield from runtime.control_send(ctx, peer, tag=tag, kind=MessageKind.MARKER)
        channel_work = 0.0
        for _ in others:
            channel_work += self.vcl.per_channel_marker_s
            if self.vcl.marker_stall_probability > 0 and rng.bernoulli(
                f"vcl-stall:rank{ctx.rank}", self.vcl.marker_stall_probability
            ):
                channel_work += rng.exponential(
                    f"vcl-stall-len:rank{ctx.rank}", self.vcl.marker_stall_s
                )
        if channel_work > 0:
            yield runtime.sim.timeout(channel_work)
        for _ in others:
            yield from runtime.control_recv(ctx, tag=tag, kind=MessageKind.MARKER)
        stages[STAGE_COORDINATION] = runtime.now - t0

        # ----- image dump (the process is frozen while dumping) --------------------
        t0 = runtime.now
        image_bytes = self.blcr.image_bytes(ctx.memory_bytes)
        if self.blcr.dump_fork_s > 0:
            yield runtime.sim.timeout(self.blcr.dump_fork_s)
        tiers = yield from runtime.checkpoint_image_write(ctx, request.ckpt_id, image_bytes)
        resume = runtime.capture_resume(ctx)
        if resume is not None:
            resume.protocol_state = {"in_transit": self.in_transit_logged_bytes}
        self._record_snapshot(CheckpointSnapshot(
            rank=ctx.rank,
            ckpt_id=request.ckpt_id,
            time=runtime.now,
            group_id=0,
            group_members=participants,
            ss=ctx.account.snapshot_sent(),
            rr=ctx.account.snapshot_received(),
            image_bytes=image_bytes,
            resume=resume,
            tiers=tiers,
        ))
        stages[STAGE_CHECKPOINT] = runtime.now - t0

        # ----- finalize -----------------------------------------------------------
        t0 = runtime.now
        if self.config.finalize_s > 0:
            yield runtime.sim.timeout(self.config.finalize_s)
        stages[STAGE_FINALIZE] = runtime.now - t0
        self._in_checkpoint_window = False

        return CheckpointRecord(
            rank=ctx.rank,
            ckpt_id=request.ckpt_id,
            group_id=request.group_id,
            start=start,
            end=runtime.now,
            stages=stages,
            image_bytes=image_bytes,
            log_bytes_flushed=0,
            group_size=len(participants),
        )

    def rollback_to(self, snapshot: Optional[CheckpointSnapshot]) -> None:
        """Restore protocol state to ``snapshot`` (None = back to process start).

        VCL checkpoints are global, so a failure rolls every rank back; there
        is no sender log to truncate — only the in-transit counter and the
        checkpoint-window flag are restored.
        """
        self._in_checkpoint_window = False
        if snapshot is None:
            self.in_transit_logged_bytes = 0
            self._restore_snapshot(None)
            return
        resume = snapshot.resume
        if resume is None:
            raise ValueError(
                f"snapshot {snapshot.ckpt_id} of rank {snapshot.rank} carries no "
                "resume point; was the failure injector attached before the run?"
            )
        self.in_transit_logged_bytes = resume.protocol_state.get("in_transit", 0)
        self._restore_snapshot(snapshot)


class VclProtocolFamily(ProtocolFamily):
    """Factory for :class:`VclRankProtocol` instances.

    Every checkpoint is global (all running ranks coordinate), as in
    MPICH-VCL, where the protocol is a full Chandy–Lamport wave.
    """

    name = "VCL"

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        vcl_config: Optional[VclConfig] = None,
        blcr: Optional[BlcrModel] = None,
        name: str = "VCL",
    ) -> None:
        super().__init__(config)
        self.vcl_config = vcl_config if vcl_config is not None else VclConfig()
        self.blcr = blcr if blcr is not None else BlcrModel()
        self.name = name

    def create(self, ctx: "RankContext", runtime: "MpiRuntime") -> VclRankProtocol:
        """Instantiate the per-rank protocol object."""
        return VclRankProtocol(self, ctx, runtime)

    def participants_for(self, rank: int, running_ranks: Tuple[int, ...]) -> Tuple[int, ...]:
        """Every running rank coordinates (global snapshot)."""
        return tuple(sorted(set(running_ranks) | {rank}))

    def group_id_of(self, rank: int) -> int:
        """VCL has a single global 'group'."""
        return 0

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return "MPICH-VCL non-blocking coordinated checkpointing (Chandy–Lamport)"
