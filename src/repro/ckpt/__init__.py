"""Checkpoint/restart substrates and baseline protocols.

Contents:

* :mod:`repro.ckpt.base` — stage names, per-checkpoint / per-restart records,
  the protocol interfaces, and protocol configuration,
* :mod:`repro.ckpt.blcr` — a BLCR-like system-level checkpointer model
  (image dump/restore cost),
* :mod:`repro.ckpt.logstore` — the sender-based message log used for
  inter-group (and uncoordinated) logging,
* :mod:`repro.ckpt.chandy_lamport` — the MPICH-VCL-style non-blocking
  coordinated protocol,
* :mod:`repro.ckpt.scheduler` — checkpoint request scheduling (one-shot and
  fixed-interval),
* :mod:`repro.ckpt.presets` — convenience constructors for the paper's four
  configurations (NORM, GP, GP1, GP4) and VCL.
"""

from repro.ckpt.base import (
    STAGE_LOCK_MPI,
    STAGE_COORDINATION,
    STAGE_CHECKPOINT,
    STAGE_FINALIZE,
    STAGES,
    CheckpointRequest,
    CheckpointRecord,
    RestartRecord,
    CheckpointSnapshot,
    ResumePoint,
    ProtocolConfig,
    RankProtocol,
    ProtocolFamily,
)
from repro.ckpt.blcr import BlcrModel
from repro.ckpt.logstore import SenderLog, LogEntry
from repro.ckpt.scheduler import CheckpointSchedule, one_shot, periodic

__all__ = [
    "STAGE_LOCK_MPI",
    "STAGE_COORDINATION",
    "STAGE_CHECKPOINT",
    "STAGE_FINALIZE",
    "STAGES",
    "CheckpointRequest",
    "CheckpointRecord",
    "RestartRecord",
    "CheckpointSnapshot",
    "ResumePoint",
    "ProtocolConfig",
    "RankProtocol",
    "ProtocolFamily",
    "BlcrModel",
    "SenderLog",
    "LogEntry",
    "CheckpointSchedule",
    "one_shot",
    "periodic",
]
