"""Recovery orchestration subsystem.

Owns the failure lifecycle end to end: concurrent per-group recoveries for
disjoint failures, abort-and-restart when a failure lands during an in-flight
recovery, and topology-aware restart-on-spare placement.  See
:class:`RecoveryManager` for the scheduling rules and
:class:`SparePool` for placement.
"""

from repro.recovery.manager import RecoveryManager
from repro.recovery.spare import SparePlacement, SparePool

__all__ = ["RecoveryManager", "SparePlacement", "SparePool"]
