"""Recovery orchestration: the failure lifecycle owner.

PR 3's injector handled one failure at a time: kill, wait the recovery out,
take the next event.  That serialisation hides the paper's central claim —
*independent groups recover independently* — and cannot express the two
situations long-horizon runs hit constantly:

* two failures striking **disjoint** checkpoint groups should recover
  **concurrently** (the rest of the machine keeps computing either way), and
* a failure landing **during** an in-flight recovery of the same group must
  abort that recovery and restart it from the new rollback target.

:class:`RecoveryManager` owns this lifecycle.  Failure events are *submitted*
(never awaited) by the :class:`~repro.cluster.failure.FailureInjector`; the
manager kills the victims, computes the rollback scope, and decides:

``merge``
    The scope overlaps an in-flight (or queued) recovery: that recovery is
    aborted — its restart/replay coroutines are interrupted, in-flight
    replayed messages die by rollback-epoch mismatch — and one merged
    recovery restarts the union scope from its (possibly older) common
    checkpoint.  Channel accounting stays exact because every rollback
    restores the counters wholesale from the target's resume point.

``serialize``
    The scope is disjoint but *channel-coupled* to an active recovery (some
    rank in one scope has exchanged data with a rank in the other — their
    sender logs / skip accounting interlock).  The failure queues and starts
    the moment the conflicting recovery drains.

``concurrent``
    Disjoint and channel-independent: a second
    :class:`~repro.core.restart.LiveRecovery` runs alongside the first, and
    the measured recovery windows overlap.

Victims are placed through an optional :class:`~repro.recovery.spare.
SparePool` (topology-aware, degrading to in-place reboot on exhaustion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.failure import FailureEvent
    from repro.core.restart import LiveRecovery
    from repro.mpi.runtime import MpiRuntime
    from repro.recovery.spare import SparePool
    from repro.sim.engine import SimProcess


@dataclass
class _Pending:
    """A failure whose recovery is queued behind a channel-coupled one."""

    event: "FailureEvent"
    victims: Set[int]
    scope: Set[int]
    attempts: int = 0
    #: time of the earliest failure this entry covers (queue waits and
    #: superseded attempts count toward the measured recovery time)
    origin_time: float = 0.0


@dataclass
class _Active:
    """One in-flight recovery."""

    event: "FailureEvent"
    victims: Set[int]
    scope: Set[int]
    recovery: "LiveRecovery"
    proc: "SimProcess"
    attempts: int = 0
    origin_time: float = 0.0


class RecoveryManager:
    """Admits failures, schedules (possibly concurrent) group recoveries.

    Parameters
    ----------
    runtime:
        The MPI runtime whose ranks fail and recover.
    spare_pool:
        Optional replacement-node pool; None restarts every victim in place.
    detection_delay_s / barrier_cost_s:
        Forwarded to each :class:`LiveRecovery`.
    reboot_delay_s:
        Reboot time a crashed node needs before an *in-place* restart can
        read its image (spare placements skip it; 0 keeps the pre-spare
        behaviour of instantly restartable nodes).
    elastic / workload:
        With ``elastic=True`` and a partitionable workload attached, a
        failure whose victims cannot all be replaced from the spare pool is
        handled by :class:`~repro.core.restart.ElasticRestart`: the job
        *shrinks* onto the survivors (dead ranks' work units redistributed,
        their images shipped to the adopters) instead of waiting out an
        in-place node reboot.
    """

    def __init__(
        self,
        runtime: "MpiRuntime",
        spare_pool: Optional["SparePool"] = None,
        detection_delay_s: float = 0.25,
        barrier_cost_s: float = 0.02,
        reboot_delay_s: float = 0.0,
        elastic: bool = False,
        workload: Optional[object] = None,
    ) -> None:
        if detection_delay_s < 0:
            raise ValueError("detection_delay_s must be non-negative")
        if reboot_delay_s < 0:
            raise ValueError("reboot_delay_s must be non-negative")
        if elastic and workload is None:
            workload = runtime.workload
        if elastic and workload is None:
            raise ValueError("elastic mode needs a workload (pass one or set "
                             "runtime.workload)")
        self.runtime = runtime
        self.spare_pool = spare_pool
        self.detection_delay_s = detection_delay_s
        self.barrier_cost_s = barrier_cost_s
        self.reboot_delay_s = reboot_delay_s
        self.elastic = elastic
        self.workload = workload
        self.active: List[_Active] = []
        self.queue: List[_Pending] = []
        self._drain_waiters: List[Event] = []
        # -- statistics ------------------------------------------------------
        self.failures_handled = 0
        self.aborted_recoveries = 0
        self.serialized_conflicts = 0
        self.max_concurrent_recoveries = 0
        self.shrink_restarts = 0
        runtime.attach_failure_source()
        runtime.recovery_manager = self

    # -- failure admission ---------------------------------------------------
    def submit(self, event: "FailureEvent", victims: List[int]) -> None:
        """Handle one node failure: kill the victims, schedule recovery.

        Returns immediately — recovery runs as its own simulation process
        (or queues behind a conflicting one).  Callers that want the PR 3
        serialised behaviour wait on :meth:`drained` instead.
        """
        runtime = self.runtime
        if runtime.aborted is not None:
            return  # the job was already declared unsurvivable
        self.failures_handled += 1
        if runtime.telemetry is not None:
            # live series (harvest adds the end-of-run stats() snapshot under
            # a different prefix, so this never double-counts)
            runtime.telemetry.metrics.counter("recovery.failures.submitted").inc()
        self.node_failed(event.node, disk_lost=event.destroys_disk)
        for rank in victims:
            runtime.kill_rank(rank, cause=event)
        self._admit(event, set(victims), attempts=0, origin_time=event.time)

    def node_failed(self, node: int, disk_lost: bool = False) -> None:
        """Record a node death (also for nodes hosting no ranks).

        The injector reports *every* failure event here, including ones it
        otherwise ignores because no live rank runs on the node: an idle
        spare that dies must leave the pool instead of being handed out as
        a healthy replacement later.  ``disk_lost`` (destructive correlated
        events) additionally invalidates every checkpoint-image copy the
        storage hierarchy held on that node.
        """
        self.runtime.cluster.nodes[node].mark_failed()
        self.runtime.cluster.hierarchy.node_failed(node, disk_lost=disk_lost)
        if self.spare_pool is not None:
            self.spare_pool.node_failed(node)

    def _release_unused_spares(self, active: "_Active") -> None:
        """Return spares an aborted attempt reserved but never migrated onto."""
        if self.spare_pool is None:
            return
        for rank, node in active.recovery.placements.items():
            if self.runtime.ctx(rank).node_id != node:
                self.spare_pool.release(node, rank)

    def _admit(self, event: "FailureEvent", victims: Set[int], attempts: int,
               origin_time: float) -> None:
        from repro.core.restart import rollback_scope

        scope = rollback_scope(self.runtime, sorted(victims))
        # A failure inside a recovering (or queued) scope supersedes that
        # attempt: abort it and recover the union from the new target.
        overlapping = [a for a in self.active if a.scope & scope]
        for act in overlapping:
            act.proc.interrupt("recovery-superseded")
            self._release_unused_spares(act)
            self.active.remove(act)
            victims |= act.victims
            attempts += act.attempts + 1
            origin_time = min(origin_time, act.origin_time)
            self.aborted_recoveries += 1
        queued_overlap = [p for p in self.queue if p.scope & scope]
        for pend in queued_overlap:
            self.queue.remove(pend)
            victims |= pend.victims
            attempts += pend.attempts
            origin_time = min(origin_time, pend.origin_time)
        if overlapping or queued_overlap:
            scope = rollback_scope(self.runtime, sorted(victims))
        if (any(self._channel_coupled(a.scope, scope) for a in self.active)
                or any(self._channel_coupled(p.scope, scope) for p in self.queue)):
            # Disjoint scopes, shared channels: their sender logs / skip
            # accounting interlock, so the recoveries must not interleave.
            self.serialized_conflicts += 1
            self.queue.append(_Pending(event, victims, scope, attempts, origin_time))
            return
        self._start(event, victims, scope, attempts, origin_time)

    def _channel_coupled(self, scope_a: Set[int], scope_b: Set[int]) -> bool:
        """Whether any rank of one scope has a channel into the other.

        Channel accounting is the coupling that matters: replay plans and
        duplicate-send skipping read the *peer's* counters, so two recoveries
        sharing a channel endpoint would race on them.  Scope-disjoint,
        channel-disjoint recoveries touch disjoint accounting state and are
        provably independent.
        """
        runtime = self.runtime
        small, large = sorted((scope_a, scope_b), key=len)
        for rank in small:
            if not runtime.ctx(rank).account.peers().isdisjoint(large):
                return True
        return False

    # -- recovery lifecycle ----------------------------------------------------
    def _start(self, event: "FailureEvent", victims: Set[int],
               scope: Set[int], attempts: int, origin_time: float) -> None:
        from repro.core.restart import ElasticRestart, LiveRecovery

        runtime = self.runtime
        placements: Dict[int, int] = {}
        dead_nodes: Set[int] = set()
        for rank in sorted(victims):
            ctx = runtime.ctx(rank)
            if not runtime.cluster.nodes[ctx.node_id].failed:
                continue  # healthy node (rank merged in from a group rollback)
            spare = (self.spare_pool.acquire(ctx.node_id, rank)
                     if self.spare_pool is not None else None)
            if spare is not None:
                placements[rank] = spare
            else:
                dead_nodes.add(ctx.node_id)
        if self.elastic and self.workload is not None and dead_nodes:
            # Spares exhausted for at least one victim: shrink the job onto
            # the survivors instead of waiting out a node reboot.  Spares the
            # loop above did reserve go straight back to the pool (the shrink
            # retires every victim on a dead node) and the recovery's scope
            # widens to the whole communicator — a global reset means any
            # later failure supersedes this attempt.
            if self.spare_pool is not None:
                for rank, node in placements.items():
                    self.spare_pool.release(node, rank)
            self.shrink_restarts += 1
            scope = set(range(runtime.n_ranks))
            recovery = ElasticRestart(
                runtime, sorted(victims), self.workload,
                detection_delay_s=self.detection_delay_s,
                barrier_cost_s=self.barrier_cost_s,
                node=event.node,
                superseded_attempts=attempts,
                origin_time=origin_time,
                cause=event.cause,
            )
        else:
            recovery = LiveRecovery(
                runtime, sorted(victims),
                detection_delay_s=self.detection_delay_s,
                barrier_cost_s=self.barrier_cost_s,
                node=event.node,
                placements=placements,
                dead_nodes=dead_nodes,
                reboot_delay_s=self.reboot_delay_s,
                superseded_attempts=attempts,
                origin_time=origin_time,
                cause=event.cause,
                spare_pool=self.spare_pool,
            )
        proc = runtime.sim.process(recovery.run(), name="live-recovery")
        runtime._recovery_inflight.append(proc)
        active = _Active(event, victims, scope, recovery, proc, attempts,
                         origin_time)
        self.active.append(active)
        self.max_concurrent_recoveries = max(
            self.max_concurrent_recoveries, len(self.active))
        if runtime.telemetry is not None:
            runtime.telemetry.metrics.gauge("recovery.inflight.peak").max(
                len(self.active))
        proc.callbacks.append(_OnDone(self, active))

    def _on_done(self, active: _Active) -> None:
        if active.proc in self.runtime._recovery_inflight:
            self.runtime._recovery_inflight.remove(active.proc)
        if active in self.active:
            self.active.remove(active)
        report = active.proc._value if active.proc._triggered else None
        if report is not None and not getattr(report, "unsurvivable", False):
            # Spare-pool refill: every dead node whose ranks migrated away
            # now sits empty — it reboots in the background and rejoins the
            # pool, so long failure horizons don't exhaust spares permanently.
            for _rank, old_node, _new_node in getattr(report, "placements", ()):
                self._schedule_refill(old_node)
        self._drain_queue()
        if not self.active and not self.queue and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed(None)

    def _schedule_refill(self, node: int) -> None:
        """Reboot an abandoned dead node and return it to the spare pool."""
        if self.spare_pool is None:
            return
        runtime = self.runtime
        node_obj = runtime.cluster.nodes[node]
        if not node_obj.failed or node_obj.ranks:
            return
        deaths = node_obj.death_count

        def reboot() -> "object":
            if self.reboot_delay_s > 0:
                yield runtime.sim.timeout(self.reboot_delay_s)
            fresh = runtime.cluster.nodes[node]
            if fresh.death_count != deaths or not fresh.failed or fresh.ranks:
                return  # it died again mid-reboot, or was reused meanwhile
            fresh.mark_rebooted()
            self.spare_pool.refill(node)

        runtime.sim.process(reboot(), name="reboot-refill")

    def _drain_queue(self) -> None:
        """Start every queued recovery whose conflicts have cleared (FIFO)."""
        if self.runtime.aborted is not None:
            self.queue = []
            return
        remaining: List[_Pending] = []
        for pending in self.queue:
            blocked = (
                any(self._channel_coupled(a.scope, pending.scope) for a in self.active)
                or any(self._channel_coupled(p.scope, pending.scope) for p in remaining))
            if blocked:
                remaining.append(pending)
            else:
                self._start(pending.event, pending.victims, pending.scope,
                            pending.attempts, pending.origin_time)
        self.queue = remaining

    # -- introspection ---------------------------------------------------------
    def drained(self) -> Event:
        """Event firing once no recovery is active or queued.

        Already-drained managers return an immediately-succeeded event, so
        ``yield manager.drained()`` serialises failure handling exactly like
        the PR 3 injector did.
        """
        ev = Event(self.runtime.sim, name="recoveries-drained")
        if not self.active and not self.queue:
            ev.succeed(None)
        else:
            self._drain_waiters.append(ev)
        return ev

    def stats(self) -> Dict[str, int]:
        """Counters describing how failures were scheduled (for payloads)."""
        out = {
            "failures_handled": self.failures_handled,
            "aborted_recoveries": self.aborted_recoveries,
            "serialized_conflicts": self.serialized_conflicts,
            "max_concurrent_recoveries": self.max_concurrent_recoveries,
            "shrink_restarts": self.shrink_restarts,
        }
        pool = self.spare_pool
        out["spare_migrations"] = len(pool.placements) if pool is not None else 0
        out["spare_exhausted_requests"] = (
            pool.exhausted_requests if pool is not None else 0)
        out["spare_same_switch"] = (
            sum(1 for p in pool.placements if p.same_switch)
            if pool is not None else 0)
        out["spare_refills"] = pool.refilled if pool is not None else 0
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RecoveryManager active={len(self.active)} "
                f"queued={len(self.queue)} handled={self.failures_handled}>")


class _OnDone:
    """Completion callback of one recovery process (picklable-free closure)."""

    __slots__ = ("manager", "active")

    def __init__(self, manager: RecoveryManager, active: _Active) -> None:
        self.manager = manager
        self.active = active

    def __call__(self, _ev: Event) -> None:
        self.manager._on_done(self.active)
