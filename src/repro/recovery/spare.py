"""Spare-node pool for restart-on-spare placement.

Production checkpoint/restart systems (DMTCP at NERSC, SCR) keep a handful of
idle *spare* nodes per job: when a node dies, its processes are relaunched on
a spare instead of waiting for the dead node to reboot.  The pool here models
that policy on top of the simulated cluster:

* spares are healthy nodes hosting no ranks, reserved at pool construction,
* placement is **topology-aware** — a spare on the victim's own edge switch
  is preferred (replay and post-recovery traffic stay within the rack),
  falling back to any spare cluster-wide,
* when the pool is dry the recovery degrades to an in-place restart (the
  dead node reboots first), so a run never gets stuck on exhaustion,
* a spare node that itself fails before being used leaves the pool.

All draws are deterministic (lowest eligible node id first) so multi-failure
runs stay bit-reproducible.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import Cluster


@dataclass(frozen=True)
class SparePlacement:
    """One rank relocated onto a spare node."""

    rank: int
    from_node: int
    to_node: int
    same_switch: bool


class SparePool:
    """Reserved replacement nodes for failed ones.

    Parameters
    ----------
    cluster:
        The instantiated cluster; spares are drawn from nodes that host no
        ranks.  Raises when fewer free nodes exist than requested.
    n_spares:
        How many nodes to reserve.  The *highest*-numbered free nodes are
        taken so the pool never collides with the round-robin rank placement
        growing from node 0.
    """

    def __init__(self, cluster: "Cluster", n_spares: int) -> None:
        if n_spares < 0:
            raise ValueError("n_spares must be non-negative")
        self.cluster = cluster
        free = cluster.free_nodes()
        if n_spares > len(free):
            raise ValueError(
                f"cannot reserve {n_spares} spares: only {len(free)} free nodes "
                f"(n_nodes={cluster.spec.n_nodes}, ranks={cluster.n_ranks})")
        #: unassigned spares, ascending node id (deterministic draws)
        self.available: List[int] = sorted(free)[len(free) - n_spares:]
        self.n_spares = n_spares
        # -- statistics ------------------------------------------------------
        self.placements: List[SparePlacement] = []
        self.exhausted_requests = 0
        self.lost_spares = 0
        self.refilled = 0

    @property
    def remaining(self) -> int:
        """Spares still available."""
        return len(self.available)

    def acquire(self, near_node: int, rank: int) -> Optional[int]:
        """Take a spare for ``rank`` (whose node ``near_node`` died).

        Prefers a spare on the victim's edge switch, falls back to the
        lowest-numbered spare cluster-wide, and returns None when the pool
        is dry (the caller degrades to an in-place restart).
        """
        if not self.available:
            self.exhausted_requests += 1
            return None
        network = self.cluster.network
        chosen = next((n for n in self.available
                       if network.same_switch(near_node, n)), self.available[0])
        self.available.remove(chosen)
        self.placements.append(SparePlacement(
            rank=rank, from_node=near_node, to_node=chosen,
            same_switch=network.same_switch(near_node, chosen)))
        return chosen

    def release(self, node: int, rank: int) -> None:
        """Return an acquired-but-unused spare (its recovery was aborted).

        A recovery attempt superseded by a newer failure may have reserved a
        spare without ever migrating the rank onto it; the replacement node
        is still healthy and idle, so it goes back into the pool (and the
        never-realised placement record is dropped, keeping the migration
        statistics equal to what actually happened).
        """
        for i, placement in enumerate(self.placements):
            if placement.to_node == node and placement.rank == rank:
                del self.placements[i]
                break
        if node not in self.available and not self.cluster.nodes[node].failed:
            bisect.insort(self.available, node)

    def node_failed(self, node: int) -> None:
        """Drop ``node`` from the pool if it was an unused spare (it died)."""
        if node in self.available:
            self.available.remove(node)
            self.lost_spares += 1

    def refill(self, node: int) -> None:
        """A node that finished rebooting rejoins the pool as a spare.

        Called by the recovery manager once a victim node — abandoned because
        its ranks migrated onto spares — completes its background reboot.
        Without refill, every migration shrinks the pool permanently and a
        long Poisson-kill horizon ends up all in-place reboots.
        """
        if node in self.available:
            return
        if self.cluster.nodes[node].failed or self.cluster.nodes[node].ranks:
            return
        bisect.insort(self.available, node)
        self.refilled += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SparePool {self.remaining}/{self.n_spares} free, "
                f"{len(self.placements)} placed, "
                f"{self.exhausted_requests} exhausted>")
