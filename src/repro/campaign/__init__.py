"""Campaign engine: persistent, parallel experiment sweeps.

Every figure of the paper is the product of a sweep (method × workload ×
rank-count × seed); this subsystem turns those sweeps into *campaigns*:

* :mod:`repro.campaign.grid` — declarative parameter grids that expand into
  :class:`~repro.experiments.config.ScenarioConfig` sets (cartesian products
  with per-axis-value overrides),
* :mod:`repro.campaign.store` — a persistent result store on stdlib
  ``sqlite3``, keyed by a stable content-hash of the scenario config and
  tracking status (``pending``/``running``/``done``/``failed``), the metrics
  payload, timing and error tracebacks,
* :mod:`repro.campaign.executor` — a ``ProcessPoolExecutor``-based runner
  whose workers claim open experiments from the store, execute them and write
  results back; supports ``resume()`` after crashes and serves ``done`` rows
  straight from the store without re-running anything,
* :mod:`repro.campaign.results` — the stored-metrics result object that
  mirrors :class:`~repro.experiments.runner.ScenarioResult`'s metric API,
* :mod:`repro.campaign.export` — turn stored rows into the
  :mod:`repro.analysis.reporting` ``Series``/``Table`` objects and CSV,
* :mod:`repro.campaign.progress` — a read-only observatory over a store:
  per-status counts, completion rates, ETA from completed-row durations,
  lease health and failure summaries,
* :mod:`repro.campaign.dashboard` — renders a progress snapshot as
  terminal tables or a self-contained HTML status page
  (``python -m repro.campaign.dashboard --db sweep.sqlite --html out.html``),
* :mod:`repro.campaign.cache` — a generation-stamped response cache: every
  aggregate is memoised against :meth:`CampaignStore.generation`, so N
  concurrent readers of a quiet store cost one aggregation pass,
* :mod:`repro.campaign.metrics_export` — Prometheus text exposition
  (format 0.0.4) builders plus the minimal parser CI validates scrapes with,
* :mod:`repro.campaign.server` — the campaign observatory: a stdlib-only
  threaded HTTP service serving ``/api/progress``, ``/api/results``,
  ``/api/tables/*``, ``/api/bench``, ``/metrics`` and the live HTML board
  (``python -m repro.campaign.server --db sweep.sqlite --port 8032``).

Workflow (PyExperimenter-style)::

    from repro.campaign import Campaign, CampaignStore, ParameterGrid

    grid = ParameterGrid(
        axes={"n_ranks": (16, 32), "method": ("GP", "NORM"), "seed": (1, 2)},
        base={"workload": "hpl", "schedule": one_shot(2.0)},
    )
    campaign = Campaign(CampaignStore("sweep.sqlite"), n_workers=4)
    results = campaign.run(grid.expand())   # parallel; resumable; cached
"""

from repro.campaign.executor import (
    Campaign,
    CampaignError,
    campaign_worker,
    drain_store,
    execute_scenario,
    get_default_campaign,
    reset_default_campaign,
    set_default_campaign,
)
from repro.campaign.cache import CachedEntry, GenerationCache
from repro.campaign.export import (
    average_over_seeds,
    results_to_csv,
    results_to_csv_text,
    results_to_series,
    results_to_table,
    store_to_csv,
    stored_results,
    summary_table,
)
from repro.campaign.dashboard import render_progress_html, render_progress_text
from repro.campaign.grid import ParameterGrid
from repro.campaign.progress import (
    CampaignProgress,
    campaign_progress,
    progress_tables,
)
from repro.campaign.results import StoredResult, metrics_payload
from repro.campaign.store import (
    STATUSES,
    CampaignStore,
    ExperimentRow,
    config_from_dict,
    config_to_dict,
    scenario_key,
)

__all__ = [
    "CachedEntry",
    "Campaign",
    "CampaignError",
    "CampaignProgress",
    "GenerationCache",
    "average_over_seeds",
    "campaign_progress",
    "CampaignStore",
    "ExperimentRow",
    "ParameterGrid",
    "STATUSES",
    "StoredResult",
    "campaign_worker",
    "config_from_dict",
    "config_to_dict",
    "drain_store",
    "execute_scenario",
    "reset_default_campaign",
    "get_default_campaign",
    "metrics_payload",
    "progress_tables",
    "render_progress_html",
    "render_progress_text",
    "results_to_csv",
    "results_to_csv_text",
    "results_to_series",
    "results_to_table",
    "scenario_key",
    "set_default_campaign",
    "store_to_csv",
    "stored_results",
    "summary_table",
]
