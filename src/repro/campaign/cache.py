"""Generation-stamped response cache for the campaign observatory.

The read-side service's whole economy rests on one observation: every
expensive aggregate (progress snapshots, experiment tables recomputed from
stored payloads, Prometheus scrapes) is a pure function of the store's
contents.  :meth:`CampaignStore.generation` distils those contents into a
cheap stamp — an index-speed probe, no payload deserialisation — so the
cache can answer "is this aggregate still current?" without recomputing it.

:class:`GenerationCache` keys every entry on ``(key, generation)``:

* equal stamp → the cached value (and its ETag) is served from memory —
  a **hit**; N concurrent readers cost one aggregation,
* changed stamp → the entry is recomputed once and re-stamped — a **miss**.

ETags derive from ``(key, generation)`` too, so HTTP conditional requests
(``If-None-Match``) collapse to 304s exactly when the cache hits.  The
``server.cache.hit`` / ``server.cache.miss`` counter pair on the service's
:class:`~repro.obs.metrics.MetricsRegistry` makes the economy observable
(and assertable: two back-to-back reads of the same endpoint must cost at
most one miss).

All store access funnels through the cache's one lock: sqlite connections
are not thread-safe, and serialising the *aggregation* (never the workers'
writes — readers in WAL mode do not block writers) is precisely the design:
however many observatory readers arrive, the store pays for one pass.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

from .store import CampaignStore

__all__ = ["CachedEntry", "GenerationCache"]


@dataclass
class CachedEntry:
    """One cached aggregate with its generation stamp and ETag."""

    value: object
    generation: Tuple[int, ...]
    etag: str


def _etag(key: str, generation: Tuple[int, ...]) -> str:
    raw = repr((key, generation)).encode("utf-8")
    return '"%s"' % hashlib.sha256(raw).hexdigest()[:20]


class GenerationCache:
    """Memoise aggregates over a store, keyed by its generation stamp."""

    def __init__(self, store: CampaignStore,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.store = store
        self.registry = registry if registry is not None else MetricsRegistry()
        self.hits = self.registry.counter("server.cache.hit")
        self.misses = self.registry.counter("server.cache.miss")
        self._entries: Dict[str, CachedEntry] = {}
        self._lock = threading.RLock()

    def generation(self) -> Tuple[int, ...]:
        """Probe the store's current generation (serialised on the lock)."""
        with self._lock:
            return self.store.generation()

    def get(self, key: str, compute: Callable[[], object]) -> Tuple[CachedEntry, bool]:
        """The aggregate named ``key``, computed at most once per generation.

        Returns ``(entry, hit)``.  ``compute`` runs under the cache lock (it
        reads the store, whose connection is shared between server threads),
        so concurrent readers of a cold key wait for one computation instead
        of racing N.
        """
        with self._lock:
            generation = self.store.generation()
            entry = self._entries.get(key)
            if entry is not None and entry.generation == generation:
                self.hits.inc()
                return entry, True
            self.misses.inc()
            entry = CachedEntry(value=compute(), generation=generation,
                                etag=_etag(key, generation))
            self._entries[key] = entry
            return entry, False

    def invalidate(self, key: Optional[str] = None) -> None:
        """Drop one cached entry (or all of them with ``key=None``)."""
        with self._lock:
            if key is None:
                self._entries.clear()
            else:
                self._entries.pop(key, None)

    @property
    def hit_count(self) -> int:
        return self.hits.value

    @property
    def miss_count(self) -> int:
        return self.misses.value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
