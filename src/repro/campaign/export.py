"""Exports: stored campaign rows → reporting objects and CSV.

Bridges the campaign store to the existing :mod:`repro.analysis.reporting`
layer: grouped :class:`Series` (one line per method, say), flat
:class:`Table` grids, seed-axis aggregation (:func:`average_over_seeds`),
and plain-stdlib CSV dumps for external analysis.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.reporting import Series, Table
from repro.campaign.results import StoredResult
from repro.campaign.store import CampaignStore, config_to_dict

#: config columns included in flat exports, in order
CONFIG_FIELDS = ("workload", "method", "n_ranks", "seed", "max_group_size", "do_restart")

#: scalar metric columns included in flat exports, in order
METRIC_FIELDS = (
    "makespan",
    "aggregate_checkpoint_time",
    "aggregate_coordination_time",
    "aggregate_restart_time",
    "resend_bytes",
    "resend_operations",
    "checkpoints_completed",
    "mean_checkpoint_duration",
    "gap_fraction",
)

Accessor = Union[str, Callable[[StoredResult], object]]


class _Row:
    """One result with its config serialized once, however many cells are read."""

    def __init__(self, result: StoredResult) -> None:
        self.result = result
        self.config = config_to_dict(result.config)

    def get(self, accessor: Accessor) -> object:
        if callable(accessor):
            return accessor(self.result)
        if accessor in self.config:
            return self.config[accessor]
        if hasattr(self.result, accessor):
            return getattr(self.result, accessor)
        if accessor in self.result.metrics:
            return self.result.metrics[accessor]
        raise KeyError(
            f"unknown column {accessor!r}: not a config field, result property "
            f"or metrics entry (metrics keys: {sorted(self.result.metrics)})")


def results_to_series(
    results: Sequence[StoredResult],
    x: Accessor = "n_ranks",
    y: Accessor = "makespan",
    group_by: Optional[Accessor] = "method",
) -> List[Series]:
    """Turn results into figure series: one line per ``group_by`` value.

    ``x``/``y``/``group_by`` name a config field or metric, or are callables
    over the result.  Points appear in result order (sort upstream if needed).
    """
    rows = [_Row(result) for result in results]
    if group_by is None:
        series = Series(name=str(y))
        for row in rows:
            series.append(row.get(x), row.get(y))
        return [series]
    grouped: Dict[object, Series] = {}
    for row in rows:
        label = row.get(group_by)
        if label not in grouped:
            grouped[label] = Series(name=str(label))
        grouped[label].append(row.get(x), row.get(y))
    return list(grouped.values())


def average_over_seeds(
    results: Sequence[StoredResult],
    over: str = "seed",
) -> List[StoredResult]:
    """Collapse the ``seed`` axis: one aggregate result per distinct cell.

    Results whose configs differ only in ``over`` (and, for measured failure
    runs, the failure spec's own seed) form one *cell*.  The aggregate is a
    :class:`StoredResult` carrying, for every numeric payload entry, the
    cell **mean** under the original name plus ``<name>_std`` (population
    standard deviation) and ``n_seeds`` — so downstream helpers work
    unchanged (``results_to_series(avg, y="makespan")`` plots means,
    ``y="makespan_std"`` the spread).  Non-numeric entries are kept when
    identical across the cell and dropped otherwise.  The representative
    config is the member with the smallest seed.  Cells appear in first-seen
    order; singleton cells aggregate trivially (std 0).
    """
    cells: Dict[str, List[StoredResult]] = {}
    order: List[str] = []
    for result in results:
        cfg = config_to_dict(result.config)
        cfg.pop(over, None)
        failure = cfg.get("failure")
        if isinstance(failure, dict):
            failure = dict(failure)
            failure.pop("seed", None)
            cfg["failure"] = failure
        cell = json.dumps(cfg, sort_keys=True, separators=(",", ":"))
        if cell not in cells:
            cells[cell] = []
            order.append(cell)
        cells[cell].append(result)
    out: List[StoredResult] = []
    for cell in order:
        members = sorted(cells[cell], key=lambda r: getattr(r.config, over, 0))
        metrics: Dict[str, object] = {"n_seeds": len(members)}
        names = [name for name in members[0].metrics
                 if all(name in m.metrics for m in members)]
        for name in names:
            values = [m.metrics[name] for m in members]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in values):
                mean = sum(values) / len(values)
                var = sum((v - mean) ** 2 for v in values) / len(values)
                metrics[name] = mean
                metrics[f"{name}_std"] = math.sqrt(var)
            elif all(v == values[0] for v in values):
                metrics[name] = values[0]
        out.append(StoredResult(members[0].config, metrics))
    return out


def results_to_table(
    results: Sequence[StoredResult],
    title: str = "campaign results",
    config_fields: Sequence[str] = CONFIG_FIELDS,
    metric_fields: Sequence[str] = METRIC_FIELDS,
) -> Table:
    """Flatten results into one :class:`Table` row per scenario."""
    columns = list(config_fields) + list(metric_fields)
    table = Table(title=title, columns=columns)
    for result in results:
        row = _Row(result)
        table.add_row(*[row.get(name) for name in columns])
    return table


def results_to_csv_text(
    results: Sequence[StoredResult],
    config_fields: Sequence[str] = CONFIG_FIELDS,
    metric_fields: Sequence[str] = METRIC_FIELDS,
) -> str:
    """Render results as CSV text (header + one row per result)."""
    columns = list(config_fields) + list(metric_fields)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(columns)
    for result in results:
        row = _Row(result)
        writer.writerow([row.get(name) for name in columns])
    return buffer.getvalue()


def results_to_csv(
    results: Sequence[StoredResult],
    path: str,
    config_fields: Sequence[str] = CONFIG_FIELDS,
    metric_fields: Sequence[str] = METRIC_FIELDS,
) -> int:
    """Write one CSV row per result; returns the number of rows written."""
    with open(path, "w", newline="") as handle:
        handle.write(results_to_csv_text(results, config_fields, metric_fields))
    return len(results)


def stored_results(
    store: CampaignStore,
    status: str = "done",
    workload: Optional[str] = None,
    method: Optional[str] = None,
    n_ranks: Optional[int] = None,
    seed: Optional[int] = None,
    cluster_name: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[StoredResult]:
    """Stored rows as :class:`StoredResult`, filtered by config fields.

    The shared read-side selector: the observatory server's ``/api/results``
    and the per-experiment table-from-store entry points all pull through
    here.  ``cluster_name`` selects one experiment family — the sweep
    builders stamp their cluster spec (``storage-tiers``, ``availability``,
    ``elastic-shrink``), so a shared store can serve every family's tables.
    Rows appear oldest first (the order the sweep registered them).
    """
    out: List[StoredResult] = []
    for row in store.rows(status=status):
        config = row.config
        if workload is not None and config.workload != workload:
            continue
        if method is not None and config.method != method:
            continue
        if n_ranks is not None and config.n_ranks != n_ranks:
            continue
        if seed is not None and config.seed != seed:
            continue
        if cluster_name is not None and config.cluster.name != cluster_name:
            continue
        out.append(StoredResult(config, row.metrics or {}))
        if limit is not None and len(out) >= limit:
            break
    return out


def store_to_csv(store: CampaignStore, path: str) -> int:
    """Dump every ``done`` row of a store to CSV (see :func:`results_to_csv`)."""
    return results_to_csv(stored_results(store), path)


def summary_table(store: CampaignStore) -> Table:
    """One-row status summary of a store (pending/running/done/failed)."""
    counts = store.counts()
    table = Table(title=f"campaign {store.path}", columns=list(counts) + ["total"])
    table.add_row(*counts.values(), sum(counts.values()))
    return table
