"""Exports: stored campaign rows → reporting objects and CSV.

Bridges the campaign store to the existing :mod:`repro.analysis.reporting`
layer: grouped :class:`Series` (one line per method, say), flat
:class:`Table` grids, and plain-stdlib CSV dumps for external analysis.
"""

from __future__ import annotations

import csv
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.reporting import Series, Table
from repro.campaign.results import StoredResult
from repro.campaign.store import CampaignStore, config_to_dict

#: config columns included in flat exports, in order
CONFIG_FIELDS = ("workload", "method", "n_ranks", "seed", "max_group_size", "do_restart")

#: scalar metric columns included in flat exports, in order
METRIC_FIELDS = (
    "makespan",
    "aggregate_checkpoint_time",
    "aggregate_coordination_time",
    "aggregate_restart_time",
    "resend_bytes",
    "resend_operations",
    "checkpoints_completed",
    "mean_checkpoint_duration",
    "gap_fraction",
)

Accessor = Union[str, Callable[[StoredResult], object]]


class _Row:
    """One result with its config serialized once, however many cells are read."""

    def __init__(self, result: StoredResult) -> None:
        self.result = result
        self.config = config_to_dict(result.config)

    def get(self, accessor: Accessor) -> object:
        if callable(accessor):
            return accessor(self.result)
        if accessor in self.config:
            return self.config[accessor]
        if hasattr(self.result, accessor):
            return getattr(self.result, accessor)
        if accessor in self.result.metrics:
            return self.result.metrics[accessor]
        raise KeyError(
            f"unknown column {accessor!r}: not a config field, result property "
            f"or metrics entry (metrics keys: {sorted(self.result.metrics)})")


def results_to_series(
    results: Sequence[StoredResult],
    x: Accessor = "n_ranks",
    y: Accessor = "makespan",
    group_by: Optional[Accessor] = "method",
) -> List[Series]:
    """Turn results into figure series: one line per ``group_by`` value.

    ``x``/``y``/``group_by`` name a config field or metric, or are callables
    over the result.  Points appear in result order (sort upstream if needed).
    """
    rows = [_Row(result) for result in results]
    if group_by is None:
        series = Series(name=str(y))
        for row in rows:
            series.append(row.get(x), row.get(y))
        return [series]
    grouped: Dict[object, Series] = {}
    for row in rows:
        label = row.get(group_by)
        if label not in grouped:
            grouped[label] = Series(name=str(label))
        grouped[label].append(row.get(x), row.get(y))
    return list(grouped.values())


def results_to_table(
    results: Sequence[StoredResult],
    title: str = "campaign results",
    config_fields: Sequence[str] = CONFIG_FIELDS,
    metric_fields: Sequence[str] = METRIC_FIELDS,
) -> Table:
    """Flatten results into one :class:`Table` row per scenario."""
    columns = list(config_fields) + list(metric_fields)
    table = Table(title=title, columns=columns)
    for result in results:
        row = _Row(result)
        table.add_row(*[row.get(name) for name in columns])
    return table


def results_to_csv(
    results: Sequence[StoredResult],
    path: str,
    config_fields: Sequence[str] = CONFIG_FIELDS,
    metric_fields: Sequence[str] = METRIC_FIELDS,
) -> int:
    """Write one CSV row per result; returns the number of rows written."""
    columns = list(config_fields) + list(metric_fields)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for result in results:
            row = _Row(result)
            writer.writerow([row.get(name) for name in columns])
    return len(results)


def store_to_csv(store: CampaignStore, path: str) -> int:
    """Dump every ``done`` row of a store to CSV (see :func:`results_to_csv`)."""
    results = [StoredResult(row.config, row.metrics) for row in store.rows(status="done")]
    return results_to_csv(results, path)


def summary_table(store: CampaignStore) -> Table:
    """One-row status summary of a store (pending/running/done/failed)."""
    counts = store.counts()
    table = Table(title=f"campaign {store.path}", columns=list(counts) + ["total"])
    table.add_row(*counts.values(), sum(counts.values()))
    return table
