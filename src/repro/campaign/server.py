"""Campaign observatory service: the read-side REST API over a store.

A stdlib-only (``http.server.ThreadingHTTPServer``) service that exposes any
campaign sqlite store to many concurrent readers without ever touching the
simulator::

    PYTHONPATH=src python -m repro.campaign.server --db sweep.sqlite --port 8032

Endpoints
---------

``GET /``
    Self-refreshing HTML observatory (the PR 9 dashboard renderer): polls
    ``/api/progress`` and reloads when the store's ETag changes.
``GET /api/progress``
    The :func:`~repro.campaign.progress.campaign_progress` snapshot as JSON.
``GET /api/results``
    Stored results, filterable by ``status``/``workload``/``method``/
    ``n_ranks``/``seed``/``limit``; JSON by default, CSV via ``?format=csv``
    or ``Accept: text/csv``.
``GET /api/tables/{overhead,survivability,availability,elastic}``
    The experiment tables recomputed server-side from stored payloads
    (value-equal to the CLI sweeps' output for the same store).
``GET /api/bench``
    The ``benchmarks`` side table (events/sec history), filterable by
    ``name``, newest-last.
``GET /metrics``
    Prometheus text exposition: rows by status, done fraction, throughput,
    ETA, lease health, mean task duration, newest benchmark events/sec, and
    the server's own request/cache counters.
``GET /healthz``
    Liveness + the store's current generation stamp (never cached).

Caching
-------

Every expensive aggregate is memoised in a
:class:`~repro.campaign.cache.GenerationCache` keyed by the store's cheap
generation stamp: repeated reads of a quiet store are served from memory
with strong ETags, conditional requests collapse to ``304 Not Modified``,
and the ``server.cache.hit`` / ``server.cache.miss`` counter pair (exported
on ``/metrics``) proves N concurrent readers cost one aggregation pass.
Writers are never blocked: the store is WAL-journalled, readers take no
write locks, and the one serialised code path is the server's own aggregate
computation.  Corollary of generation-keying: time-derived fields (lease
seconds-left, ETA) refresh when the store changes, not per wall-clock tick.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.analysis.reporting import table_to_dict
from repro.campaign.cache import GenerationCache
from repro.campaign.dashboard import render_progress_html
from repro.campaign.export import (
    CONFIG_FIELDS,
    METRIC_FIELDS,
    results_to_csv_text,
    stored_results,
)
from repro.campaign.progress import campaign_progress
from repro.campaign.metrics_export import (
    campaign_families,
    registry_families,
    render_exposition,
)
from repro.campaign.store import STATUSES, CampaignStore, scenario_key
from repro.obs.metrics import MetricsRegistry

__all__ = ["ObservatoryApp", "ObservatoryServer", "Response", "serve", "main"]

#: the experiment-table endpoints and the store-derived table each serves
TABLE_NAMES = ("overhead", "survivability", "availability", "elastic")


@dataclass
class Response:
    """One computed HTTP response (transport-independent, for tests too)."""

    status: int
    body: bytes
    content_type: str
    etag: Optional[str] = None
    cache_hit: bool = False
    headers: Dict[str, str] = field(default_factory=dict)


def _json_body(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("utf-8")


class ObservatoryApp:
    """Routing + caching logic of the observatory, independent of sockets.

    One instance owns the (thread-shared) store handle, the generation
    cache, and the metrics registry; :meth:`handle` maps a ``GET`` to a
    :class:`Response`.  The HTTP handler below is a thin adapter, so tests
    can drive the app directly or over real HTTP.
    """

    def __init__(self, store: CampaignStore,
                 registry: Optional[MetricsRegistry] = None,
                 title: str = "campaign observatory",
                 poll_s: float = 3.0) -> None:
        self.store = store
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = GenerationCache(store, registry=self.registry)
        self.title = title
        self.poll_s = poll_s

    # -- aggregate builders (each runs at most once per store generation) ---------
    def _progress_payload(self) -> bytes:
        return _json_body(campaign_progress(self.store).as_dict())

    def _page(self) -> bytes:
        progress = campaign_progress(self.store)
        return render_progress_html(progress, title=self.title,
                                    poll_s=self.poll_s).encode("utf-8")

    def _metrics_payload(self) -> bytes:
        progress = campaign_progress(self.store)
        families = campaign_families(progress, self.store.benchmark_rows())
        families += registry_families(self.registry)
        return render_exposition(families).encode("utf-8")

    def _results_payload(self, query: Dict[str, List[str]],
                         as_csv: bool) -> bytes:
        def one(name: str, cast=str):
            values = query.get(name)
            if not values:
                return None
            try:
                return cast(values[-1])
            except ValueError:
                raise ValueError(f"query parameter {name!r} must be {cast.__name__}")

        status = one("status") or "done"
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}; expected one of {STATUSES}")
        results = stored_results(
            self.store, status=status,
            workload=one("workload"), method=one("method"),
            n_ranks=one("n_ranks", int), seed=one("seed", int),
            cluster_name=one("cluster"), limit=one("limit", int))
        if as_csv:
            return results_to_csv_text(results).encode("utf-8")
        return _json_body({
            "count": len(results),
            "status": status,
            "results": [
                {"key": scenario_key(r.config),
                 "config": _config_dict(r.config),
                 "metrics": r.metrics}
                for r in results
            ],
        })

    def _table_payload(self, name: str) -> bytes:
        if name in ("overhead", "survivability"):
            from repro.experiments.storage_tiers import tables_from_store

            out = tables_from_store(self.store)
            table, n = out[name], len(out["results"])
        elif name == "availability":
            from repro.experiments.availability import availability_tables_from_store

            out = availability_tables_from_store(self.store)
            table, n = out["table"], len(out["results"])
        else:  # "elastic" — the router rejects anything else before this
            from repro.experiments.elastic import elastic_tables_from_store

            out = elastic_tables_from_store(self.store)
            table, n = out["repartition"], len(out["results"])
        return _json_body({"table": table_to_dict(table), "source_results": n})

    def _bench_payload(self, query: Dict[str, List[str]]) -> bytes:
        names = query.get("name")
        rows = self.store.benchmark_rows(names[-1] if names else None)
        limits = query.get("limit")
        if limits:
            rows = rows[-int(limits[-1]):]
        return _json_body({"count": len(rows), "rows": rows})

    # -- request handling ---------------------------------------------------------
    def handle(self, path: str, query: Dict[str, List[str]],
               accept: str = "", if_none_match: Optional[str] = None) -> Response:
        """Compute the response for one ``GET`` (cache- and ETag-aware)."""
        endpoint = path.rstrip("/") or "/"
        self.registry.counter("server.requests", endpoint=endpoint).inc()
        try:
            return self._route(path, query, accept, if_none_match)
        except ValueError as exc:
            return Response(400, _json_body({"error": str(exc)}), "application/json")
        except (KeyError, TypeError) as exc:
            return Response(400, _json_body(
                {"error": f"{type(exc).__name__}: {exc}"}), "application/json")

    def _route(self, path: str, query: Dict[str, List[str]],
               accept: str, if_none_match: Optional[str]) -> Response:
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            return Response(200, _json_body({
                "status": "ok",
                "db": self.store.path,
                "generation": list(self.cache.generation()),
                "time": time.time(),
            }), "application/json")
        if path == "/":
            return self._cached("page:/", self._page, "text/html; charset=utf-8",
                                if_none_match)
        if path == "/api/progress":
            return self._cached("api:progress", self._progress_payload,
                                "application/json", if_none_match)
        if path == "/metrics":
            return self._cached("metrics:/", self._metrics_payload,
                                "text/plain; version=0.0.4; charset=utf-8",
                                if_none_match)
        if path == "/api/results":
            fmt = (query.get("format") or [None])[-1]
            as_csv = (fmt == "csv") if fmt else ("text/csv" in (accept or ""))
            if fmt not in (None, "csv", "json"):
                raise ValueError(f"unknown format {fmt!r}; expected csv or json")
            key = f"api:results:{_canonical_query(query)}:{'csv' if as_csv else 'json'}"
            return self._cached(
                key, lambda: self._results_payload(query, as_csv),
                "text/csv; charset=utf-8" if as_csv else "application/json",
                if_none_match)
        if path.startswith("/api/tables/"):
            name = path[len("/api/tables/"):]
            if name not in TABLE_NAMES:
                return Response(404, _json_body(
                    {"error": f"unknown table {name!r}",
                     "tables": list(TABLE_NAMES)}), "application/json")
            return self._cached(f"api:tables:{name}",
                                lambda: self._table_payload(name),
                                "application/json", if_none_match)
        if path == "/api/bench":
            key = f"api:bench:{_canonical_query(query)}"
            return self._cached(key, lambda: self._bench_payload(query),
                                "application/json", if_none_match)
        return Response(404, _json_body(
            {"error": f"no route for {path!r}",
             "routes": ["/", "/healthz", "/api/progress", "/api/results",
                        "/api/bench", "/metrics"]
                       + [f"/api/tables/{n}" for n in TABLE_NAMES]}),
            "application/json")

    def _cached(self, key: str, compute, content_type: str,
                if_none_match: Optional[str]) -> Response:
        entry, hit = self.cache.get(key, compute)
        if if_none_match is not None and if_none_match == entry.etag:
            return Response(304, b"", content_type, etag=entry.etag, cache_hit=hit)
        return Response(200, entry.value, content_type, etag=entry.etag,
                        cache_hit=hit)


def _config_dict(config) -> Dict[str, object]:
    from repro.campaign.store import config_to_dict

    return config_to_dict(config)


def _canonical_query(query: Dict[str, List[str]]) -> str:
    return "&".join(f"{k}={','.join(v)}" for k, v in sorted(query.items())
                    if k != "format")


# ----------------------------------------------------------------- HTTP layer
class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-observatory"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._respond(include_body=True)

    def do_HEAD(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._respond(include_body=False)

    def _respond(self, include_body: bool) -> None:
        app: ObservatoryApp = self.server.app  # type: ignore[attr-defined]
        parsed = urlsplit(self.path)
        response = app.handle(
            parsed.path, parse_qs(parsed.query),
            accept=self.headers.get("Accept", ""),
            if_none_match=self.headers.get("If-None-Match"))
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        if response.etag is not None:
            self.send_header("ETag", response.etag)
            self.send_header("Cache-Control", "no-cache")
            self.send_header("X-Cache", "hit" if response.cache_hit else "miss")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        if include_body and response.body:
            self.wfile.write(response.body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)


class ObservatoryServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`ObservatoryApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ObservatoryApp,
                 verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.app = app
        self.verbose = verbose

    def serve_in_thread(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="observatory", daemon=True)
        thread.start()
        return thread


def serve(db: str, host: str = "127.0.0.1", port: int = 8032,
          title: str = "campaign observatory", poll_s: float = 3.0,
          registry: Optional[MetricsRegistry] = None,
          verbose: bool = False) -> ObservatoryServer:
    """Open ``db`` thread-shared and return a ready (unstarted) server."""
    store = CampaignStore(db, check_same_thread=False)
    app = ObservatoryApp(store, registry=registry, title=title, poll_s=poll_s)
    return ObservatoryServer((host, port), app, verbose=verbose)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve a campaign store's read-side REST API + observatory.")
    parser.add_argument("--db", required=True, help="campaign store sqlite path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8032)
    parser.add_argument("--title", default="campaign observatory")
    parser.add_argument("--poll", type=float, default=3.0,
                        help="observatory page poll interval (seconds)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    args = parser.parse_args(argv)

    server = serve(args.db, host=args.host, port=args.port, title=args.title,
                   poll_s=args.poll, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"campaign observatory for {args.db} on http://{host}:{port}/ "
          f"(endpoints: /api/progress /api/results /api/tables/"
          f"{{{','.join(TABLE_NAMES)}}} /api/bench /metrics /healthz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.app.store.close()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
