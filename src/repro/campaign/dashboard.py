"""Campaign observatory: render store progress as text or HTML.

The :mod:`repro.campaign.progress` API reads a :class:`CampaignStore` into a
:class:`CampaignProgress` snapshot; this module renders that snapshot —

* :func:`render_progress_text` — the ``progress_tables`` stack through
  :func:`repro.analysis.reporting.format_table`, for terminals and the
  ``--watch`` loop in ``examples/reproduce_paper.py``;
* :func:`render_progress_html` — a self-contained single-file HTML page
  (no external assets): a hero done-fraction, per-status stat tiles with
  icon + label (status is never colour alone), a stacked status meter,
  and lease-health / failure tables.  Light and dark schemes via
  ``prefers-color-scheme``.

Runnable directly against a store::

    PYTHONPATH=src python -m repro.campaign.dashboard --db sweep.sqlite \\
        --html observatory.html
"""

from __future__ import annotations

import argparse
import html
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.campaign.progress import (
    CampaignProgress,
    campaign_progress,
    progress_tables,
)
from repro.campaign.store import CampaignStore

#: fixed status palette (never themed): good / warning / critical + muted ink.
#: every status also carries an icon + label so colour never acts alone.
_STATUS_STYLE = {
    "done": ("#0ca30c", "✓"),      # good, check mark
    "running": ("#fab219", "▶"),   # warning-yellow, play
    "failed": ("#d03b3b", "✗"),    # critical, cross
    "pending": ("#898781", "○"),   # muted, open circle
}

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
  }
}
body { font: 13px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
       margin: 1.5em auto; max-width: 900px; padding: 0 1em;
       background: var(--page); color: var(--text-primary); }
section { margin: 1.5em 0; padding: 1em; background: var(--surface-1);
          border: 1px solid var(--grid); border-radius: 6px; }
h2 { margin: 0 0 0.3em 0; }
.sub { color: var(--text-secondary); }
.hero { font-size: 48px; font-weight: 600; }
.tiles { display: flex; flex-wrap: wrap; gap: 1em; margin-top: 1em; }
.tile { border: 1px solid var(--grid); border-radius: 6px;
        padding: 0.6em 1.1em; min-width: 7.5em; }
.tile .label { color: var(--text-secondary); }
.tile .value { font-size: 24px; font-weight: 600; }
.meter { display: flex; height: 14px; border-radius: 4px; overflow: hidden;
         gap: 2px; background: var(--surface-1); margin-top: 1em; }
.meter div { height: 100%; }
table { border-collapse: collapse; margin-top: 0.5em; width: 100%;
        font-variant-numeric: tabular-nums; }
th, td { padding: 3px 10px; text-align: right;
         border-bottom: 1px solid var(--grid); }
th { color: var(--text-muted); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
.statusdot { display: inline-block; width: 10px; height: 10px;
             border-radius: 50%; margin-right: 0.35em; }
"""


def render_progress_text(progress: CampaignProgress) -> str:
    """All ``progress_tables`` formatted for a terminal."""
    return "\n\n".join(format_table(t) for t in progress_tables(progress))


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}min"
    return f"{seconds:.0f}s"


def render_progress_html(progress: CampaignProgress,
                         title: str = "campaign observatory",
                         poll_s: Optional[float] = None,
                         poll_url: str = "/api/progress") -> str:
    """Self-contained HTML status page for a campaign store.

    With ``poll_s`` set (the observatory server's live mode) the page keeps
    polling ``poll_url`` and reloads itself the moment the endpoint's ETag
    changes — the server's response cache stamps every payload with the
    store generation, so a quiet store costs one conditional request per
    poll and the page re-renders only when the store actually changed.
    An empty store renders an explicit "no rows yet" state.
    """
    counts = progress.counts
    total = progress.total

    tiles = []
    for status in ("done", "running", "failed", "pending"):
        colour, icon = _STATUS_STYLE[status]
        tiles.append(
            f'<div class="tile"><div class="label">'
            f'<i class="statusdot" style="background:{colour}"></i>'
            f"{icon} {status}</div>"
            f'<div class="value">{counts.get(status, 0)}</div></div>')

    # stacked status meter: one segment per non-empty status, 2px surface gaps
    segments = []
    if total:
        for status in ("done", "running", "failed", "pending"):
            n = counts.get(status, 0)
            if not n:
                continue
            colour, icon = _STATUS_STYLE[status]
            tip = html.escape(f"{icon} {status}: {n}/{total}", quote=True)
            segments.append(f'<div style="flex:{n};background:{colour}" '
                            f'title="{tip}"></div>')
    meter = f'<div class="meter">{"".join(segments)}</div>' if segments else ""

    throughput = progress.throughput_per_s
    if progress.is_empty:
        rates_rows = [("State", "no rows yet — the store holds no experiments")]
    else:
        rates_rows = [
            ("Done", f"{counts.get('done', 0)}/{total}"),
            ("Throughput", f"{throughput * 60:.2f} rows/min" if throughput else "-"),
            ("Mean row duration", _fmt_duration(progress.mean_duration_s)),
            ("ETA", _fmt_duration(progress.eta_s)),
        ]
    rates = "".join(f"<tr><td>{html.escape(k)}</td><td>{html.escape(v)}</td></tr>"
                    for k, v in rates_rows)

    lease_section = ""
    if progress.leases:
        rows = []
        for key, worker, left in progress.leases:
            colour, icon = (_STATUS_STYLE["failed"] if left <= 0
                            else _STATUS_STYLE["running"])
            state = f"{icon} {'expired' if left <= 0 else 'held'}"
            rows.append(
                f"<tr><td>{html.escape(key[:16])}</td>"
                f"<td>{html.escape(worker or '-')}</td>"
                f'<td><i class="statusdot" style="background:{colour}"></i>'
                f"{state}</td><td>{left:.0f}s</td></tr>")
        lease_section = (
            "<section><h2>Lease health</h2><table>"
            "<tr><th>key</th><th>worker</th><th>state</th><th>left</th></tr>"
            f"{''.join(rows)}</table></section>")

    failure_section = ""
    if progress.failures:
        rows = "".join(
            f"<tr><td>{html.escape(key[:16])}</td>"
            f"<td style='text-align:left'>{html.escape(err)}</td></tr>"
            for key, err in sorted(progress.failures.items()))
        failure_section = (
            "<section><h2>Failures</h2><table>"
            f"<tr><th>key</th><th>error</th></tr>{rows}</table></section>")

    if progress.is_empty:
        hero = ('<div class="hero">no rows yet'
                '<span class="sub" style="font-size:16px"> — waiting for the '
                'first experiment to be registered</span></div>')
    else:
        hero = (f'<div class="hero">{progress.done_fraction:.0%}'
                '<span class="sub" style="font-size:16px"> complete</span></div>')

    poll_script = ""
    if poll_s:
        poll_ms = max(int(poll_s * 1000), 250)
        poll_script = f"""<script>
(function () {{
  var last = null;
  function tick() {{
    fetch({poll_url!r}, {{cache: "no-store"}}).then(function (r) {{
      var tag = r.headers.get("ETag");
      if (last !== null && tag !== null && tag !== last) location.reload();
      if (tag !== null) last = tag;
    }}).catch(function () {{}}).then(function () {{
      setTimeout(tick, {poll_ms});
    }});
  }}
  setTimeout(tick, {poll_ms});
}})();
</script>"""

    return f"""<!doctype html>
<html><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_CSS}</style></head><body>
<section>
<h2>{html.escape(title)}</h2>
<p class="sub">{total} experiments · snapshot at t={progress.observed_at:.0f}</p>
{hero}
{meter}
<div class="tiles">{''.join(tiles)}</div>
</section>
<section><h2>Rates</h2><table>{rates}</table></section>
{lease_section}
{failure_section}
{poll_script}</body></html>
"""


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render campaign store progress as text and optional HTML.")
    parser.add_argument("--db", required=True, help="campaign store sqlite path")
    parser.add_argument("--html", default=None,
                        help="write the HTML observatory page here")
    parser.add_argument("--title", default="campaign observatory")
    args = parser.parse_args(argv)

    store = CampaignStore(args.db)
    try:
        progress = campaign_progress(store)
    finally:
        store.close()
    print(render_progress_text(progress))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_progress_html(progress, title=args.title))
        print(f"\nwrote HTML observatory to {args.html}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
