"""Parallel campaign execution with resume.

The execution model follows PyExperimenter: experiments live in a shared
store, and any number of workers — here processes of a
``concurrent.futures.ProcessPoolExecutor`` — *pull* open experiments from it,
run :func:`~repro.experiments.runner.run_scenario`, and write the metrics
payload back.  Nothing is pushed to a specific worker, so workers can crash
(their claims are reset by :meth:`Campaign.resume`) and a campaign can be
finished across several invocations or even machines sharing the database
file.

Everything that crosses the process boundary is a module-level function with
plain-data arguments (:func:`campaign_worker` gets the database *path*, never
a live store or a closure), so the executor path is pickle-safe under every
multiprocessing start method.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import threading
import time
import traceback
import uuid
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.results import StoredResult, metrics_payload, payload_stamp
from repro.campaign.store import DEFAULT_LEASE_S, CampaignStore, ExperimentRow
from repro.experiments.config import ScenarioConfig


class CampaignError(RuntimeError):
    """A campaign finished with failed experiments."""


# ------------------------------------------------------------------- worker entry points
def execute_scenario(config: ScenarioConfig) -> Dict[str, object]:
    """Run one scenario and return its metrics payload.

    Top-level and picklable: this is the campaign task function handed to
    worker processes (directly or via :func:`campaign_worker`).
    """
    from repro.experiments.runner import run_scenario

    return metrics_payload(run_scenario(config))


class _LeaseHeartbeat:
    """Background thread renewing one claim's lease while it executes.

    Uses its own store connection (sqlite connections are not shareable
    across threads) and stops silently once asked — a stale heartbeat can
    never resurrect a claim that expired and was reclaimed, because
    :meth:`CampaignStore.renew_lease` checks owner and status.
    """

    def __init__(self, db_path: str, key: str, worker: str, lease_s: float) -> None:
        self.db_path = db_path
        self.key = key
        self.worker = worker
        self.lease_s = lease_s
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"lease-heartbeat:{key[:8]}")
        self._thread.start()

    def _run(self) -> None:
        store = CampaignStore(self.db_path)
        try:
            while not self._stop.wait(self.lease_s / 3.0):
                if not store.renew_lease(self.key, self.worker, self.lease_s):
                    return
        finally:
            store.close()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def drain_store(
    store: CampaignStore,
    worker: str = "worker",
    keys: Optional[Sequence[str]] = None,
    lease_s: float = DEFAULT_LEASE_S,
    telemetry=None,
) -> int:
    """Claim-and-run experiments from ``store`` until none is pending.

    ``keys`` restricts the worker to those experiments (None = pull
    anything pending).  Returns the number of experiments executed
    (successfully or not).  Failures are recorded in the store with their
    traceback; they never propagate, so one bad scenario cannot take the
    whole worker down.  On a file-backed store each claim is kept alive by
    a heartbeat thread renewing its lease every ``lease_s / 3`` seconds, so
    long scenarios are never mistaken for crashed ones.

    ``telemetry`` (a wall-clock ``repro.obs.Telemetry``) records one
    ``campaign_task`` span per claim→run→store cycle on a per-worker track,
    plus executed/failed counters — the campaign-level view of where worker
    time goes.  With ``REPRO_TELEMETRY=1`` and ``REPRO_TELEMETRY_DIR`` set a
    handle is created automatically and its Chrome trace written to that
    directory when the drain finishes.
    """
    auto_export: Optional[str] = None
    if telemetry is None:
        from repro.obs import TELEMETRY_DIR_ENV, Telemetry, tracing_enabled_from_env

        out_dir = os.environ.get(TELEMETRY_DIR_ENV)
        if tracing_enabled_from_env() and out_dir:
            telemetry = Telemetry(clock=time.time)
            auto_export = out_dir
    executed = 0
    while True:
        row = store.claim(worker, keys=keys, lease_s=lease_s)
        if row is None:
            break
        executed += 1
        heartbeat = None
        if not store.is_memory and lease_s > 0:
            heartbeat = _LeaseHeartbeat(store.path, row.key, worker, lease_s)
        started = time.time()
        span = None
        if telemetry is not None and telemetry.tracing:
            span = telemetry.tracer.begin(
                "campaign_task", track=f"worker:{worker}", category="campaign",
                key=row.key, workload=row.config.workload,
                method=row.config.method, n_ranks=row.config.n_ranks)
        try:
            metrics = execute_scenario(row.config)
        except Exception:
            store.mark_failed(row.key, traceback.format_exc())
            if telemetry is not None:
                telemetry.metrics.counter("campaign.tasks.failed").inc()
                if span is not None:
                    telemetry.tracer.end(span, status="failed")
        else:
            store.mark_done(row.key, metrics, duration_s=time.time() - started)
            if telemetry is not None:
                telemetry.metrics.counter("campaign.tasks.executed").inc()
                telemetry.metrics.histogram("campaign.task.duration_s").observe(
                    time.time() - started)
                if span is not None:
                    telemetry.tracer.end(span, status="done")
        finally:
            if heartbeat is not None:
                heartbeat.stop()
    if auto_export is not None and telemetry.tracer.spans:
        from repro.obs import write_chrome_trace

        path = os.path.join(auto_export, f"campaign-trace-{worker}.json")
        write_chrome_trace(path, telemetry.tracer, telemetry.metrics,
                           process_name=f"campaign:{worker}")
    return executed


def campaign_worker(
    db_path: str,
    worker: str = "worker",
    clear_caches: bool = True,
    keys: Optional[Sequence[str]] = None,
    lease_s: float = DEFAULT_LEASE_S,
) -> int:
    """Worker-process main: open the store at ``db_path`` and drain it.

    ``clear_caches=True`` (the default for subprocess workers) resets the
    in-process trace/group memo caches first: under the ``fork`` start method
    a worker inherits the parent's caches, and a stale inherited trace must
    never leak into a freshly claimed experiment.
    """
    if clear_caches:
        from repro.experiments.runner import clear_caches as _clear

        _clear()
    store = CampaignStore(db_path)
    try:
        return drain_store(store, worker, keys=keys, lease_s=lease_s)
    finally:
        store.close()


# ------------------------------------------------------------------------------ campaign
class Campaign:
    """A persistent, parallel experiment sweep over one store.

    Parameters
    ----------
    store:
        The backing :class:`CampaignStore`, or a database path.  Defaults to
        a throwaway in-memory store (sequential execution only).
    n_workers:
        Default parallelism of :meth:`run`/:meth:`resume`.  ``<= 1`` executes
        inline in the calling process (sharing its trace caches); ``> 1``
        spawns that many worker processes, which requires a file-backed store.
    lease_s:
        Lease duration on ``running`` claims.  Workers renew their lease in
        the background; :meth:`run` waits for (rather than re-executes) rows
        another live campaign holds, and reclaims them once the lease lapses.
    """

    def __init__(self, store: Union[CampaignStore, str, None] = None, n_workers: int = 1,
                 lease_s: float = DEFAULT_LEASE_S) -> None:
        if store is None:
            store = CampaignStore(":memory:")
        elif isinstance(store, str):
            store = CampaignStore(store)
        if n_workers > 1 and store.is_memory:
            raise ValueError("parallel campaigns need a file-backed store "
                             "(an in-memory database cannot be shared with workers)")
        if lease_s < 0:
            raise ValueError("lease_s must be non-negative")
        self.store = store
        self.n_workers = n_workers
        self.lease_s = lease_s
        #: experiments executed (not served from cache) by the last run()/resume()
        self.last_executed = 0

    #: poll interval while waiting on another campaign's live rows
    _WAIT_POLL_S = 0.5

    # -- execution --------------------------------------------------------------------
    def _drain(self, n_workers: int, keys: Optional[Sequence[str]] = None,
               pending: Optional[int] = None) -> int:
        if n_workers > 1 and self.store.is_memory:
            raise ValueError("parallel campaigns need a file-backed store "
                             "(an in-memory database cannot be shared with workers)")
        if pending is not None:
            # never spawn more workers than there is work for
            n_workers = min(n_workers, pending)
        # Worker names must be globally unique: renew_lease/mark_* trust the
        # (key, worker) pair, so two campaigns both naming a worker
        # "worker-0" could resurrect or stomp each other's claims.
        token = uuid.uuid4().hex[:8]
        if n_workers <= 1:
            # Inline: reuse this process's store handle and trace caches.
            return drain_store(self.store, worker=f"inline-{os.getpid()}-{token}",
                               keys=keys, lease_s=self.lease_s)
        keys = list(keys) if keys is not None else None
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(campaign_worker, self.store.path,
                            f"worker-{token}-{i}", True, keys, self.lease_s)
                for i in range(n_workers)
            ]
            return sum(future.result() for future in futures)

    def run(
        self,
        configs: Sequence[ScenarioConfig],
        n_workers: Optional[int] = None,
        strict: bool = True,
        priority: int = 0,
    ) -> List[StoredResult]:
        """Ensure every config has a result and return them in input order.

        Already-``done`` rows are served straight from the store (the
        cache-hit short circuit); only missing ones are executed, with
        ``n_workers``-way parallelism.  Execution is scoped to the requested
        configs — pending rows that other sweeps left in a shared store are
        not drained here (``resume()`` is the whole-store operation).
        Requested rows that ``failed`` on an earlier attempt, or whose
        ``running`` claim's *lease has lapsed* (the worker crashed), are
        re-opened first — so "interrupt, then simply re-run" resumes a
        sweep.  A requested row that another live campaign is executing
        right now (its lease renews) is *waited for*, not re-executed, so
        concurrent ``run()``s over overlapping grids no longer duplicate
        work.  With ``strict`` (default) a failed experiment raises
        :class:`CampaignError` carrying its stored traceback; otherwise
        failed entries come back as None.  ``priority`` stamps the requested
        rows: pending work is claimed highest priority first, so an urgent
        sweep jumps the queue of a store shared with bulk campaigns.
        """
        keys = self.store.add_many(configs, priority=priority)
        if priority:
            # rows that already existed at a lower priority are promoted too
            # (never demoted: another sweep's higher stamp wins)
            self.store.set_priority(keys, priority, only_raise=True)
        self.store.reset(("failed",), keys=keys)
        self.store.reclaim_expired(keys=keys)
        stale = self.store.stale_done_keys(payload_stamp(), keys=keys)
        if stale:
            # rows written by an older payload format *or* an older simulation
            # kernel (package version / kernel schema rev): re-run, don't serve
            self.store.reset(("done",), keys=stale)
        self.last_executed = 0
        workers = self.n_workers if n_workers is None else n_workers
        while True:
            counts = self.store.counts(keys=keys)
            if counts["pending"]:
                self.last_executed += self._drain(
                    workers, keys=keys, pending=counts["pending"])
                continue
            if counts["running"]:
                # Another live campaign holds these rows: wait for its
                # results (or for its lease to lapse, then take over).
                # Results appear at scenario granularity (seconds), so a
                # coarse poll keeps the shared store free of query churn.
                if self.store.reclaim_expired(keys=keys):
                    continue
                time.sleep(self._WAIT_POLL_S)
                continue
            break
        out: List[Optional[StoredResult]] = []
        failures: List[ExperimentRow] = []
        for key in keys:
            row = self.store.get(key)
            if row is None or row.status != "done" or row.metrics is None:
                if row is not None and row.status == "failed":
                    failures.append(row)
                out.append(None)
            else:
                out.append(StoredResult(row.config, row.metrics))
        if failures and strict:
            first = failures[0]
            raise CampaignError(
                f"{len(failures)} of {len(keys)} experiments failed; first failure "
                f"({first.config.workload}/{first.config.method}/n={first.config.n_ranks}):\n"
                f"{first.error}"
            )
        if strict and any(result is None for result in out):
            raise CampaignError("campaign finished with unresolved experiments "
                                f"(store counts: {self.store.counts()})")
        return out

    def run_one(self, config: ScenarioConfig) -> StoredResult:
        """Convenience: run (or fetch) a single scenario."""
        return self.run([config])[0]

    def sweep(self, grid, n_workers: Optional[int] = None) -> List[StoredResult]:
        """Run a :class:`~repro.campaign.grid.ParameterGrid` end to end."""
        return self.run(grid.expand(), n_workers=n_workers)

    def resume(self, n_workers: Optional[int] = None, force: bool = False) -> int:
        """Re-open ``failed`` and orphaned ``running`` rows and drain the store.

        Call after a crash (worker or whole process) to finish a campaign
        without re-running anything already ``done``.  Orphaned means the
        claim's lease lapsed; with ``force=True`` even live-leased rows are
        re-opened (the pre-lease stomp — only safe when no other campaign
        is running).  ``done`` rows written by an older simulator (payload
        or kernel fingerprint mismatch) are re-opened as well.  Returns the
        number of experiments executed.
        """
        self.store.reset(("failed",))
        if force:
            self.store.reset(("running",))
        else:
            self.store.reclaim_expired()
        stale = self.store.stale_done_keys(payload_stamp())
        if stale:
            self.store.reset(("done",), keys=stale)
        pending = self.store.counts()["pending"]
        self.last_executed = self._drain(
            self.n_workers if n_workers is None else n_workers, pending=pending
        ) if pending else 0
        return self.last_executed

    def results(self, status: str = "done") -> List[StoredResult]:
        """All stored results with the given status (default: finished ones)."""
        return [StoredResult(row.config, row.metrics)
                for row in self.store.rows(status=status)]

    def counts(self) -> Dict[str, int]:
        """Experiment count per status (delegates to the store)."""
        return self.store.counts()


# ----------------------------------------------------------------- default campaign hook
_DEFAULT_CAMPAIGN: Optional[Campaign] = None
_DEFAULT_IS_AUTO = False
_DEFAULT_TMP_PATH: Optional[str] = None


def _remove_tmp_store() -> None:
    global _DEFAULT_TMP_PATH
    if _DEFAULT_TMP_PATH is not None:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.remove(_DEFAULT_TMP_PATH + suffix)
            except OSError:
                pass
        _DEFAULT_TMP_PATH = None


def set_default_campaign(campaign: Optional[Campaign]) -> None:
    """Install the campaign used by the figure sweeps (None resets to auto)."""
    global _DEFAULT_CAMPAIGN, _DEFAULT_IS_AUTO
    _DEFAULT_CAMPAIGN = campaign
    _DEFAULT_IS_AUTO = False


def get_default_campaign() -> Campaign:
    """The process-wide campaign behind :mod:`repro.experiments.figures`.

    Auto-created on first use from the environment:

    * ``REPRO_CAMPAIGN_DB`` — database path (default: in-memory, i.e. results
      live for the process only),
    * ``REPRO_CAMPAIGN_WORKERS`` — parallelism (default 1; values > 1 without
      an explicit database get a temporary file-backed store).
    """
    global _DEFAULT_CAMPAIGN, _DEFAULT_IS_AUTO, _DEFAULT_TMP_PATH
    if _DEFAULT_CAMPAIGN is None:
        path = os.environ.get("REPRO_CAMPAIGN_DB", ":memory:")
        n_workers = int(os.environ.get("REPRO_CAMPAIGN_WORKERS", "1"))
        if n_workers > 1 and path == ":memory:":
            fd, path = tempfile.mkstemp(prefix="repro-campaign-", suffix=".sqlite")
            os.close(fd)
            _DEFAULT_TMP_PATH = path
            atexit.register(_remove_tmp_store)
        _DEFAULT_CAMPAIGN = Campaign(CampaignStore(path), n_workers=n_workers)
        _DEFAULT_IS_AUTO = True
    return _DEFAULT_CAMPAIGN


def reset_default_campaign(only_auto: bool = True) -> None:
    """Drop the auto-created default campaign (its in-memory results vanish).

    With ``only_auto`` (the default) an explicitly installed campaign is kept:
    its persistent store is authoritative, not a throwaway memo.
    """
    global _DEFAULT_CAMPAIGN, _DEFAULT_IS_AUTO
    if _DEFAULT_CAMPAIGN is not None and (_DEFAULT_IS_AUTO or not only_auto):
        _DEFAULT_CAMPAIGN.store.close()
        _DEFAULT_CAMPAIGN = None
        _DEFAULT_IS_AUTO = False
        _remove_tmp_store()
