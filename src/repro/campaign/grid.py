"""Declarative parameter grids.

A :class:`ParameterGrid` describes a sweep as the cartesian product of a few
axes (any :class:`~repro.experiments.config.ScenarioConfig` field: workload,
method, n_ranks, seed, schedule, …) over a base of fixed fields, with
optional per-axis-value overrides (e.g. different ``workload_options`` per
workload).  ``expand()`` yields the concrete ``ScenarioConfig`` set in a
deterministic order; duplicate configs produced by overrides collapse to one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.campaign.store import scenario_key
from repro.experiments.config import ScenarioConfig


@dataclass
class ParameterGrid:
    """Cartesian sweep definition over ``ScenarioConfig`` fields.

    Parameters
    ----------
    axes:
        Mapping of config field name → sequence of values to sweep.  The
        product is taken in the given axis order (first axis varies slowest).
    base:
        Fixed config fields shared by every point (e.g. ``workload``,
        ``schedule``, ``cluster``).
    overrides:
        ``{axis: {value: {field: override, ...}}}`` — extra fields applied
        when ``axis`` takes ``value``.  Used e.g. to give each workload its
        own ``workload_options`` or scale list in a mixed-workload sweep.
        Overrides are applied after the axes, in axis order, so a later
        axis's override wins over an earlier one.

    Example
    -------
    >>> grid = ParameterGrid(
    ...     axes={"workload": ("hpl", "cg"), "method": ("GP", "NORM"),
    ...           "n_ranks": (16, 32), "seed": (1, 2)},
    ...     base={"schedule": one_shot(2.0)},
    ...     overrides={"workload": {
    ...         "hpl": {"workload_options": {"problem_size": 6000}, "max_group_size": 8},
    ...         "cg": {"workload_options": {"na": 30000}},
    ...     }},
    ... )
    >>> len(grid.expand())
    16
    """

    axes: Mapping[str, Sequence[object]]
    base: Mapping[str, object] = field(default_factory=dict)
    overrides: Mapping[str, Mapping[object, Mapping[str, object]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid = set(ScenarioConfig.__dataclass_fields__)
        for name in list(self.axes) + list(self.base):
            if name not in valid:
                raise ValueError(f"unknown ScenarioConfig field {name!r}")
        for axis in self.overrides:
            if axis not in self.axes:
                raise ValueError(f"override for non-axis {axis!r}")
            for value, fields in self.overrides[axis].items():
                if not any(value == axis_value for axis_value in self.axes[axis]):
                    raise ValueError(
                        f"override for {axis}={value!r}, which is not among the "
                        f"axis values {tuple(self.axes[axis])!r}")
                for name in fields:
                    if name not in valid:
                        raise ValueError(f"unknown ScenarioConfig field {name!r} in override")

    def __len__(self) -> int:
        out = 1
        for values in self.axes.values():
            out *= len(values)
        return out

    def expand(self) -> List[ScenarioConfig]:
        """All concrete scenario configs of the sweep, deterministic order."""
        names = list(self.axes)
        out: List[ScenarioConfig] = []
        seen = set()
        for point in itertools.product(*(self.axes[name] for name in names)):
            fields: Dict[str, object] = dict(self.base)
            fields.update(zip(names, point))
            for axis, value in zip(names, point):
                fields.update(self.overrides.get(axis, {}).get(value, {}))
            config = ScenarioConfig(**fields)
            key = scenario_key(config)
            if key not in seen:
                seen.add(key)
                out.append(config)
        return out

    def with_axis(self, name: str, values: Sequence[object]) -> "ParameterGrid":
        """Copy of this grid with one axis added or replaced."""
        axes = dict(self.axes)
        axes[name] = tuple(values)
        return ParameterGrid(axes=axes, base=dict(self.base),
                             overrides={k: dict(v) for k, v in self.overrides.items()})
