"""Persistent experiment store on stdlib ``sqlite3``.

Each row of the ``experiments`` table is one scenario, keyed by a stable
content-hash of its :class:`~repro.experiments.config.ScenarioConfig`.  The
store is the single source of truth shared by all workers of a campaign:
workers *claim* pending rows (an atomic ``pending → running`` transition),
execute them, and write the metrics payload back.  Because the key is a pure
function of the config, re-adding an already-``done`` scenario is a no-op and
its result is served from the store without re-running the simulation.

Claims carry a *lease*: ``claim`` stamps ``lease_expires_at`` and a live
worker renews it periodically (the executor runs a heartbeat thread).  A
``running`` row is only trusted while its lease holds — concurrent campaigns
over overlapping grids wait for live rows instead of re-executing them, and
crashed workers' rows become reclaimable the moment their lease lapses.

The store works with a file path (shared across processes; WAL mode) or with
``":memory:"`` for throwaway in-process campaigns.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ckpt.scheduler import CheckpointSchedule
from repro.cluster.network import NetworkSpec
from repro.cluster.node import NodeSpec
from repro.cluster.storage import StorageSpec
from repro.cluster.topology import ClusterSpec
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.storage.policy import StoragePolicy

#: experiment lifecycle states
STATUSES: Tuple[str, ...] = ("pending", "running", "done", "failed")

#: default lease on a ``running`` claim (seconds); renewed by the worker's
#: heartbeat at a third of this period
DEFAULT_LEASE_S = 300.0


# ------------------------------------------------------------- config (de)serialisation
def _schedule_to_dict(schedule: Optional[CheckpointSchedule]) -> Optional[Dict[str, object]]:
    if schedule is None:
        return None
    return {
        "times": list(schedule.times),
        "interval_s": schedule.interval_s,
        "first_at": schedule.first_at,
        "max_checkpoints": schedule.max_checkpoints,
    }


def _schedule_from_dict(data: Optional[Dict[str, object]]) -> Optional[CheckpointSchedule]:
    if data is None:
        return None
    return CheckpointSchedule(
        times=tuple(data.get("times", ())),
        interval_s=data.get("interval_s"),
        first_at=data.get("first_at"),
        max_checkpoints=data.get("max_checkpoints"),
    )


def _cluster_from_dict(data: Dict[str, object]) -> ClusterSpec:
    data = dict(data)
    data["node"] = NodeSpec(**data["node"])
    data["network"] = NetworkSpec(**data["network"])
    data["local_storage"] = StorageSpec(**data["local_storage"])
    data["remote_storage"] = StorageSpec(**data["remote_storage"])
    if data.get("storage_policy") is not None:
        data["storage_policy"] = StoragePolicy(**data["storage_policy"])
    return ClusterSpec(**data)


#: (field, default) pairs dropped from serialised configs when at their
#: default, so keys minted before the field existed remain valid.  The
#: cluster's switch radix and the failure spec's recovery-placement knobs
#: arrived with the recovery-orchestration subsystem, the storage policy and
#: switch-outage knobs with the storage-hierarchy subsystem; configs not
#: using them must keep their pre-subsystem key shape.
_CLUSTER_DEFAULT_FIELDS = (
    ("nodes_per_switch", ClusterSpec().nodes_per_switch),
    ("storage_policy", None),
)
_FAILURE_DEFAULT_FIELDS = (
    ("n_spares", 0),
    ("reboot_delay_s", 0.0),
    ("serialize_recoveries", False),
    ("switch_outage_at_s", None),
    ("outage_switch", 0),
    ("outage_spares_disks", False),
    ("switch_outage_rate_per_switch_s", None),
    ("elastic", False),
)


def config_to_dict(config: ScenarioConfig) -> Dict[str, object]:
    """JSON-safe dictionary fully describing a :class:`ScenarioConfig`.

    The ``failure`` entry is omitted entirely when no failure is injected, so
    scenario keys of failure-free configs are unchanged by the existence of
    the measured failure experiments; later-added fields are dropped when at
    their defaults for the same reason (see ``_*_DEFAULT_FIELDS``).
    """
    cluster = dataclasses.asdict(config.cluster)
    for name, default in _CLUSTER_DEFAULT_FIELDS:
        if cluster.get(name) == default:
            del cluster[name]
    out = {
        "workload": config.workload,
        "n_ranks": config.n_ranks,
        "method": config.method,
        "schedule": _schedule_to_dict(config.schedule),
        "cluster": cluster,
        "seed": config.seed,
        "workload_options": dict(config.workload_options),
        "max_group_size": config.max_group_size,
        "do_restart": config.do_restart,
    }
    if config.failure is not None:
        failure = dataclasses.asdict(config.failure)
        for name, default in _FAILURE_DEFAULT_FIELDS:
            if failure.get(name) == default:
                del failure[name]
        out["failure"] = failure
    return out


def config_from_dict(data: Dict[str, object]) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from :func:`config_to_dict` output."""
    return ScenarioConfig(
        workload=data["workload"],
        n_ranks=data["n_ranks"],
        method=data["method"],
        schedule=_schedule_from_dict(data.get("schedule")),
        cluster=_cluster_from_dict(data["cluster"]),
        seed=data.get("seed", 0),
        workload_options=dict(data.get("workload_options", {})),
        max_group_size=data.get("max_group_size"),
        do_restart=data.get("do_restart", True),
        failure=(FailureSpec(**data["failure"])
                 if data.get("failure") is not None else None),
    )


def scenario_key(config: ScenarioConfig) -> str:
    """Stable content-hash of a scenario config (the store's primary key).

    Two configs with equal field values always map to the same key, across
    processes and interpreter runs (``PYTHONHASHSEED`` has no effect).
    """
    canonical = json.dumps(config_to_dict(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------------- row type
@dataclass
class ExperimentRow:
    """One experiment as stored in the database."""

    key: str
    config: ScenarioConfig
    status: str
    metrics: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    worker: Optional[str] = None
    attempts: int = 0
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    duration_s: Optional[float] = None
    lease_expires_at: Optional[float] = None
    priority: int = 0


_SCHEMA = """
CREATE TABLE IF NOT EXISTS experiments (
    key         TEXT PRIMARY KEY,
    config      TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    metrics     TEXT,
    error       TEXT,
    worker      TEXT,
    attempts    INTEGER NOT NULL DEFAULT 0,
    created_at  REAL NOT NULL,
    started_at  REAL,
    finished_at REAL,
    duration_s  REAL,
    lease_expires_at REAL,
    priority    INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_experiments_status ON experiments (status);
CREATE TABLE IF NOT EXISTS benchmarks (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    payload     TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_benchmarks_name ON benchmarks (name);
"""

_COLUMNS = ("key", "config", "status", "metrics", "error", "worker",
            "attempts", "created_at", "started_at", "finished_at", "duration_s",
            "lease_expires_at", "priority")


class CampaignStore:
    """SQLite-backed experiment store shared by campaign workers.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` for an in-process throwaway store
        (an in-memory store cannot be shared with worker processes).
    check_same_thread:
        Pass ``False`` to share one store object between threads (the
        observatory server does, serialising access behind its cache lock);
        sqlite's default single-thread ownership check stays on otherwise.
    """

    def __init__(self, path: str = ":memory:",
                 check_same_thread: bool = True) -> None:
        self.path = path
        self._conn = sqlite3.connect(path, timeout=60.0, isolation_level=None,
                                     check_same_thread=check_same_thread)
        if not self.is_memory:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=60000")
        self._conn.executescript(_SCHEMA)
        self._migrate()

    def _migrate(self) -> None:
        """Add columns introduced after a store file was first created."""
        have = {row[1] for row in self._conn.execute("PRAGMA table_info(experiments)")}
        if "lease_expires_at" not in have:
            self._conn.execute(
                "ALTER TABLE experiments ADD COLUMN lease_expires_at REAL")
        if "priority" not in have:
            self._conn.execute(
                "ALTER TABLE experiments ADD COLUMN priority INTEGER NOT NULL DEFAULT 0")

    @property
    def is_memory(self) -> bool:
        """True for ``":memory:"`` stores (not shareable across processes)."""
        return self.path == ":memory:"

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    # -- writing ----------------------------------------------------------------------
    def add(self, config: ScenarioConfig, priority: int = 0) -> str:
        """Register a scenario (no-op if its key already exists) and return its key.

        ``priority`` orders the claim queue: higher-priority pending rows are
        claimed first (ties broken by age then key, as before).
        """
        key = scenario_key(config)
        self._conn.execute(
            "INSERT OR IGNORE INTO experiments (key, config, status, created_at, priority) "
            "VALUES (?, ?, 'pending', ?, ?)",
            (key, json.dumps(config_to_dict(config), sort_keys=True), time.time(),
             priority),
        )
        return key

    def add_many(self, configs: Iterable[ScenarioConfig], priority: int = 0) -> List[str]:
        """Register several scenarios in one transaction; keys in input order."""
        conn = self._conn
        keys: List[str] = []
        now = time.time()
        try:
            conn.execute("BEGIN")
            for config in configs:
                key = scenario_key(config)
                conn.execute(
                    "INSERT OR IGNORE INTO experiments "
                    "(key, config, status, created_at, priority) "
                    "VALUES (?, ?, 'pending', ?, ?)",
                    (key, json.dumps(config_to_dict(config), sort_keys=True), now,
                     priority),
                )
                keys.append(key)
            conn.execute("COMMIT")
        except BaseException:
            if conn.in_transaction:
                conn.execute("ROLLBACK")
            raise
        return keys

    def set_priority(self, keys: Sequence[str], priority: int,
                     only_raise: bool = False) -> int:
        """Re-prioritise experiments (affects the order pending rows are claimed).

        Returns the number of rows updated.  Raising a row's priority moves
        it to the front of every worker's claim queue; the stamp on
        already-running or finished rows is bookkeeping only (claims read it
        solely on ``pending`` rows).  With ``only_raise`` the call never
        *demotes*: rows already stamped higher by another sweep keep their
        priority (this is what ``Campaign.run(priority=...)`` uses, so two
        campaigns sharing rows cannot silently undercut each other).
        """
        if not keys:
            return 0
        marks = ",".join("?" for _ in keys)
        query = f"UPDATE experiments SET priority = ? WHERE key IN ({marks})"
        params = [priority, *keys]
        if only_raise:
            query += " AND priority < ?"
            params.append(priority)
        cur = self._conn.execute(query, tuple(params))
        return cur.rowcount

    def claim(
        self,
        worker: str = "worker",
        keys: Optional[Sequence[str]] = None,
        lease_s: float = DEFAULT_LEASE_S,
    ) -> Optional[ExperimentRow]:
        """Atomically claim one ``pending`` experiment (``pending → running``).

        Returns None when no pending experiment is left.  Pending rows are
        claimed highest ``priority`` first (ties: oldest, then key), so urgent
        sweeps sharing a store with bulk ones drain first.  ``keys`` restricts
        the claim to those experiments (None = any pending row — the
        whole-store pull model).  The claim is a single ``BEGIN IMMEDIATE``
        transaction, so concurrent workers on the same database never claim
        the same row twice.  The claim holds a lease of ``lease_s`` seconds
        (renew with :meth:`renew_lease`); once it lapses the row counts as
        orphaned and :meth:`reclaim_expired` may hand it to another worker.
        """
        conn = self._conn
        query = "SELECT key FROM experiments WHERE status = 'pending'"
        params: Tuple = ()
        if keys is not None:
            if not keys:
                return None
            query += f" AND key IN ({','.join('?' for _ in keys)})"
            params = tuple(keys)
        query += " ORDER BY priority DESC, created_at, key LIMIT 1"
        try:
            conn.execute("BEGIN IMMEDIATE")
            picked = conn.execute(query, params).fetchone()
            if picked is None:
                conn.execute("COMMIT")
                return None
            now = time.time()
            conn.execute(
                "UPDATE experiments SET status = 'running', worker = ?, "
                "attempts = attempts + 1, started_at = ?, lease_expires_at = ? "
                "WHERE key = ?",
                (worker, now, now + lease_s, picked[0]),
            )
            conn.execute("COMMIT")
        except BaseException:
            if conn.in_transaction:
                conn.execute("ROLLBACK")
            raise
        return self.get(picked[0])

    def renew_lease(self, key: str, worker: str,
                    lease_s: float = DEFAULT_LEASE_S) -> bool:
        """Extend a live claim's lease (the worker heartbeat).

        Only renews while the row is still ``running`` *and* still owned by
        ``worker`` — a claim that was reclaimed after expiry cannot be
        resurrected by its original owner's stale heartbeat.  Returns
        whether the lease was renewed.
        """
        cur = self._conn.execute(
            "UPDATE experiments SET lease_expires_at = ? "
            "WHERE key = ? AND worker = ? AND status = 'running'",
            (time.time() + lease_s, key, worker),
        )
        return cur.rowcount > 0

    def expired_running_keys(self, keys: Optional[Sequence[str]] = None) -> List[str]:
        """Keys of ``running`` rows whose lease has lapsed (orphaned claims).

        Rows without a lease stamp (written by a pre-lease store version)
        count as expired.  ``keys`` restricts the scan.
        """
        if keys is not None and not keys:
            return []
        query = ("SELECT key FROM experiments WHERE status = 'running' "
                 "AND (lease_expires_at IS NULL OR lease_expires_at < ?)")
        params: List[object] = [time.time()]
        if keys is not None:
            query += f" AND key IN ({','.join('?' for _ in keys)})"
            params += list(keys)
        return [row[0] for row in self._conn.execute(query, tuple(params))]

    def reclaim_expired(self, keys: Optional[Sequence[str]] = None) -> int:
        """Return orphaned ``running`` rows (lease lapsed) to ``pending``.

        The lease-aware replacement for blanket ``reset(("running",))``:
        rows whose worker is alive (lease still valid) are left alone, so
        two concurrent campaigns over overlapping grids no longer re-execute
        each other's live experiments.  Returns the number of rows reclaimed.
        """
        expired = self.expired_running_keys(keys)
        if not expired:
            return 0
        return self.reset(("running",), keys=expired)

    def mark_done(self, key: str, metrics: Dict[str, object],
                  duration_s: Optional[float] = None) -> bool:
        """Record a successful run's metrics payload (``running → done``).

        Only transitions rows currently ``running`` — a stale worker whose
        claim was re-opened and finished by someone else cannot clobber the
        stored result.  Returns whether the row was updated.
        """
        cur = self._conn.execute(
            "UPDATE experiments SET status = 'done', metrics = ?, error = NULL, "
            "finished_at = ?, duration_s = ? WHERE key = ? AND status = 'running'",
            (json.dumps(metrics, sort_keys=True), time.time(), duration_s, key),
        )
        return cur.rowcount > 0

    def mark_failed(self, key: str, error: str) -> bool:
        """Record a failed run's traceback (``running → failed``).

        Like :meth:`mark_done`, only transitions ``running`` rows, so a
        duplicate execution dying late cannot discard a valid ``done``
        result.  Returns whether the row was updated.
        """
        cur = self._conn.execute(
            "UPDATE experiments SET status = 'failed', error = ?, finished_at = ? "
            "WHERE key = ? AND status = 'running'",
            (error, time.time(), key),
        )
        return cur.rowcount > 0

    def reset(
        self,
        statuses: Sequence[str] = ("running", "failed"),
        keys: Optional[Sequence[str]] = None,
    ) -> int:
        """Return experiments in ``statuses`` to ``pending`` (for resume).

        ``running`` rows belong to workers that crashed mid-experiment;
        ``failed`` rows carry a traceback from a previous attempt.  ``keys``
        restricts the reset to those experiments (None = the whole store).
        Returns the number of rows reset.
        """
        for status in statuses:
            if status not in STATUSES:
                raise ValueError(f"unknown status {status!r}; expected one of {STATUSES}")
        marks = ",".join("?" for _ in statuses)
        query = (f"UPDATE experiments SET status = 'pending', worker = NULL, "
                 f"error = NULL, lease_expires_at = NULL "
                 f"WHERE status IN ({marks})")
        params = list(statuses)
        if keys is not None:
            if not keys:
                return 0
            query += f" AND key IN ({','.join('?' for _ in keys)})"
            params += list(keys)
        cur = self._conn.execute(query, tuple(params))
        return cur.rowcount

    def clear(self) -> None:
        """Delete every experiment (mainly for tests)."""
        self._conn.execute("DELETE FROM experiments")

    # -- simulator-version invalidation ------------------------------------------------
    def stale_done_keys(
        self,
        required: Dict[str, object],
        keys: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Keys of ``done`` rows whose payload stamp does not match ``required``.

        ``required`` maps payload entries (e.g. ``version``,
        ``sim_version``) to the values the running simulator produces; a row
        missing any entry or carrying a different value is stale — it was
        written by an older payload format or an older simulation kernel and
        must be re-run rather than served from cache.  ``keys`` restricts the
        scan to those experiments.

        The comparison runs inside SQLite via ``json_extract`` (``IS NOT``
        also catches missing entries), so a large store pays index-speed
        string compares instead of deserialising every payload; builds
        without the JSON1 extension fall back to a Python scan.
        """
        if keys is not None and not keys:
            return []
        names = sorted(required)
        scope = ""
        scope_params: Tuple = ()
        if keys is not None:
            scope = f" AND key IN ({','.join('?' for _ in keys)})"
            scope_params = tuple(keys)
        stamp_clause = " OR ".join(
            "json_extract(metrics, ?) IS NOT ?" for _ in names
        )
        stamp_params = tuple(p for name in names for p in (f"$.{name}", required[name]))
        try:
            rows = self._conn.execute(
                "SELECT key FROM experiments WHERE status = 'done' "
                f"AND (metrics IS NULL OR {stamp_clause}){scope}",
                stamp_params + scope_params,
            ).fetchall()
            return [row[0] for row in rows]
        except sqlite3.OperationalError:
            # sqlite compiled without JSON1: scan the payloads in Python
            stale: List[str] = []
            query = f"SELECT key, metrics FROM experiments WHERE status = 'done'{scope}"
            for key, raw in self._conn.execute(query, scope_params):
                metrics = json.loads(raw) if raw else {}
                if any(metrics.get(name) != value for name, value in required.items()):
                    stale.append(key)
            return stale

    # -- benchmark side table ----------------------------------------------------------
    def record_benchmark(self, name: str, payload: Dict[str, object]) -> int:
        """Append a benchmark measurement (e.g. kernel events/sec) to the store.

        Unlike experiment rows, benchmark rows are never deduplicated or
        cached: every run appends, so the table is a measurement history.
        Every row is stamped (unless the caller already did) with the payload
        format version, the simulator fingerprint and a UTC timestamp, so the
        events/sec trajectory across simulator revisions stays attributable
        long after the code that produced a row is gone (read it back with
        ``tools/bench_trend.py`` or the observatory's ``/api/bench``).
        Returns the row id.
        """
        from repro.campaign.results import PAYLOAD_VERSION, simulator_fingerprint

        stamped = dict(payload)
        stamped.setdefault("payload_version", PAYLOAD_VERSION)
        stamped.setdefault("sim_version", simulator_fingerprint())
        stamped.setdefault(
            "recorded_at_utc",
            datetime.now(timezone.utc).isoformat(timespec="seconds"))
        cur = self._conn.execute(
            "INSERT INTO benchmarks (name, payload, created_at) VALUES (?, ?, ?)",
            (name, json.dumps(stamped, sort_keys=True), time.time()),
        )
        return cur.lastrowid

    def benchmark_rows(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """Stored benchmark measurements, oldest first (optionally one series)."""
        query = "SELECT id, name, payload, created_at FROM benchmarks"
        params: Tuple = ()
        if name is not None:
            query += " WHERE name = ?"
            params = (name,)
        query += " ORDER BY id"
        return [
            {"id": row[0], "name": row[1], "payload": json.loads(row[2]),
             "created_at": row[3]}
            for row in self._conn.execute(query, params)
        ]

    # -- reading ----------------------------------------------------------------------
    def _row(self, raw: Tuple) -> ExperimentRow:
        data = dict(zip(_COLUMNS, raw))
        return ExperimentRow(
            key=data["key"],
            config=config_from_dict(json.loads(data["config"])),
            status=data["status"],
            metrics=json.loads(data["metrics"]) if data["metrics"] else None,
            error=data["error"],
            worker=data["worker"],
            attempts=data["attempts"],
            created_at=data["created_at"],
            started_at=data["started_at"],
            finished_at=data["finished_at"],
            duration_s=data["duration_s"],
            lease_expires_at=data["lease_expires_at"],
            priority=data["priority"],
        )

    def get(self, key_or_config) -> Optional[ExperimentRow]:
        """Look up one experiment by key or by config (None if absent)."""
        key = (key_or_config if isinstance(key_or_config, str)
               else scenario_key(key_or_config))
        raw = self._conn.execute(
            f"SELECT {','.join(_COLUMNS)} FROM experiments WHERE key = ?", (key,)
        ).fetchone()
        return self._row(raw) if raw is not None else None

    def rows(self, status: Optional[str] = None) -> List[ExperimentRow]:
        """All experiments, optionally filtered by status, oldest first."""
        query = f"SELECT {','.join(_COLUMNS)} FROM experiments"
        params: Tuple = ()
        if status is not None:
            query += " WHERE status = ?"
            params = (status,)
        query += " ORDER BY created_at, key"
        return [self._row(raw) for raw in self._conn.execute(query, params)]

    def counts(self, keys: Optional[Sequence[str]] = None) -> Dict[str, int]:
        """Experiment count per status (zero-filled for absent statuses).

        ``keys`` restricts the tally to those experiments.
        """
        out = {status: 0 for status in STATUSES}
        query = "SELECT status, COUNT(*) FROM experiments"
        params: Tuple = ()
        if keys is not None:
            if not keys:
                return out
            query += f" WHERE key IN ({','.join('?' for _ in keys)})"
            params = tuple(keys)
        query += " GROUP BY status"
        for status, count in self._conn.execute(query, params):
            out[status] = count
        return out

    def generation(self) -> Tuple[int, ...]:
        """Cheap *generation stamp*: changes whenever the store's contents do.

        The stamp combines sqlite's ``data_version`` pragma (bumped every
        time another connection commits a change — claims, lease renewals,
        results, anything), the experiment row count + high-water ``rowid``
        (inserts, including re-inserts after deletes), the per-status counts
        (state transitions made through *this* connection, which
        ``data_version`` does not see), and the benchmark table's high-water
        id.  All probes are index-speed aggregate queries — no payloads are
        deserialised — so the stamp is cheap enough to take per request: the
        observatory's response cache keys every expensive aggregate on it,
        and equal stamps guarantee the cached aggregate is still current.
        """
        data_version = self._conn.execute("PRAGMA data_version").fetchone()[0]
        n_rows, max_rowid = self._conn.execute(
            "SELECT COUNT(*), COALESCE(MAX(rowid), 0) FROM experiments"
        ).fetchone()
        counts = self.counts()
        bench_max = self._conn.execute(
            "SELECT COALESCE(MAX(id), 0) FROM benchmarks").fetchone()[0]
        return (data_version, n_rows, max_rowid,
                *(counts[status] for status in STATUSES), bench_max)

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM experiments").fetchone()[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CampaignStore {self.path!r} {self.counts()}>"
