"""Stored-metrics result objects.

A campaign worker cannot ship the whole :class:`~repro.experiments.runner.
ScenarioResult` back through the store (it holds the full simulated
application state); instead it stores the JSON *metrics payload* — every
scalar the figures read, plus the per-stage checkpoint breakdown.
:class:`StoredResult` wraps that payload behind the same property API as
``ScenarioResult``, so figure code works identically on live and on stored
results.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.metrics import CheckpointBreakdown
from repro.experiments.config import ScenarioConfig

#: payload format version, bump when the metric set changes so stale stores
#: are detected instead of silently missing keys (v3 added the measured
#: failure-recovery metrics; v4 the recovery-orchestration metrics:
#: availability, recovery rank-seconds, spare/concurrency counters; v5 the
#: storage-hierarchy metrics: per-tier bytes written/read, partner copies,
#: outages survived, spare refills, survived flag; v6 the telemetry metrics:
#: phase-attributed time breakdowns from the metrics registry and the flat
#: registry snapshot; v7 the elastic-restart metrics: ranks after restart,
#: units migrated, repartition bytes shipped, shrink restarts; v8 the
#: continuous-telemetry series summaries: peak/mean NIC utilization, max
#: inbox depth, peak retained sender-log bytes, storage inflight peak and
#: the sampler bin geometry — empty unless the run was sampled)
PAYLOAD_VERSION = 8

#: simulation-kernel schema revision: bump whenever a kernel/network change is
#: *allowed* to alter simulated results (rev 1 = seed coroutine kernel,
#: rev 2 = fast-path kernel — bit-identical by the determinism-parity tests,
#: but stamped so archived stores are traceable to the kernel that filled them)
KERNEL_SCHEMA_REV = 2


def simulator_fingerprint() -> str:
    """Version stamp written into every stored payload.

    Combines the package version with the kernel schema revision; a stored
    row whose stamp differs from the running simulator's is invalidated by
    the campaign executor instead of being served from cache.
    """
    from repro import __version__

    return f"{__version__}+kernel-r{KERNEL_SCHEMA_REV}"


def payload_stamp() -> Dict[str, object]:
    """The payload entries that must match for a stored row to be served."""
    return {"version": PAYLOAD_VERSION, "sim_version": simulator_fingerprint()}


def metrics_payload(result) -> Dict[str, object]:
    """Extract the JSON-safe metrics payload from a ``ScenarioResult``."""
    breakdown = result.breakdown()
    return {
        "version": PAYLOAD_VERSION,
        "sim_version": simulator_fingerprint(),
        "rank0_ckpt_end_times": list(result.rank0_checkpoint_end_times),
        "makespan": result.makespan,
        "aggregate_checkpoint_time": result.aggregate_checkpoint_time,
        "aggregate_coordination_time": result.aggregate_coordination_time,
        "aggregate_restart_time": result.aggregate_restart_time,
        "resend_bytes": result.resend_bytes,
        "resend_operations": result.resend_operations,
        "checkpoints_completed": result.checkpoints_completed,
        "mean_checkpoint_duration": result.mean_checkpoint_duration,
        "gap_fraction": result.gap_fraction,
        "breakdown_stages": dict(breakdown.stages),
        "breakdown_n_records": breakdown.n_records,
        "n_groups": (len(result.groupset.all_groups())
                     if result.groupset is not None else None),
        # measured failure-injection metrics (all zero for failure-free runs)
        "failures_injected": result.failures_injected,
        "rollback_ranks_total": result.rollback_ranks_total,
        "measured_lost_work_s": result.measured_lost_work_s,
        "measured_recovery_time_s": result.measured_recovery_time_s,
        "replayed_bytes": result.replayed_bytes,
        "replayed_messages": result.replayed_messages,
        "skipped_bytes": result.skipped_bytes,
        # recovery-orchestration metrics (availability experiments)
        "recovery_rank_seconds": result.recovery_rank_seconds,
        "availability": result.availability,
        "spare_migrations": result.spare_migrations,
        "inplace_reboots": result.inplace_reboots,
        "aborted_recoveries": result.aborted_recoveries,
        "max_concurrent_recoveries": result.max_concurrent_recoveries,
        # storage-hierarchy metrics (v5; zero/empty for single-tier runs)
        "survived": int(result.survived),
        "tier_bytes_written": dict(result.tier_bytes_written),
        "tier_bytes_read": dict(result.tier_bytes_read),
        "partner_copies": result.partner_copies,
        "partner_copies_lost": result.partner_copies_lost,
        "replication_stalls": result.replication_stalls,
        "outages_survived": result.outages_survived,
        "spare_refills": result.spare_refills,
        "skipped_in_recovery": result.skipped_in_recovery,
        # telemetry metrics (v6): phase-attributed time breakdowns and the
        # flat registry snapshot harvested at the end of the run
        "phase_times": getattr(result, "phase_times", {}) or {},
        "registry_metrics": (result.telemetry.metrics.as_flat_dict()
                             if getattr(result, "telemetry", None) is not None
                             else {}),
        # elastic-restart metrics (v7; zero/None without shrink restarts)
        "ranks_after_restart": result.ranks_after_restart,
        "units_migrated": result.units_migrated,
        "repartition_bytes_shipped": result.repartition_bytes_shipped,
        "shrink_restarts": result.shrink_restarts,
        # continuous-telemetry series summaries (v8; empty unless sampled)
        "sampler_summary": dict(getattr(result, "sampler_summary", {}) or {}),
    }


class StoredResult:
    """Metrics of one finished scenario, read back from the campaign store.

    Exposes the same metric properties as
    :class:`~repro.experiments.runner.ScenarioResult` so the figure
    generators accept either interchangeably.
    """

    def __init__(self, config: ScenarioConfig, metrics: Dict[str, object]) -> None:
        self.config = config
        self.metrics = metrics

    # -- mirrored metric API ---------------------------------------------------------
    @property
    def makespan(self) -> float:
        """End-to-end execution time of the application (including checkpoints)."""
        return self.metrics["makespan"]

    @property
    def aggregate_checkpoint_time(self) -> float:
        """Sum of per-process checkpoint durations."""
        return self.metrics["aggregate_checkpoint_time"]

    @property
    def aggregate_coordination_time(self) -> float:
        """Sum of per-process coordination time (checkpoint minus image dump)."""
        return self.metrics["aggregate_coordination_time"]

    @property
    def aggregate_restart_time(self) -> float:
        """Sum of per-process restart durations (0 if restart was not simulated)."""
        return self.metrics["aggregate_restart_time"]

    @property
    def resend_bytes(self) -> int:
        """Total bytes replayed during restart."""
        return self.metrics["resend_bytes"]

    @property
    def resend_operations(self) -> int:
        """Total resend operations during restart."""
        return self.metrics["resend_operations"]

    @property
    def checkpoints_completed(self) -> int:
        """Number of checkpoint waves completed."""
        return self.metrics["checkpoints_completed"]

    @property
    def mean_checkpoint_duration(self) -> float:
        """Average per-process checkpoint duration."""
        return self.metrics["mean_checkpoint_duration"]

    @property
    def gap_fraction(self) -> float:
        """Fraction of checkpoint-window time with no application progress."""
        return self.metrics["gap_fraction"]

    @property
    def n_groups(self) -> Optional[int]:
        """Number of groups the protocol used (None for VCL)."""
        return self.metrics.get("n_groups")

    @property
    def rank0_checkpoint_end_times(self) -> List[float]:
        """Completion times of rank 0's checkpoints (drives work-loss models)."""
        return list(self.metrics.get("rank0_ckpt_end_times", []))

    # -- measured failure-injection metrics -------------------------------------
    @property
    def failures_injected(self) -> int:
        """Number of failures that actually killed a rank mid-run."""
        return self.metrics.get("failures_injected", 0)

    @property
    def rollback_ranks_total(self) -> int:
        """Total rank rollbacks across all injected failures."""
        return self.metrics.get("rollback_ranks_total", 0)

    @property
    def measured_lost_work_s(self) -> float:
        """Measured work discarded by rollbacks (sums over ranks and failures)."""
        return self.metrics.get("measured_lost_work_s", 0.0)

    @property
    def measured_recovery_time_s(self) -> float:
        """Slowest failure-to-resumption time over all injected failures."""
        return self.metrics.get("measured_recovery_time_s", 0.0)

    @property
    def replayed_bytes(self) -> int:
        """Bytes resent from sender logs during live recoveries."""
        return self.metrics.get("replayed_bytes", 0)

    @property
    def replayed_messages(self) -> int:
        """Log entries resent during live recoveries."""
        return self.metrics.get("replayed_messages", 0)

    @property
    def skipped_bytes(self) -> int:
        """Re-executed send bytes suppressed by skip accounting."""
        return self.metrics.get("skipped_bytes", 0)

    # -- recovery-orchestration metrics ------------------------------------------
    @property
    def recovery_rank_seconds(self) -> float:
        """Rank-seconds spent recovering (Σ per-rank failure→resumption time)."""
        return self.metrics.get("recovery_rank_seconds", 0.0)

    @property
    def availability(self) -> float:
        """Fraction of total rank-time spent making forward progress."""
        return self.metrics.get("availability", 1.0)

    @property
    def spare_migrations(self) -> int:
        """Victim ranks relaunched on spare nodes."""
        return self.metrics.get("spare_migrations", 0)

    @property
    def inplace_reboots(self) -> int:
        """Victim ranks that waited out a dead node's reboot in place."""
        return self.metrics.get("inplace_reboots", 0)

    @property
    def aborted_recoveries(self) -> int:
        """Recovery attempts superseded by a failure landing mid-recovery."""
        return self.metrics.get("aborted_recoveries", 0)

    @property
    def max_concurrent_recoveries(self) -> int:
        """Peak number of simultaneously in-flight group recoveries."""
        return self.metrics.get("max_concurrent_recoveries", 0)

    # -- storage-hierarchy metrics -------------------------------------------------
    @property
    def survived(self) -> bool:
        """False when the run was declared unsurvivable (required image lost)."""
        return bool(self.metrics.get("survived", 1))

    @property
    def tier_bytes_written(self) -> Dict[str, int]:
        """Checkpoint bytes written per storage level (L1/L2/L3)."""
        return dict(self.metrics.get("tier_bytes_written", {}))

    @property
    def tier_bytes_read(self) -> Dict[str, int]:
        """Checkpoint bytes read back per storage level (L1/L2/L3)."""
        return dict(self.metrics.get("tier_bytes_read", {}))

    @property
    def partner_copies(self) -> int:
        """Completed L2 partner replications."""
        return self.metrics.get("partner_copies", 0)

    @property
    def partner_copies_lost(self) -> int:
        """Partner replications that died with an endpoint mid-copy."""
        return self.metrics.get("partner_copies_lost", 0)

    @property
    def replication_stalls(self) -> int:
        """Checkpoints that waited on the bounded L2 in-flight buffer."""
        return self.metrics.get("replication_stalls", 0)

    @property
    def outages_survived(self) -> int:
        """Correlated switch outages this run recovered from end to end."""
        return self.metrics.get("outages_survived", 0)

    @property
    def spare_refills(self) -> int:
        """Rebooted victim nodes that rejoined the spare pool."""
        return self.metrics.get("spare_refills", 0)

    @property
    def skipped_in_recovery(self) -> int:
        """Per-group checkpoint ticks skipped because the group was recovering."""
        return self.metrics.get("skipped_in_recovery", 0)

    # -- elastic-restart metrics (v7) ---------------------------------------------
    @property
    def shrink_restarts(self) -> int:
        """Recoveries that shrank the job onto the survivors."""
        return self.metrics.get("shrink_restarts", 0)

    @property
    def ranks_after_restart(self) -> Optional[int]:
        """Ranks actively computing at the end (None = never shrank)."""
        return self.metrics.get("ranks_after_restart")

    @property
    def units_migrated(self) -> int:
        """Work units that changed owner across all shrink restarts."""
        return self.metrics.get("units_migrated", 0)

    @property
    def repartition_bytes_shipped(self) -> int:
        """Image bytes shipped dead rank → adopter during shrink restarts."""
        return self.metrics.get("repartition_bytes_shipped", 0)

    # -- continuous-telemetry series summaries (v8) -------------------------------
    @property
    def sampler_summary(self) -> Dict[str, float]:
        """Compact time-series summaries (empty unless the run was sampled)."""
        return dict(self.metrics.get("sampler_summary", {}) or {})

    @property
    def nic_util_peak(self) -> float:
        """Peak fraction of NICs with an in-flight transfer in any bin."""
        return self.sampler_summary.get("nic_util_peak", 0.0)

    @property
    def nic_util_mean(self) -> float:
        """Mean over bins of the busy-NIC fraction."""
        return self.sampler_summary.get("nic_util_mean", 0.0)

    @property
    def inbox_depth_max(self) -> float:
        """Deepest sampled inbox across all ranks and bins."""
        return self.sampler_summary.get("inbox_depth_max", 0.0)

    @property
    def log_bytes_peak(self) -> float:
        """Peak total sender-log retained bytes across bins."""
        return self.sampler_summary.get("log_bytes_peak", 0.0)

    # -- telemetry metrics (v6) ---------------------------------------------------
    @property
    def phase_times(self) -> Dict[str, object]:
        """Phase-attributed time breakdown harvested from the metrics registry."""
        return dict(self.metrics.get("phase_times", {}))

    @property
    def registry_metrics(self) -> Dict[str, object]:
        """Flat ``{name: value}`` snapshot of the run's metrics registry."""
        return dict(self.metrics.get("registry_metrics", {}))

    @property
    def sim_version(self) -> Optional[str]:
        """Simulator fingerprint the payload was produced with."""
        return self.metrics.get("sim_version")

    def breakdown(self) -> CheckpointBreakdown:
        """Average per-stage checkpoint breakdown (Figure 9).

        v6 payloads are read from ``phase_times`` (the metrics-registry
        harvest — one source of truth for phase-attributed time); older
        payloads fall back to the legacy ``breakdown_stages`` mirror, which
        carried the same per-stage means.
        """
        checkpoint = (self.metrics.get("phase_times") or {}).get("checkpoint") or {}
        n = checkpoint.get("records", 0)
        if n:
            return CheckpointBreakdown(
                stages={name: total / n
                        for name, total in (checkpoint.get("stages") or {}).items()},
                n_records=n,
            )
        return CheckpointBreakdown(
            stages=dict(self.metrics.get("breakdown_stages", {})),
            n_records=self.metrics.get("breakdown_n_records", 0),
        )

    def scalar(self, name: str) -> object:
        """Look up one payload entry by name (for export helpers)."""
        return self.metrics[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (f"<StoredResult {cfg.workload}/{cfg.method}/n={cfg.n_ranks}/"
                f"seed={cfg.seed} makespan={self.makespan:.3f}>")
