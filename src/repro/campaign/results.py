"""Stored-metrics result objects.

A campaign worker cannot ship the whole :class:`~repro.experiments.runner.
ScenarioResult` back through the store (it holds the full simulated
application state); instead it stores the JSON *metrics payload* — every
scalar the figures read, plus the per-stage checkpoint breakdown.
:class:`StoredResult` wraps that payload behind the same property API as
``ScenarioResult``, so figure code works identically on live and on stored
results.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.metrics import CheckpointBreakdown
from repro.experiments.config import ScenarioConfig

#: payload format version, bump when the metric set changes so stale stores
#: are detected instead of silently missing keys
PAYLOAD_VERSION = 2

#: simulation-kernel schema revision: bump whenever a kernel/network change is
#: *allowed* to alter simulated results (rev 1 = seed coroutine kernel,
#: rev 2 = fast-path kernel — bit-identical by the determinism-parity tests,
#: but stamped so archived stores are traceable to the kernel that filled them)
KERNEL_SCHEMA_REV = 2


def simulator_fingerprint() -> str:
    """Version stamp written into every stored payload.

    Combines the package version with the kernel schema revision; a stored
    row whose stamp differs from the running simulator's is invalidated by
    the campaign executor instead of being served from cache.
    """
    from repro import __version__

    return f"{__version__}+kernel-r{KERNEL_SCHEMA_REV}"


def payload_stamp() -> Dict[str, object]:
    """The payload entries that must match for a stored row to be served."""
    return {"version": PAYLOAD_VERSION, "sim_version": simulator_fingerprint()}


def metrics_payload(result) -> Dict[str, object]:
    """Extract the JSON-safe metrics payload from a ``ScenarioResult``."""
    breakdown = result.breakdown()
    return {
        "version": PAYLOAD_VERSION,
        "sim_version": simulator_fingerprint(),
        "rank0_ckpt_end_times": list(result.rank0_checkpoint_end_times),
        "makespan": result.makespan,
        "aggregate_checkpoint_time": result.aggregate_checkpoint_time,
        "aggregate_coordination_time": result.aggregate_coordination_time,
        "aggregate_restart_time": result.aggregate_restart_time,
        "resend_bytes": result.resend_bytes,
        "resend_operations": result.resend_operations,
        "checkpoints_completed": result.checkpoints_completed,
        "mean_checkpoint_duration": result.mean_checkpoint_duration,
        "gap_fraction": result.gap_fraction,
        "breakdown_stages": dict(breakdown.stages),
        "breakdown_n_records": breakdown.n_records,
        "n_groups": (len(result.groupset.all_groups())
                     if result.groupset is not None else None),
    }


class StoredResult:
    """Metrics of one finished scenario, read back from the campaign store.

    Exposes the same metric properties as
    :class:`~repro.experiments.runner.ScenarioResult` so the figure
    generators accept either interchangeably.
    """

    def __init__(self, config: ScenarioConfig, metrics: Dict[str, object]) -> None:
        self.config = config
        self.metrics = metrics

    # -- mirrored metric API ---------------------------------------------------------
    @property
    def makespan(self) -> float:
        """End-to-end execution time of the application (including checkpoints)."""
        return self.metrics["makespan"]

    @property
    def aggregate_checkpoint_time(self) -> float:
        """Sum of per-process checkpoint durations."""
        return self.metrics["aggregate_checkpoint_time"]

    @property
    def aggregate_coordination_time(self) -> float:
        """Sum of per-process coordination time (checkpoint minus image dump)."""
        return self.metrics["aggregate_coordination_time"]

    @property
    def aggregate_restart_time(self) -> float:
        """Sum of per-process restart durations (0 if restart was not simulated)."""
        return self.metrics["aggregate_restart_time"]

    @property
    def resend_bytes(self) -> int:
        """Total bytes replayed during restart."""
        return self.metrics["resend_bytes"]

    @property
    def resend_operations(self) -> int:
        """Total resend operations during restart."""
        return self.metrics["resend_operations"]

    @property
    def checkpoints_completed(self) -> int:
        """Number of checkpoint waves completed."""
        return self.metrics["checkpoints_completed"]

    @property
    def mean_checkpoint_duration(self) -> float:
        """Average per-process checkpoint duration."""
        return self.metrics["mean_checkpoint_duration"]

    @property
    def gap_fraction(self) -> float:
        """Fraction of checkpoint-window time with no application progress."""
        return self.metrics["gap_fraction"]

    @property
    def n_groups(self) -> Optional[int]:
        """Number of groups the protocol used (None for VCL)."""
        return self.metrics.get("n_groups")

    @property
    def rank0_checkpoint_end_times(self) -> List[float]:
        """Completion times of rank 0's checkpoints (drives work-loss models)."""
        return list(self.metrics.get("rank0_ckpt_end_times", []))

    @property
    def sim_version(self) -> Optional[str]:
        """Simulator fingerprint the payload was produced with."""
        return self.metrics.get("sim_version")

    def breakdown(self) -> CheckpointBreakdown:
        """Average per-stage checkpoint breakdown (Figure 9)."""
        return CheckpointBreakdown(
            stages=dict(self.metrics.get("breakdown_stages", {})),
            n_records=self.metrics.get("breakdown_n_records", 0),
        )

    def scalar(self, name: str) -> object:
        """Look up one payload entry by name (for export helpers)."""
        return self.metrics[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (f"<StoredResult {cfg.workload}/{cfg.method}/n={cfg.n_ranks}/"
                f"seed={cfg.seed} makespan={self.makespan:.3f}>")
