"""Store-backed campaign status: counts, rates, ETA, failures, leases.

The read side of the campaign observatory.  Everything here is a pure
query over the :class:`~repro.campaign.store.CampaignStore` — no claims,
no mutation — so any number of watchers (the ``--watch`` loop in
``reproduce_paper.py``, the HTML dashboard, a CI step) can poll a live
store while workers drain it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import Table

from .store import STATUSES, CampaignStore

__all__ = ["CampaignProgress", "campaign_progress", "progress_tables"]


@dataclass
class CampaignProgress:
    """A point-in-time snapshot of one campaign store."""

    #: rows per lifecycle status (every status key always present)
    counts: Dict[str, int]
    #: completed-row wall durations (seconds), newest last
    durations_s: List[float] = field(default_factory=list)
    #: completed rows per wall-clock second, from finished_at spread
    throughput_per_s: float = 0.0
    #: projected seconds to drain pending+running at the observed rates
    eta_s: Optional[float] = None
    #: (key, worker, seconds until lease expiry) for running rows;
    #: negative seconds = expired lease (worker presumed dead)
    leases: List[Tuple[str, str, float]] = field(default_factory=list)
    #: error head per failed row key
    failures: Dict[str, str] = field(default_factory=dict)
    #: wall-clock instant this snapshot was taken
    observed_at: float = 0.0

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def is_empty(self) -> bool:
        """True for a freshly-created store with no experiment rows at all."""
        return self.total == 0

    @property
    def done_fraction(self) -> float:
        total = self.total
        return self.counts.get("done", 0) / total if total else 0.0

    @property
    def expired_leases(self) -> int:
        return sum(1 for _, _, left in self.leases if left <= 0)

    @property
    def mean_duration_s(self) -> float:
        if not self.durations_s:
            return 0.0
        return sum(self.durations_s) / len(self.durations_s)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (the observatory server's ``/api/progress``)."""
        return {
            "counts": dict(self.counts),
            "total": self.total,
            "is_empty": self.is_empty,
            "done_fraction": self.done_fraction,
            "throughput_per_s": self.throughput_per_s,
            "eta_s": self.eta_s,
            "mean_duration_s": self.mean_duration_s,
            "durations_s": list(self.durations_s),
            "leases": [
                {"key": key, "worker": worker, "seconds_left": left}
                for key, worker, left in self.leases
            ],
            "expired_leases": self.expired_leases,
            "failures": dict(self.failures),
            "observed_at": self.observed_at,
        }


def campaign_progress(store: CampaignStore,
                      now: Optional[float] = None,
                      max_failures: int = 10,
                      error_head: int = 160) -> CampaignProgress:
    """Snapshot ``store``'s progress at wall-clock instant ``now``.

    Throughput comes from the spread of ``finished_at`` stamps over the
    done rows; the ETA projects the remaining (pending + running) rows at
    that rate, falling back to mean duration when only one row finished.
    """
    if now is None:
        now = time.time()
    counts = {status: 0 for status in STATUSES}
    counts.update(store.counts())

    done_rows = store.rows(status="done")
    durations = [row.duration_s for row in done_rows if row.duration_s is not None]
    finished = sorted(row.finished_at for row in done_rows
                      if row.finished_at is not None)
    throughput = 0.0
    if len(finished) >= 2 and finished[-1] > finished[0]:
        throughput = (len(finished) - 1) / (finished[-1] - finished[0])

    remaining = counts["pending"] + counts["running"]
    eta: Optional[float] = None
    if sum(counts.values()) == 0:
        eta = None  # empty store: "drained in 0s" would be nonsense
    elif remaining == 0:
        eta = 0.0
    elif throughput > 0:
        eta = remaining / throughput
    elif durations:
        eta = remaining * (sum(durations) / len(durations))

    leases = [
        (row.key, row.worker or "?",
         (row.lease_expires_at - now) if row.lease_expires_at is not None else 0.0)
        for row in store.rows(status="running")
    ]

    failures: Dict[str, str] = {}
    for row in store.rows(status="failed")[:max_failures]:
        head = (row.error or "").strip().splitlines()
        failures[row.key] = head[0][:error_head] if head else ""

    return CampaignProgress(counts=counts, durations_s=durations,
                            throughput_per_s=throughput, eta_s=eta,
                            leases=leases, failures=failures,
                            observed_at=now)


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "unknown"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f} h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f} min"
    return f"{eta_s:.0f} s"


def progress_tables(progress: CampaignProgress) -> List[Table]:
    """Render a snapshot as reporting tables (the ``--watch`` text mode).

    An empty (freshly-created) store renders an explicit "no rows yet"
    state instead of degenerate 0% / 0 rows/s / zero-ETA output.
    """
    status = Table("Campaign status", ["status", "rows"])
    for name in STATUSES:
        status.add_row(name, progress.counts.get(name, 0))
    status.add_row("total", progress.total)

    rates = Table("Rates", ["metric", "value"])
    if progress.is_empty:
        rates.add_row("state", "no rows yet — the store holds no experiments")
    else:
        rates.add_row("done fraction", f"{progress.done_fraction:.1%}")
        rates.add_row("throughput", f"{progress.throughput_per_s:.3f} rows/s")
        rates.add_row("mean row duration", f"{progress.mean_duration_s:.2f} s")
        rates.add_row("ETA", _fmt_eta(progress.eta_s))

    tables = [status, rates]
    if progress.leases:
        leases = Table("Lease health (running rows)",
                       ["key", "worker", "lease s left"])
        for key, worker, left in progress.leases:
            leases.add_row(key[:12], worker, f"{left:.0f}")
        tables.append(leases)
    if progress.failures:
        failed = Table("Failures", ["key", "error"])
        for key, error in progress.failures.items():
            failed.add_row(key[:12], error)
        tables.append(failed)
    return tables
