"""Prometheus text exposition for the campaign observatory.

Renders a :class:`~repro.campaign.progress.CampaignProgress` snapshot (plus
the benchmark side table and the server's own
:class:`~repro.obs.metrics.MetricsRegistry`) in the Prometheus text
exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one
``name{labels} value`` sample per line.  Everything here is pure string
building over an already-taken snapshot — the expensive store reads happen
once behind the server's generation cache, and a scrape of a quiet store is
a cache hit.

:func:`parse_exposition` is the matching minimal parser: CI and the tests
use it to prove a scrape is well-formed (every sample line matches the
grammar and belongs to a typed family) without installing a Prometheus
client.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.progress import CampaignProgress
from repro.campaign.store import STATUSES
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "MetricFamily",
    "campaign_families",
    "registry_families",
    "render_exposition",
    "parse_exposition",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)')


@dataclass
class MetricFamily:
    """One exposition family: typed, documented, with labelled samples."""

    name: str
    kind: str  # "gauge" | "counter"
    help: str
    #: (labels, value) pairs; labels may be empty
    samples: List[Tuple[Dict[str, str], float]] = field(default_factory=list)

    def add(self, value: float, **labels: str) -> "MetricFamily":
        self.samples.append((dict(labels), float(value)))
        return self


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_exposition(families: Iterable[MetricFamily]) -> str:
    """Render families as Prometheus text exposition (format 0.0.4)."""
    lines: List[str] = []
    for family in families:
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric name {family.name!r}")
        if family.kind not in ("gauge", "counter"):
            raise ValueError(f"unsupported metric type {family.kind!r}")
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, value in family.samples:
            if labels:
                inner = ",".join(
                    f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items()))
                lines.append(f"{family.name}{{{inner}}} {_fmt_value(value)}")
            else:
                lines.append(f"{family.name} {_fmt_value(value)}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text back into ``{name: {type, help, samples}}``.

    Raises ``ValueError`` on any malformed line, a sample without a ``TYPE``
    header, or an unparseable value — the validation CI runs against a live
    ``/metrics`` scrape.  ``samples`` maps the rendered label string (or
    ``""``) to the float value.
    """
    families: Dict[str, Dict[str, object]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            families.setdefault(parts[0], {"samples": {}})["help"] = (
                parts[1] if len(parts) > 1 else "")
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ", 1)
            if len(parts) != 2 or parts[1] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            families.setdefault(parts[0], {"samples": {}})["type"] = parts[1]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        name = match.group("name")
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = "".join(m.group(0) for m in _LABEL_RE.finditer(raw_labels))
            if consumed.rstrip(",") != raw_labels.rstrip(","):
                raise ValueError(f"line {lineno}: malformed labels {raw_labels!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: unparseable value in {line!r}") from exc
        base = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                base = name[:-len(suffix)]
                break
        family = families.get(base)
        if family is None or "type" not in family:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE header")
        family["samples"][raw_labels or ""] = value
    return families


# ------------------------------------------------------------------ builders
def campaign_families(progress: CampaignProgress,
                      bench_rows: Sequence[Dict[str, object]] = (),
                      ) -> List[MetricFamily]:
    """The store-derived families of one ``/metrics`` scrape.

    Row counts by status, done fraction, throughput, ETA, lease health and
    mean task duration come from the progress snapshot; the newest
    ``events_per_s`` per benchmark scenario comes from the ``benchmarks``
    side table (``bench_rows`` as returned by
    :meth:`CampaignStore.benchmark_rows`).
    """
    rows = MetricFamily("repro_campaign_rows", "gauge",
                        "Experiment rows by lifecycle status")
    for status in STATUSES:
        rows.add(progress.counts.get(status, 0), status=status)

    families = [
        rows,
        MetricFamily("repro_campaign_experiments", "gauge",
                     "Total experiment rows in the store").add(progress.total),
        MetricFamily("repro_campaign_done_fraction", "gauge",
                     "Fraction of rows in status done").add(progress.done_fraction),
        MetricFamily("repro_campaign_throughput_rows_per_second", "gauge",
                     "Completed rows per wall-clock second "
                     "(finished_at spread)").add(progress.throughput_per_s),
        MetricFamily("repro_campaign_mean_task_duration_seconds", "gauge",
                     "Mean wall duration of completed rows"
                     ).add(progress.mean_duration_s),
    ]
    if progress.eta_s is not None:
        families.append(MetricFamily(
            "repro_campaign_eta_seconds", "gauge",
            "Projected seconds to drain pending+running rows").add(progress.eta_s))
    leases = MetricFamily("repro_campaign_leases", "gauge",
                          "Running-row claims by lease state")
    expired = progress.expired_leases
    leases.add(len(progress.leases) - expired, state="held")
    leases.add(expired, state="expired")
    families.append(leases)

    latest: Dict[Tuple[str, str], float] = {}
    for row in bench_rows:
        payload = row.get("payload") or {}
        scenario = payload.get("scenario")
        rate = payload.get("events_per_s")
        if scenario is None or rate is None:
            continue
        latest[(str(row.get("name", "benchmark")), str(scenario))] = float(rate)
    if latest:
        bench = MetricFamily("repro_benchmark_events_per_second", "gauge",
                             "Newest recorded benchmark events/sec per scenario")
        for (name, scenario), rate in sorted(latest.items()):
            bench.add(rate, benchmark=name, scenario=scenario)
        families.append(bench)
    return families


def registry_families(registry: MetricsRegistry,
                      prefix: str = "repro_") -> List[MetricFamily]:
    """Expose a :class:`MetricsRegistry`'s instruments as exposition families.

    Names translate dot-to-underscore (``server.cache.hit`` →
    ``repro_server_cache_hit_total``); counters gain the conventional
    ``_total`` suffix, tags become labels, histograms expand to ``_sum`` /
    ``_count`` gauges.
    """
    by_name: Dict[str, MetricFamily] = {}

    def family(name: str, kind: str, help_text: str) -> MetricFamily:
        if name not in by_name:
            by_name[name] = MetricFamily(name, kind, help_text)
        return by_name[name]

    for inst in registry:
        base = prefix + inst.name.replace(".", "_").replace("-", "_")
        labels = {str(k): str(v) for k, v in inst.tags}
        if isinstance(inst, Counter):
            family(base + "_total", "counter",
                   f"Counter {inst.name}").add(inst.value, **labels)
        elif isinstance(inst, Gauge):
            family(base, "gauge", f"Gauge {inst.name}").add(inst.value, **labels)
        elif isinstance(inst, Histogram):
            family(base + "_sum", "gauge",
                   f"Histogram {inst.name} total").add(inst.total, **labels)
            family(base + "_count", "gauge",
                   f"Histogram {inst.name} observations").add(inst.count, **labels)
    return [by_name[name] for name in sorted(by_name)]
