"""repro — reproduction of "Scalable Group-based Checkpoint/Restart for
Large-Scale Message-passing Systems" (Ho, Wang, Lau — IPDPS 2008).

The package is organised bottom-up:

* :mod:`repro.sim` — a generator-based discrete-event simulation kernel,
* :mod:`repro.cluster` — nodes, network, storage and failure models,
* :mod:`repro.mpi` — an MPI-like runtime, collectives, and the trace/tracer,
* :mod:`repro.ckpt` — checkpoint substrates (BLCR model, sender logs) and the
  baseline protocols (blocking coordinated / Chandy–Lamport),
* :mod:`repro.core` — the paper's contribution: the group-based protocol,
  trace-assisted group formation, the checkpoint coordinator and restart,
* :mod:`repro.recovery` — recovery orchestration: concurrent group
  recoveries, failure-during-recovery supersession, spare-node placement,
* :mod:`repro.workloads` — HPL / NPB CG / NPB SP communication patterns,
* :mod:`repro.analysis` — metrics and report builders,
* :mod:`repro.experiments` — one entry point per paper figure/table,
* :mod:`repro.campaign` — persistent, parallel, resumable experiment sweeps
  (parameter grids → sqlite store → worker pool → exports).
"""

from repro.sim import Simulator, RandomStreams
from repro.cluster import Cluster, ClusterSpec, GIDEON_300
from repro.mpi import MpiRuntime, Tracer, TraceLog
from repro.ckpt import ProtocolConfig, CheckpointSchedule, one_shot, periodic
from repro.ckpt.presets import (
    norm_family,
    gp1_family,
    gp4_family,
    gp_family,
    gp_family_from_trace,
    vcl_family,
)
from repro.core import (
    GroupSet,
    GroupProtocolFamily,
    form_groups,
    CheckpointCoordinator,
    simulate_restart,
)
from repro.recovery import RecoveryManager, SparePool
from repro.workloads import HplWorkload, CgWorkload, SpWorkload
from repro.campaign import Campaign, CampaignStore, ParameterGrid

__version__ = "1.2.0"

__all__ = [
    "Simulator",
    "RandomStreams",
    "Cluster",
    "ClusterSpec",
    "GIDEON_300",
    "MpiRuntime",
    "Tracer",
    "TraceLog",
    "ProtocolConfig",
    "CheckpointSchedule",
    "one_shot",
    "periodic",
    "norm_family",
    "gp1_family",
    "gp4_family",
    "gp_family",
    "gp_family_from_trace",
    "vcl_family",
    "GroupSet",
    "GroupProtocolFamily",
    "form_groups",
    "CheckpointCoordinator",
    "simulate_restart",
    "RecoveryManager",
    "SparePool",
    "HplWorkload",
    "CgWorkload",
    "SpWorkload",
    "Campaign",
    "CampaignStore",
    "ParameterGrid",
    "__version__",
]
