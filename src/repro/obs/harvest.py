"""End-of-run harvest: legacy counters + records → registry and trace.

``harvest_scenario`` is called once per ``run_scenario`` after the simulation
finishes.  It absorbs the ad-hoc per-subsystem accounting — ``SimStats``,
``RankStats`` tallies, the ``CoordinatorReport``, storage-hierarchy and
recovery-manager stats dicts — into the metrics registry under the common
naming scheme, fills the ``phase.*`` histograms the overhead tables read, and
(when tracing) retro-emits wave-level spans from the checkpoint records.

The harvest happens after ``run_to_completion`` returns, so it can never
perturb the simulation; and because the phase histograms observe the exact
same record sequences, left to right, that the legacy ``analysis.metrics``
aggregators iterate, the registry totals are bit-identical to the values the
parity goldens pin down.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .telemetry import Telemetry

#: phase-histogram name prefixes (also the keys of the payload "phase_times")
CKPT_STAGE_PREFIX = "phase.checkpoint.stage."
RESTART_STAGE_PREFIX = "phase.restart.stage."
RECOVERY_PREFIX = "phase.recovery."


def harvest_app(app, telemetry: Telemetry) -> None:
    """Absorb an ``ApplicationResult`` into the registry (+ wave spans)."""
    m = telemetry.metrics

    # kernel counters: sim.events.* straight from SimStats
    sim = app.contexts[0].sim if app.contexts else None
    if sim is not None:
        m.counter("sim.events.processed").inc(sim.processed_events)
        m.merge_counts(sim.stats.as_dict(), prefix="sim.events.")

    # per-rank runtime tallies, summed (the per-rank split stays on RankStats)
    for ctx in app.contexts:
        st = ctx.stats
        m.counter("mpi.ops.executed").inc(st.ops_executed)
        m.counter("mpi.messages.sent").inc(st.messages_sent)
        m.counter("mpi.messages.received").inc(st.messages_received)
        m.counter("mpi.bytes.sent").inc(st.bytes_sent)
        m.counter("mpi.bytes.received").inc(st.bytes_received)
        m.counter("mpi.rollbacks").inc(st.rollbacks)
        m.counter("mpi.sends.skipped").inc(st.skipped_sends)
        m.counter("mpi.bytes.skipped").inc(st.skipped_bytes)
        m.histogram("mpi.time.compute").observe(st.compute_time)
        m.histogram("mpi.time.send").observe(st.send_time)
        m.histogram("mpi.time.recv_wait").observe(st.recv_wait_time)
        m.histogram("mpi.time.checkpoint").observe(st.checkpoint_time)

    # checkpoint phase histograms — observe records in the exact order
    # ``app.checkpoint_records`` yields them so totals match the legacy
    # ``stage_breakdown``/``aggregate_*`` float summation bit for bit
    records = app.checkpoint_records
    m.counter("ckpt.records").inc(len(records))
    for rec in records:
        m.histogram("phase.checkpoint.duration").observe(rec.duration)
        m.histogram("phase.checkpoint.coordination_time").observe(rec.coordination_time)
        m.counter("ckpt.bytes.image").inc(rec.image_bytes)
        m.counter("ckpt.bytes.log_flushed").inc(rec.log_bytes_flushed)
        for name, value in rec.stages.items():
            m.histogram(CKPT_STAGE_PREFIX + name).observe(value)

    # storage hierarchy counters
    stats = app.storage_stats or {}
    for tier, nbytes in stats.get("tier_bytes_written", {}).items():
        m.counter("storage.bytes.written", tier=tier).inc(nbytes)
    for tier, nbytes in stats.get("tier_bytes_read", {}).items():
        m.counter("storage.bytes.read", tier=tier).inc(nbytes)
    m.counter("storage.replication.started").inc(stats.get("partner_copies_started", 0))
    m.counter("storage.replication.completed").inc(stats.get("partner_copies_completed", 0))
    m.counter("storage.replication.lost").inc(stats.get("partner_copies_lost", 0))
    m.counter("storage.replication.stalls").inc(stats.get("replication_stalls", 0))

    # recovery-manager scheduling counters + per-report phase times
    m.merge_counts(app.recovery_stats or {}, prefix="recovery.")
    m.counter("recovery.reports").inc(len(app.recovery))
    for rep in app.recovery:
        detected = getattr(rep, "detected_at", None)
        completed = getattr(rep, "completed_at", None)
        if detected is not None:
            m.histogram(RECOVERY_PREFIX + "detection").observe(detected - rep.failure_time)
        if completed is not None:
            m.histogram(RECOVERY_PREFIX + "total").observe(completed - rep.failure_time)
        for rr in getattr(rep, "ranks", ()):
            m.histogram(RECOVERY_PREFIX + "rank_restart").observe(rr.recovery_time_s)
            m.histogram(RECOVERY_PREFIX + "lost_work").observe(rr.lost_work_s)

    if telemetry.tracing and records:
        _emit_wave_spans(telemetry, records)


def _emit_wave_spans(telemetry: Telemetry, records) -> None:
    """Retro-emit wave → per-group envelope spans from checkpoint records.

    Per-rank checkpoint spans are recorded live by the runtime; this adds the
    enclosing structure — one span per checkpoint wave (``ckpt_id``) and one
    child per group dump — on the dedicated ``waves`` track.
    """
    waves: Dict[int, Dict[int, list]] = {}
    for rec in records:
        waves.setdefault(rec.ckpt_id, {}).setdefault(rec.group_id, []).append(rec)
    tracer = telemetry.tracer
    for ckpt_id in sorted(waves):
        groups = waves[ckpt_id]
        allrecs = [rec for recs in groups.values() for rec in recs]
        wave = tracer.add(
            "checkpoint_wave",
            start=min(rec.start for rec in allrecs),
            end=max(rec.end for rec in allrecs),
            track="waves",
            category="ckpt",
            ckpt_id=ckpt_id,
            groups=len(groups),
            ranks=len(allrecs),
        )
        for group_id in sorted(groups):
            recs = groups[group_id]
            tracer.add(
                "group_dump",
                start=min(rec.start for rec in recs),
                end=max(rec.end for rec in recs),
                track="waves",
                category="ckpt",
                parent=wave,
                ckpt_id=ckpt_id,
                group_id=group_id,
                ranks=len(recs),
                image_bytes=sum(rec.image_bytes for rec in recs),
            )


def harvest_coordinator(report, telemetry: Telemetry) -> None:
    """Absorb a ``CoordinatorReport``'s wave counters."""
    m = telemetry.metrics
    m.counter("ckpt.waves.issued").inc(len(report.issued))
    m.counter("ckpt.waves.skipped").inc(report.skipped_waves)
    m.counter("ckpt.waves.deferred").inc(report.deferred_waves)
    m.counter("ckpt.waves.queued").inc(report.queued_waves)
    m.counter("ckpt.waves.skipped_in_recovery").inc(report.skipped_in_recovery)


def harvest_restart(restart, telemetry: Telemetry) -> None:
    """Absorb a whole-application ``RestartResult``'s stage times."""
    m = telemetry.metrics
    m.counter("restart.records").inc(len(restart.records))
    for rec in restart.records:
        m.histogram("phase.restart.duration").observe(rec.duration)
        for name, value in rec.stages.items():
            m.histogram(RESTART_STAGE_PREFIX + name).observe(value)


def harvest_scenario(result, telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Harvest a full ``ScenarioResult`` (app + coordinator + restart)."""
    if telemetry is None:
        telemetry = Telemetry(trace=False)
    harvest_app(result.app, telemetry)
    if result.coordinator_report is not None:
        harvest_coordinator(result.coordinator_report, telemetry)
    if result.restart is not None:
        harvest_restart(result.restart, telemetry)
    return telemetry


def phase_times(telemetry: Telemetry) -> Dict[str, Dict[str, Any]]:
    """Phase-attributed time breakdown read back from the registry.

    The campaign payload (v6) and the overhead tables consume this shape::

        {"checkpoint": {"records": N, "stages": {stage: total_seconds}},
         "restart":    {"records": M, "stages": {...}},
         "recovery":   {"reports": K, "stages": {...}}}

    Stage totals are the registry histograms' running sums, so dividing by
    the record count reproduces the legacy mean-per-record breakdown exactly.
    """
    m = telemetry.metrics

    def _stages(prefix: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for inst in m:
            if inst.name.startswith(prefix) and not inst.tags:
                out[inst.name[len(prefix):]] = inst.total
        return out

    def _count(name: str) -> int:
        inst = m.get(name)
        return int(inst.value) if inst is not None else 0

    return {
        "checkpoint": {"records": _count("ckpt.records"), "stages": _stages(CKPT_STAGE_PREFIX)},
        "restart": {"records": _count("restart.records"), "stages": _stages(RESTART_STAGE_PREFIX)},
        "recovery": {"reports": _count("recovery.reports"), "stages": _stages(RECOVERY_PREFIX)},
    }
