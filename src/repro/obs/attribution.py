"""End-of-run utilization attribution from sampled time series.

Rolls a :class:`~repro.obs.sampler.StateSampler`'s observations into a
per-rank seconds-per-state breakdown (mpiP-style wait-state attribution):

* **checkpoint / recovery / finished** seconds are *exact* — integrated
  from the phase intervals the runtime notified at its transition sites —
  so they reconcile with the metrics registry's phase times (the
  ``mpi.time.checkpoint`` histogram total) to within floating-point noise,
  and always within one bin width (the acceptance criterion).
* **compute / send-blocked / recv-blocked** split the *remaining* wall
  time proportionally to point-sample counts, so each rank's breakdown
  sums to the run's makespan.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.reporting import Table

from .sampler import PHASE_STATES, RANK_STATES, StateSampler

__all__ = [
    "utilization_breakdown",
    "utilization_table",
    "reconcile_with_registry",
]

_SAMPLED_STATES = tuple(s for s in RANK_STATES if s not in PHASE_STATES)


def utilization_breakdown(sampler: StateSampler,
                          end_time: Optional[float] = None) -> Dict[int, Dict[str, float]]:
    """Per-rank seconds in each state; every rank sums to ``end_time``.

    ``end_time`` defaults to the sampler's finalized end; phase seconds
    come straight from the exact intervals, and the leftover is split
    across compute / send-blocked / recv-blocked by point-sample counts
    (a rank with no non-phase samples books the leftover as compute).
    """
    if end_time is None:
        end_time = sampler.end_time
    if end_time is None:
        raise ValueError("sampler not finalized and no end_time given")
    n_ranks = sampler.n_ranks or (
        len(sampler.rank_states[0]) if sampler.rank_states else 0)
    phase = sampler.phase_seconds()
    samples = sampler.state_sample_counts()
    out: Dict[int, Dict[str, float]] = {}
    for rank in range(n_ranks):
        row = {state: 0.0 for state in RANK_STATES}
        row.update(phase.get(rank, {}))
        remainder = end_time - sum(row[s] for s in PHASE_STATES)
        if remainder < 0:
            # phase intervals may overhang by float noise; clamp
            remainder = 0.0
        counts = samples.get(rank, {})
        weights = {s: counts.get(s, 0) for s in _SAMPLED_STATES}
        total = sum(weights.values())
        if total:
            for state, w in weights.items():
                row[state] = remainder * (w / total)
        else:
            row["compute"] = remainder
        out[rank] = row
    return out


def utilization_table(breakdown: Dict[int, Dict[str, float]],
                      title: str = "Per-rank utilization (s)") -> Table:
    """Render a breakdown as a :class:`~repro.analysis.reporting.Table`."""
    table = Table(title, list(("rank",) + RANK_STATES + ("total",)))
    for rank in sorted(breakdown):
        row = breakdown[rank]
        values = [row[s] for s in RANK_STATES]
        table.add_row(rank, *[f"{v:.3f}" for v in values],
                      f"{sum(values):.3f}")
    return table


def reconcile_with_registry(sampler: StateSampler, telemetry: Any,
                            end_time: Optional[float] = None) -> Dict[str, float]:
    """Compare the attribution's totals against the metrics registry.

    Returns a dict of absolute differences — the consistency check the
    test suite asserts stays within one bin width (same spirit as the
    recovery-tree == RecoveryReport test):

    * ``checkpoint_abs_diff`` — Σ-ranks attributed checkpoint seconds vs
      the ``mpi.time.checkpoint`` histogram total (both are sums of the
      identical per-rank ``now - start`` intervals, so this is ~0).
    * ``recovery_abs_diff`` — Σ-ranks attributed recovery seconds vs the
      registry's summed recovery-report totals × affected ranks upper
      bound is not well defined, so this reports the attributed total for
      inspection instead of a hard identity (0.0 when no recovery ran).
    """
    breakdown = utilization_breakdown(sampler, end_time=end_time)
    ckpt_attr = sum(row["checkpoint"] for row in breakdown.values())
    hist = telemetry.metrics.histogram("mpi.time.checkpoint")
    ckpt_registry = float(getattr(hist, "total", 0.0) or 0.0)
    recovery_attr = sum(row["recovery"] for row in breakdown.values())
    return {
        "checkpoint_attributed_s": ckpt_attr,
        "checkpoint_registry_s": ckpt_registry,
        "checkpoint_abs_diff": abs(ckpt_attr - ckpt_registry),
        "recovery_attributed_s": recovery_attr,
    }
