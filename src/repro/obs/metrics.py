"""Named, tagged instruments: counters, gauges, histograms.

The registry supersedes the ad-hoc per-subsystem counters (``SimStats``,
runtime ``stats.skipped_*``, storage ``replication_stalls``, recovery-manager
tallies) behind one naming scheme::

    <subsystem>.<noun>[.<verb>]        e.g.  sim.events.processed
                                             ckpt.waves.skipped
                                             storage.replication.stalls
                                             recovery.failures.handled
    phase.<phase>.<stage>              e.g.  phase.checkpoint.coordination

Instruments are keyed by ``(name, tags)`` where tags are sorted key/value
pairs, so ``registry.counter("storage.bytes.written", tier="L2")`` and the
``tier="L1"`` variant are distinct series.  ``as_flat_dict()`` renders
everything to a plain ``{name[{tags}]: value}`` mapping for the campaign
payload and exporters.

All instruments are pure in-memory accumulators — observing a value never
allocates simulation events, so a telemetry-on run stays bit-identical to a
telemetry-off run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Union

Tags = Tuple[Tuple[str, Any], ...]
Number = Union[int, float]


def _tag_key(tags: Dict[str, Any]) -> Tags:
    return tuple(sorted(tags.items()))


def _render_name(name: str, tags: Tags) -> str:
    if not tags:
        return name
    inner = ",".join("%s=%s" % (k, v) for k, v in tags)
    return "%s{%s}" % (name, inner)


class Counter:
    """Monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: Tags = ()) -> None:
        self.name = name
        self.tags = tags
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (queue depth, concurrency high-water mark)."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: Tags = ()) -> None:
        self.name = name
        self.tags = tags
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def max(self, value: Number) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Streaming summary of observed values (durations, sizes).

    Accumulates ``count``/``total``/``min``/``max``; ``observe`` adds values
    one at a time in call order, so ``total`` reproduces the same
    left-to-right float summation as the legacy aggregation code it replaces
    (bit-identical phase totals).
    """

    __slots__ = ("name", "tags", "count", "total", "min", "max")

    def __init__(self, name: str, tags: Tags = ()) -> None:
        self.name = name
        self.tags = tags
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create home for all instruments in a run."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Tags], Any] = {}

    def _get(self, cls, name: str, tags: Dict[str, Any]):
        key = (name, _tag_key(tags))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1])
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                "instrument %r already registered as %s" % (name, type(inst).__name__)
            )
        return inst

    def counter(self, name: str, **tags: Any) -> Counter:
        return self._get(Counter, name, tags)

    def gauge(self, name: str, **tags: Any) -> Gauge:
        return self._get(Gauge, name, tags)

    def histogram(self, name: str, **tags: Any) -> Histogram:
        return self._get(Histogram, name, tags)

    def merge_counts(self, mapping: Dict[str, Number], prefix: str = "", **tags: Any) -> None:
        """Absorb a legacy ``{name: count}`` stats dict as counters."""
        for key, value in mapping.items():
            self.counter(prefix + key, **tags).inc(value)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str, **tags: Any) -> Optional[Any]:
        """Look up an instrument without creating it."""
        return self._instruments.get((name, _tag_key(tags)))

    def as_flat_dict(self) -> Dict[str, Number]:
        """Render every instrument to ``{rendered-name: value}``.

        Histograms expand to ``.total``/``.count``/``.min``/``.max``
        sub-keys.  Keys are sorted for stable output.
        """
        flat: Dict[str, Number] = {}
        for inst in self._instruments.values():
            base = _render_name(inst.name, inst.tags)
            if isinstance(inst, Histogram):
                flat[base + ".total"] = inst.total
                flat[base + ".count"] = inst.count
                if inst.count:
                    flat[base + ".min"] = inst.min
                    flat[base + ".max"] = inst.max
            else:
                flat[base] = inst.value
        return dict(sorted(flat.items()))


class _NullInstrument:
    """Inert counter/gauge/histogram accepted by every observe path."""

    __slots__ = ()
    name = ""
    tags: Tags = ()
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def max_(self, value: Number) -> None:  # pragma: no cover - alias safety
        pass

    def observe(self, value: Number) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """No-op drop-in for :class:`MetricsRegistry` when telemetry is off."""

    __slots__ = ()

    def counter(self, name: str, **tags: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, **tags: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, **tags: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def merge_counts(self, mapping: Dict[str, Number], prefix: str = "", **tags: Any) -> None:
        pass

    def get(self, name: str, **tags: Any) -> None:
        return None

    def __iter__(self) -> Iterator[Any]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def as_flat_dict(self) -> Dict[str, Number]:
        return {}
